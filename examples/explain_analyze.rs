//! `EXPLAIN ANALYZE` over a personalized movies query — the paper's running
//! example ("what is shown tonight?", personalized for Julie) run under a
//! full pipeline trace.
//!
//! ```text
//! cargo run --example explain_analyze [--json]
//! ```
//!
//! Prints the span tree with per-stage timings and operator cardinalities,
//! the selected preferences with their degrees, and (with `--json`) the
//! machine-readable trace export.

use pqp::analyze::{explain_analyze, Rewrite};
use pqp::core::graph::InMemoryGraph;
use pqp::core::{PersonalizeOptions, Profile};
use pqp::datagen::movies_catalog;
use pqp::engine::Database;
use pqp::storage::Value;

const TONIGHT: &str = "2003-07-02";

/// The paper's hand-checked movies instance (Figures 1–3).
fn paper_db() -> Database {
    let c = movies_catalog();
    let ins = |t: &str, rows: Vec<Vec<Value>>| {
        let t = c.table(t).unwrap();
        let mut t = t.write();
        for r in rows {
            t.insert(r).unwrap();
        }
    };
    ins(
        "THEATRE",
        vec![
            vec![1.into(), "Odeon".into(), "210-1".into(), "downtown".into()],
            vec![2.into(), "Rex".into(), "210-2".into(), "uptown".into()],
        ],
    );
    ins(
        "MOVIE",
        vec![
            vec![1.into(), "Alpha".into(), 2001.into()],
            vec![2.into(), "Beta".into(), 2002.into()],
            vec![3.into(), "Gamma".into(), 2003.into()],
            vec![4.into(), "Delta".into(), 2000.into()],
            vec![5.into(), "Omega".into(), 1999.into()],
        ],
    );
    ins(
        "GENRE",
        vec![
            vec![1.into(), "comedy".into()],
            vec![2.into(), "comedy".into()],
            vec![3.into(), "sci-fi".into()],
            vec![4.into(), "thriller".into()],
            vec![5.into(), "cooking".into()],
        ],
    );
    ins(
        "ACTOR",
        vec![
            vec![10.into(), "N. Kidman".into()],
            vec![11.into(), "A. Hopkins".into()],
            vec![12.into(), "J. Roberts".into()],
            vec![13.into(), "I. Rossellini".into()],
        ],
    );
    ins(
        "CAST",
        vec![
            vec![1.into(), 10.into(), Value::Null, "lead".into()],
            vec![2.into(), 11.into(), Value::Null, Value::Null],
            vec![3.into(), 10.into(), Value::Null, Value::Null],
            vec![3.into(), 12.into(), Value::Null, "lead".into()],
            vec![4.into(), 13.into(), Value::Null, Value::Null],
            vec![5.into(), 11.into(), Value::Null, Value::Null],
        ],
    );
    ins(
        "DIRECTOR",
        vec![
            vec![20.into(), "D. Lynch".into()],
            vec![21.into(), "W. Allen".into()],
            vec![22.into(), "S. Kubrick".into()],
        ],
    );
    ins(
        "DIRECTED",
        vec![
            vec![1.into(), 20.into()],
            vec![2.into(), 21.into()],
            vec![3.into(), 22.into()],
            vec![4.into(), 20.into()],
            vec![5.into(), 21.into()],
        ],
    );
    ins(
        "PLAY",
        vec![
            vec![1.into(), 1.into(), TONIGHT.into()],
            vec![1.into(), 2.into(), TONIGHT.into()],
            vec![2.into(), 3.into(), TONIGHT.into()],
            vec![2.into(), 4.into(), TONIGHT.into()],
            vec![1.into(), 5.into(), "2003-07-03".into()],
        ],
    );
    Database::new(c)
}

/// Julie's profile (paper Figures 2–3).
fn julie() -> Profile {
    let mut p = Profile::new("julie");
    p.add_join("THEATRE", "tid", "PLAY", "tid", 1.0).unwrap();
    p.add_join("PLAY", "tid", "THEATRE", "tid", 1.0).unwrap();
    p.add_join("PLAY", "mid", "MOVIE", "mid", 1.0).unwrap();
    p.add_join("MOVIE", "mid", "PLAY", "mid", 0.8).unwrap();
    p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    p.add_join("MOVIE", "mid", "CAST", "mid", 0.8).unwrap();
    p.add_join("CAST", "aid", "ACTOR", "aid", 1.0).unwrap();
    p.add_join("MOVIE", "mid", "DIRECTED", "mid", 1.0).unwrap();
    p.add_join("DIRECTED", "did", "DIRECTOR", "did", 1.0).unwrap();
    p.add_selection("THEATRE", "region", "downtown", 0.5).unwrap();
    p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
    p.add_selection("GENRE", "genre", "thriller", 0.7).unwrap();
    p.add_selection("DIRECTOR", "name", "D. Lynch", 0.9).unwrap();
    p.add_selection("ACTOR", "name", "N. Kidman", 0.9).unwrap();
    p
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).expect("profile validates");
    let sql = format!(
        "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid and PL.date = '{TONIGHT}'"
    );

    let analysis = explain_analyze(
        &sql,
        &graph,
        &db,
        PersonalizeOptions::builder().k(3).l(1).build().ranked(),
        Rewrite::Mq,
    )
    .expect("pipeline runs");

    if json {
        println!("{}", analysis.to_json().pretty());
    } else {
        println!("-- {sql}\n");
        println!("{}", analysis.report());
        println!("Rows (ranked by estimated interest):");
        for row in &analysis.result.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("  {}", cells.join(" | "));
        }
    }
}
