//! Profile explorer: inspect what the preference-selection algorithm derives
//! from a profile for a given query, under different interest criteria and
//! through both storage backends — and see the SQ/MQ SQL it produces.
//!
//! Also demonstrates JSON persistence of profiles (the paper's profiles are
//! long-lived artifacts, independent of any one query).
//!
//! Run with: `cargo run --example profile_explorer`

use pqp::prelude::*;
use pqp_core::{select_preferences, InterestCriterion, QueryGraph};
use pqp_datagen::{generate, MovieDbConfig};

fn main() {
    let m = generate(MovieDbConfig { movies: 500, theatres: 10, ..Default::default() });
    let mut db = m.db;

    // Build a profile, persist it to JSON, reload it.
    let mut profile = Profile::new("explorer");
    for (f, fc, t, tc, d) in [
        ("PLAY", "mid", "MOVIE", "mid", 1.0),
        ("MOVIE", "mid", "GENRE", "mid", 0.9),
        ("MOVIE", "mid", "CAST", "mid", 0.7),
        ("CAST", "aid", "ACTOR", "aid", 1.0),
        ("MOVIE", "mid", "DIRECTED", "mid", 0.95),
        ("DIRECTED", "did", "DIRECTOR", "did", 1.0),
    ] {
        profile.add_join(f, fc, t, tc, d).unwrap();
    }
    profile.add_selection("GENRE", "genre", "thriller", 0.85).unwrap();
    profile.add_selection("GENRE", "genre", "comedy", 0.8).unwrap();
    profile.add_selection("DIRECTOR", "name", m.pools.director_names[1].as_str(), 0.9).unwrap();
    profile.add_selection("ACTOR", "name", m.pools.actor_names[2].as_str(), 0.75).unwrap();
    profile.add_selection("MOVIE", "year", 2020i64, 0.6).unwrap();

    let json = profile.to_json();
    println!("profile as stored on disk:\n{json}\n");
    let profile = Profile::from_json(&json).expect("round-trips");

    let query = pqp_sql::parse_query(&format!(
        "select MV.title from MOVIE MV, PLAY PL \
         where MV.mid = PL.mid and PL.date = '{}'",
        m.pools.dates[0]
    ))
    .unwrap();
    println!("query: {query}\n");

    // Derive the query graph once and sweep interest criteria.
    let qg = QueryGraph::from_select(query.as_select().unwrap(), db.catalog()).unwrap();
    let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
    for criterion in [
        InterestCriterion::TopK(3),
        InterestCriterion::TopK(10),
        InterestCriterion::MinDegree(0.6),
        InterestCriterion::DisjunctionAbove(0.5),
        InterestCriterion::ConjunctionAbove(0.8),
    ] {
        let out = select_preferences(&qg, &graph, &criterion);
        println!(
            "criterion {criterion}: {} preferences, {} rounds, {} graph accesses",
            out.selected.len(),
            out.stats.rounds,
            out.stats.graph_accesses
        );
        for p in &out.selected {
            println!("    {p}");
        }
    }

    // Same selection through the stored-profile (SQL-backed) graph.
    StoredProfileGraph::store(&mut db, &profile).unwrap();
    let stored = StoredProfileGraph::open(&db, "explorer");
    let out = select_preferences(&qg, &stored, &InterestCriterion::TopK(10));
    println!(
        "\nstored-profile backend: same {} preferences via {} SQL adjacency fetches",
        out.selected.len(),
        out.stats.graph_accesses
    );

    // Show both integration rewrites.
    let p = personalize(
        &query,
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build().ranked(),
    )
    .unwrap();
    println!("\nSQ:\n  {}", p.sq().unwrap());
    println!("\nMQ:\n  {}", p.mq().unwrap());
    let rs = db.run_query(&p.mq().unwrap()).unwrap();
    println!("\nMQ returns {} ranked rows; best 3:", rs.len());
    for row in rs.rows.iter().take(3) {
        println!("  {:.3}  {}", row[1].as_f64().unwrap(), row[0]);
    }
}
