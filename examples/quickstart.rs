//! Quickstart: the paper's running example end to end.
//!
//! Builds the movies database, stores a user's preferences, personalizes
//! "what is shown tonight?" and prints the ranked answers together with the
//! generated SQL.
//!
//! Run with: `cargo run --example quickstart`

use pqp::prelude::*;
use pqp_datagen::movies_catalog;
use pqp_engine::Database;
use pqp_storage::Value;

fn main() {
    // 1. A movies database on the paper's schema.
    let catalog = movies_catalog();
    let seed = |table: &str, rows: Vec<Vec<Value>>| {
        let t = catalog.table(table).unwrap();
        let mut t = t.write();
        for r in rows {
            t.insert(r).unwrap();
        }
    };
    seed(
        "MOVIE",
        vec![
            vec![1.into(), "The Order of the Phoenix".into(), 2003.into()],
            vec![2.into(), "Matisse and Picasso".into(), 2002.into()],
            vec![3.into(), "Essentials of Asian Cuisine".into(), 2003.into()],
        ],
    );
    seed(
        "GENRE",
        vec![
            vec![1.into(), "fantasy".into()],
            vec![2.into(), "documentary".into()],
            vec![3.into(), "cooking".into()],
        ],
    );
    seed("THEATRE", vec![vec![1.into(), "Odeon".into(), "210".into(), "downtown".into()]]);
    seed(
        "PLAY",
        vec![
            vec![1.into(), 1.into(), "tonight".into()],
            vec![1.into(), 2.into(), "tonight".into()],
            vec![1.into(), 3.into(), "tonight".into()],
        ],
    );
    seed("DIRECTOR", vec![vec![1.into(), "P. Anderson".into()]]);
    seed("DIRECTED", vec![vec![1.into(), 1.into()]]);
    let db = Database::new(catalog);

    // 2. A profile: fantasy novels-on-film and 20th century art.
    let mut profile = Profile::new("you");
    profile.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    profile.add_join("PLAY", "mid", "MOVIE", "mid", 1.0).unwrap();
    profile.add_selection("GENRE", "genre", "fantasy", 0.9).unwrap();
    profile.add_selection("GENRE", "genre", "documentary", 0.7).unwrap();
    println!("{profile}");

    // 3. The impersonal question every customer asks.
    let query = pqp_sql::parse_query(
        "select MV.title from MOVIE MV, PLAY PL \
         where MV.mid = PL.mid and PL.date = 'tonight'",
    )
    .unwrap();
    println!("initial query:\n  {query}\n");
    let plain = db.run_query(&query).unwrap();
    println!("without personalization everyone gets:");
    for row in &plain.rows {
        println!("  - {}", row[0]);
    }

    // 4. Personalize: top-2 preferences, at least 1 must hold, ranked.
    let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
    let personalized = personalize(
        &query,
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(2).l(1).build().ranked(),
    )
    .unwrap();
    println!("\nselected preferences (decreasing degree of interest):");
    for p in &personalized.paths {
        println!("  {p}");
    }

    let mq = personalized.mq().unwrap();
    println!("\npersonalized (MQ) SQL:\n  {mq}\n");
    let ranked = db.run_query(&mq).unwrap();
    println!("personalized, ranked answer:");
    for row in &ranked.rows {
        println!("  {:.3}  {}", row[1].as_f64().unwrap(), row[0]);
    }

    // 5. The SQ rewrite is equivalent (paper §6).
    let sq = personalized.sq().unwrap();
    println!("\nequivalent SQ SQL:\n  {sq}");
    let sq_rows = db.run_query(&sq).unwrap();
    assert_eq!(sq_rows.len(), ranked.len());
    println!("\nSQ returns the same {} movies (unranked).", sq_rows.len());
}
