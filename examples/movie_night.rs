//! Movie night: several users ask the *same* question over a realistic
//! (synthetic, Zipf-skewed) movies database and receive differently ranked
//! answers — the paper's motivating scenario at scale.
//!
//! Run with: `cargo run --release --example movie_night`

use pqp::prelude::*;
use pqp_datagen::{generate, MovieDbConfig};

fn main() {
    // A mid-sized synthetic instance of the paper's schema.
    let m = generate(MovieDbConfig { movies: 3_000, theatres: 30, ..Default::default() });
    let db = &m.db;
    let date = &m.pools.dates[0];
    println!(
        "database: {} movies, {} plays, {} cast rows",
        db.catalog().table("MOVIE").unwrap().read().len(),
        db.catalog().table("PLAY").unwrap().read().len(),
        db.catalog().table("CAST").unwrap().read().len(),
    );

    let query = pqp_sql::parse_query(&format!(
        "select MV.title from MOVIE MV, PLAY PL \
         where MV.mid = PL.mid and PL.date = '{date}'"
    ))
    .unwrap();
    let initial = db.run_query(&query).unwrap();
    println!("\ninitial query returns {} rows for everyone\n", initial.len());

    // Three users with different tastes. Join preferences let queries about
    // plays pull in preferences about genres, people and theatres.
    let mut base = Profile::new("base");
    for (f, fc, t, tc, d) in [
        ("PLAY", "mid", "MOVIE", "mid", 1.0),
        ("MOVIE", "mid", "GENRE", "mid", 0.9),
        ("MOVIE", "mid", "CAST", "mid", 0.8),
        ("CAST", "aid", "ACTOR", "aid", 1.0),
        ("MOVIE", "mid", "DIRECTED", "mid", 1.0),
        ("DIRECTED", "did", "DIRECTOR", "did", 1.0),
        ("PLAY", "tid", "THEATRE", "tid", 0.9),
    ] {
        base.add_join(f, fc, t, tc, d).unwrap();
    }

    let mut comedy_fan = base.clone();
    comedy_fan.user = "comedy_fan".into();
    comedy_fan.add_selection("GENRE", "genre", "comedy", 0.95).unwrap();
    comedy_fan.add_selection("GENRE", "genre", "romance", 0.7).unwrap();

    let mut cinephile = base.clone();
    cinephile.user = "cinephile".into();
    cinephile.add_selection("GENRE", "genre", "noir", 0.9).unwrap();
    cinephile.add_selection("DIRECTOR", "name", m.pools.director_names[0].as_str(), 0.95).unwrap();
    cinephile.add_selection("ACTOR", "name", m.pools.actor_names[0].as_str(), 0.8).unwrap();

    let mut homebody = base.clone();
    homebody.user = "homebody".into();
    homebody.add_selection("THEATRE", "region", "downtown", 0.9).unwrap();
    homebody.add_selection("GENRE", "genre", "drama", 0.6).unwrap();

    for profile in [comedy_fan, cinephile, homebody] {
        let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
        let p = personalize(
            &query,
            &graph,
            db.catalog(),
            PersonalizeOptions::builder().k(4).l(1).build().ranked(),
        )
        .unwrap();
        println!("=== {} ===", profile.user);
        for path in &p.paths {
            println!("  pref {path}");
        }
        let ranked = db.run_query(&p.mq().unwrap()).unwrap();
        println!(
            "  {} of {} movies match; top 5 by estimated interest:",
            ranked.len(),
            initial.len()
        );
        for row in ranked.rows.iter().take(5) {
            println!("    {:.3}  {}", row[1].as_f64().unwrap(), row[0]);
        }
        println!();
    }
}
