//! Client/server over TCP in one process: start a `pqp-server` on an
//! ephemeral port, drive it with the blocking `pqp-wire` client, and show
//! that the same `QueryApi` code runs over the socket and in-process.
//!
//! Run with `cargo run --example tcp_quickstart`.

use std::sync::Arc;

use pqp::datagen::{generate, generate_profiles, MovieDbConfig, ProfileGenConfig};
use pqp::{Answer, Client, ClientConfig, QueryApi, Server, ServerConfig, Service};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A service over a generated movie database, with a few profiles.
    let m = generate(MovieDbConfig::default());
    let service = Arc::new(Service::new(m.db));
    for profile in generate_profiles(
        "user",
        4,
        &m.pools,
        &ProfileGenConfig { selections: 40, seed: 7, ..Default::default() },
    ) {
        service.install_profile(profile)?;
    }

    // 2. Serve it on an ephemeral loopback port.
    let server = Server::bind(
        Arc::clone(&service),
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() },
    )?;
    let handle = server.spawn()?;
    println!("serving on {}", handle.addr());

    // 3. The same function works over TCP and in-process — it only knows
    //    the QueryApi trait.
    fn ask(api: &mut impl QueryApi, sql: &str) -> pqp::service::Result<Answer> {
        let answer = api.query(sql)?;
        println!(
            "  {:>5}: {} rows via {} (K={}, cache: {}, {} rows scanned)",
            api.user_id(),
            answer.rows.len(),
            answer.meta.rewrite,
            answer.meta.k,
            answer.meta.cache,
            answer.meta.rows_scanned,
        );
        Ok(answer)
    }

    let sql = "select MV.title from MOVIE MV";
    println!("over TCP:");
    let mut client = Client::connect(handle.addr(), ClientConfig::new("user0"))?;
    let remote = ask(&mut client, sql)?;

    println!("in-process:");
    let mut session = service.session("user0");
    let local = ask(&mut session, sql)?;
    assert_eq!(remote.rows, local.rows, "identical answers over either backend");

    // 4. Profiles mutate over the wire too; the cached plan is invalidated.
    client.add_selection("GENRE", "genre", "comedy".into(), 0.95)?;
    println!("after a profile mutation over the wire:");
    ask(&mut client, sql)?;

    client.close();
    handle.shutdown();
    Ok(())
}
