//! Bookstore: the introduction's motivating example ("are there any good new
//! books?"), demonstrating that the framework is schema-agnostic — nothing
//! in `pqp-core` knows about movies.
//!
//! Run with: `cargo run --example bookstore`

use pqp::prelude::*;
use pqp_datagen::generate_bookstore;

fn main() {
    let (db, authors) = generate_bookstore(400, 42);
    println!(
        "bookstore: {} books, {} authors",
        db.catalog().table("BOOK").unwrap().read().len(),
        db.catalog().table("AUTHOR").unwrap().read().len(),
    );

    // "Any good new books?" — new arrivals this week, any store.
    let query = pqp_sql::parse_query(
        "select B.title from BOOK B, STOCK S \
         where B.bid = S.bid and S.arrival = '2003-w3'",
    )
    .unwrap();
    let plain = db.run_query(&query).unwrap();
    println!("\n'{query}'\n→ {} new arrivals for an anonymous customer\n", plain.len());

    // A customer who likes a particular fantasy author and 20th-century art
    // books (the paper's J.K. Rowling / Matisse-and-Picasso reader).
    let mut reader = Profile::new("reader");
    reader.add_join("STOCK", "bid", "BOOK", "bid", 1.0).unwrap();
    reader.add_join("BOOK", "bid", "CATEGORY", "bid", 0.9).unwrap();
    reader.add_join("BOOK", "bid", "WROTE", "bid", 0.9).unwrap();
    reader.add_join("WROTE", "aid", "AUTHOR", "aid", 1.0).unwrap();
    reader.add_selection("CATEGORY", "category", "fantasy", 0.9).unwrap();
    reader.add_selection("CATEGORY", "category", "art", 0.8).unwrap();
    reader.add_selection("AUTHOR", "name", authors[0].as_str(), 0.95).unwrap();
    // ... and definitely not into cooking (simply absent from the profile:
    // the model stores only positive degrees of interest).
    println!("{reader}");

    let graph = InMemoryGraph::build(&reader, db.catalog()).unwrap();
    let p = personalize(
        &query,
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build().ranked(),
    )
    .unwrap();
    println!("selected preferences:");
    for path in &p.paths {
        println!("  {path}");
    }

    let rs = db.run_query(&p.mq().unwrap()).unwrap();
    println!("\nLisa the bookseller answers ({} of {} books):", rs.len(), plain.len());
    for row in rs.rows.iter().take(8) {
        println!("  {:.3}  {}", row[1].as_f64().unwrap(), row[0]);
    }

    // Top-N delivery (future-work feature): just the best two suggestions.
    let top2 = db.run_query(&top_n_query(&p, 2).unwrap()).unwrap();
    println!("\njust the two best:");
    for row in &top2.rows {
        println!("  {:.3}  {}", row[1].as_f64().unwrap(), row[0]);
    }
}
