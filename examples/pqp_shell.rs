//! An interactive shell over a personalized database: plain SQL (DDL, DML,
//! queries) plus personalization meta-commands.
//!
//! ```text
//! cargo run --release --example pqp_shell          # starts on the demo movies DB
//! echo 'select count(*) from MOVIE' | cargo run --example pqp_shell
//! ```
//!
//! Commands:
//! ```text
//! <any SQL statement>                      run it
//! .user NAME                               switch the active profile
//! .like TABLE.COLUMN = 'value' [doi]       add a selection preference (default 0.8)
//! .dislike TABLE.COLUMN = 'value' [doi]    add a negative preference (default 1.0)
//! .join A.COL = B.COL [doi]                add a (directed) join preference
//! .profile                                 show the active profile
//! .personalize K L <query>                 run a query personalized (ranked MQ)
//! .explain K L <query>                     like .personalize, with per-row why
//! .sql K L <query>                         print the SQ and MQ rewrites only
//! .quit
//! ```

use pqp::prelude::*;
use pqp_core::negative::{integrate_mq_with_negatives, select_negatives};
use pqp_core::{explain::explain, MatchSpec};
use pqp_datagen::{generate, MovieDbConfig};
use pqp_engine::{ddl::StatementResult, Database};
use std::collections::HashMap;
use std::io::{BufRead, Write};

struct Shell {
    db: Database,
    profiles: HashMap<String, Profile>,
    user: String,
}

fn main() {
    let m = generate(MovieDbConfig { movies: 500, theatres: 10, ..Default::default() });
    let mut shell = Shell { db: m.db, profiles: HashMap::new(), user: "guest".into() };
    println!("pqp shell — synthetic movies database loaded ({} movies).", 500);
    println!("Type SQL, or `.help` for personalization commands.\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("pqp:{}> ", shell.user);
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ".quit" || line == ".exit" {
            break;
        }
        if let Err(e) = shell.dispatch(line) {
            println!("error: {e}");
        }
    }
}

impl Shell {
    fn profile(&mut self) -> &mut Profile {
        let user = self.user.clone();
        self.profiles.entry(user.clone()).or_insert_with(|| Profile::new(user))
    }

    fn dispatch(&mut self, line: &str) -> Result<(), String> {
        if !line.starts_with('.') {
            return self.run_sql(line);
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            ".help" => {
                println!(
                    ".user NAME | .like T.C = 'v' [doi] | .dislike T.C = 'v' [doi]\n\
                     .join A.C = B.C [doi] | .profile | .personalize K L <query>\n\
                     .explain K L <query> | .sql K L <query> | .quit"
                );
                Ok(())
            }
            ".user" => {
                self.user = rest.trim().to_string();
                println!("active profile: {}", self.user);
                Ok(())
            }
            ".profile" => {
                println!("{}", self.profile());
                Ok(())
            }
            ".like" => self.add_pref(rest, false),
            ".dislike" => self.add_pref(rest, true),
            ".join" => self.add_join(rest),
            ".personalize" => self.personalized(rest, Mode::Run),
            ".explain" => self.personalized(rest, Mode::Explain),
            ".sql" => self.personalized(rest, Mode::ShowSql),
            other => Err(format!("unknown command `{other}` (try .help)")),
        }
    }

    fn run_sql(&mut self, sql: &str) -> Result<(), String> {
        match self.db.execute(sql).map_err(|e| e.to_string())? {
            StatementResult::Rows(rs) => {
                let n = rs.len();
                print_rows(&rs.columns, &rs.rows, 25);
                println!("({n} rows)");
            }
            StatementResult::Affected(n) => println!("ok ({n} rows affected)"),
        }
        Ok(())
    }

    /// `.like T.C = 'v' [doi]`
    fn add_pref(&mut self, rest: &str, negative: bool) -> Result<(), String> {
        let (cond, doi) = split_trailing_degree(rest, if negative { 1.0 } else { 0.8 })?;
        let e = pqp_sql::parse_expr(&cond).map_err(|e| e.to_string())?;
        let pqp_sql::Expr::Binary { left, op: pqp_sql::BinaryOp::Eq, right } = e else {
            return Err("expected `TABLE.COLUMN = 'value'`".into());
        };
        let (pqp_sql::Expr::Column { qualifier: Some(t), name: c }, pqp_sql::Expr::Literal(v)) =
            (*left, *right)
        else {
            return Err("expected `TABLE.COLUMN = literal`".into());
        };
        let profile = self.profile();
        if negative {
            profile.add_negative_selection(&t, &c, v, doi).map_err(|e| e.to_string())?;
        } else {
            profile.add_selection(&t, &c, v, doi).map_err(|e| e.to_string())?;
        }
        println!("ok");
        Ok(())
    }

    /// `.join A.C = B.C [doi]` — adds both directions.
    fn add_join(&mut self, rest: &str) -> Result<(), String> {
        let (cond, doi) = split_trailing_degree(rest, 0.9)?;
        let e = pqp_sql::parse_expr(&cond).map_err(|e| e.to_string())?;
        let pqp_sql::Expr::Binary { left, op: pqp_sql::BinaryOp::Eq, right } = e else {
            return Err("expected `A.COL = B.COL`".into());
        };
        let (
            pqp_sql::Expr::Column { qualifier: Some(at), name: ac },
            pqp_sql::Expr::Column { qualifier: Some(bt), name: bc },
        ) = (*left, *right)
        else {
            return Err("expected column = column".into());
        };
        self.profile().add_join_both(&at, &ac, &bt, &bc, doi).map_err(|e| e.to_string())?;
        println!("ok (both directions)");
        Ok(())
    }

    fn personalized(&mut self, rest: &str, mode: Mode) -> Result<(), String> {
        let mut parts = rest.splitn(3, ' ');
        let k: usize = parts.next().and_then(|s| s.parse().ok()).ok_or("usage: K L <query>")?;
        let l: usize = parts.next().and_then(|s| s.parse().ok()).ok_or("usage: K L <query>")?;
        let sql = parts.next().ok_or("usage: K L <query>")?;
        let query = pqp_sql::parse_query(sql).map_err(|e| e.to_string())?;
        let profile = self.profile().clone();
        let graph = InMemoryGraph::build(&profile, self.db.catalog()).map_err(|e| e.to_string())?;
        let p = personalize(
            &query,
            &graph,
            self.db.catalog(),
            PersonalizeOptions::builder().k(k).l(l).build().ranked(),
        )
        .map_err(|e| e.to_string())?;
        println!("selected {} preference(s):", p.k());
        for path in &p.paths {
            println!("  {path}");
        }
        let negatives =
            select_negatives(&query, &profile, self.db.catalog(), k).map_err(|e| e.to_string())?;
        for n in &negatives {
            println!("  (negative) {n}");
        }
        match mode {
            Mode::ShowSql => {
                println!("\nSQ:\n  {}", p.sq().map_err(|e| e.to_string())?);
                println!("\nMQ:\n  {}", p.mq().map_err(|e| e.to_string())?);
            }
            Mode::Run => {
                let q = if negatives.is_empty() {
                    p.mq().map_err(|e| e.to_string())?
                } else {
                    integrate_mq_with_negatives(
                        query.as_select().ok_or("plain SELECT required")?,
                        &p.paths,
                        &negatives,
                        p.m,
                        p.matching,
                    )
                    .map_err(|e| e.to_string())?
                };
                let rs = self.db.run_query(&q).map_err(|e| e.to_string())?;
                let n = rs.len();
                print_rows(&rs.columns, &rs.rows, 20);
                println!("({n} rows, ranked by estimated interest)");
            }
            Mode::Explain => {
                let ex = explain(&p, &self.db).map_err(|e| e.to_string())?;
                for e in ex.iter().take(10) {
                    print!("{e}");
                }
                println!("({} rows explained)", ex.len());
            }
        }
        let _ = MatchSpec::AtLeast(l); // (l is encoded in `p.matching` already)
        Ok(())
    }
}

enum Mode {
    Run,
    Explain,
    ShowSql,
}

fn split_trailing_degree(rest: &str, default: f64) -> Result<(String, f64), String> {
    let rest = rest.trim();
    if let Some((head, tail)) = rest.rsplit_once(' ') {
        if let Ok(d) = tail.parse::<f64>() {
            return Ok((head.to_string(), d));
        }
    }
    Ok((rest.to_string(), default))
}

fn print_rows(columns: &[String], rows: &[Vec<pqp_storage::Value>], limit: usize) {
    println!("{}", columns.join(" | "));
    for row in rows.iter().take(limit) {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                pqp_storage::Value::Float(f) => format!("{f:.4}"),
                other => other.to_string(),
            })
            .collect();
        println!("{}", cells.join(" | "));
    }
    if rows.len() > limit {
        println!("... ({} more)", rows.len() - limit);
    }
}
