//! The serving layer in five minutes: one [`Service`] over a generated
//! movies database, several users' profiles, sessions issuing personalized
//! SQL, a profile mutation invalidating cached plans, and a batch run.
//!
//! Run with: `cargo run --example service`

use pqp::{Service, ServiceConfig, UserId};
use pqp_core::{PersonalizeOptions, Rewrite};
use pqp_datagen::{generate, generate_profiles, MovieDbConfig, ProfileGenConfig};

fn main() -> Result<(), pqp::Error> {
    // 1. A service over a synthetic movies database, serving MQ rewrites
    //    with the top-3 preferences per query.
    let m = generate(MovieDbConfig { movies: 200, theatres: 8, ..Default::default() });
    let service = Service::with_config(
        m.db,
        ServiceConfig {
            options: PersonalizeOptions::builder().k(3).l(1).build(),
            rewrite: Rewrite::Mq,
            ..ServiceConfig::default()
        },
    );

    // 2. Install a few generated user profiles. Any later mutation bumps
    //    the user's epoch and lazily invalidates their cached plans.
    for profile in generate_profiles("user", 4, &m.pools, &ProfileGenConfig::default()) {
        service.install_profile(profile)?;
    }
    println!("serving {} users: {:?}\n", service.users().len(), service.users());

    // 3. A session is the per-user front door: parse → personalize →
    //    integrate → plan → execute, through the caches.
    let sql = "select MV.title from MOVIE MV";
    let session = service.session("user0");
    let answer = session.query(sql)?;
    println!(
        "user0: {} rows under {} (K={}, cache: {})",
        answer.rows.len(),
        answer.meta.rewrite,
        answer.meta.k,
        answer.meta.cache
    );
    let again = session.query(sql)?;
    println!("user0 again: cache: {}", again.meta.cache);

    // 4. Mutating the profile invalidates the cached plan — the next query
    //    recomputes with the new preference in effect.
    service.add_selection("user0", "GENRE", "genre", "comedy", 0.95)?;
    let after = session.query(sql)?;
    println!("after mutation: cache: {} (epoch {})", after.meta.cache, service.epoch("user0"));

    // 5. Batch execution: identical in-flight requests are collapsed, the
    //    rest fan out across scoped worker threads.
    let requests: Vec<(UserId, String)> =
        (0..16).map(|i| (UserId::from(format!("user{}", i % 4)), sql.to_string())).collect();
    let answers = service.query_batch(&requests, 4);
    println!(
        "\nbatch: {}/{} requests ok",
        answers.iter().filter(|a| a.is_ok()).count(),
        answers.len()
    );

    let stats = service.cache_stats();
    println!(
        "plan cache: {} hits, {} misses, {} stale (hit rate {:.0}%)",
        stats.plans.hits,
        stats.plans.misses,
        stats.plans.stale,
        100.0 * stats.plans.hit_rate()
    );
    Ok(())
}
