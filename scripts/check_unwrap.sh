#!/usr/bin/env bash
# Robustness gate: no `.unwrap()` / `.expect(` in non-test code of the
# crates that sit on the serving path (`crates/service`, `crates/storage`,
# `crates/wire`, `crates/server`).
#
#   ./scripts/check_unwrap.sh
#
# A panic in those crates takes a lock-holding thread down mid-query; the
# query governor work replaced them with typed errors and poison-recovering
# locks, and this gate keeps new ones out. Test code is exempt: everything
# from a `#[cfg(test)]` line to end-of-file, files under `tests/`, and
# `// ...` comment lines are stripped before grepping.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for crate in crates/service crates/storage crates/wire crates/server; do
    while IFS= read -r file; do
        # Strip the `#[cfg(test)]` module (convention: last item in the
        # file) and comment lines, then look for panicking calls.
        hits=$(sed -e '/#\[cfg(test)\]/,$d' -e 's|//.*||' "$file" \
            | grep -n '\.unwrap()\|\.expect(' || true)
        if [ -n "$hits" ]; then
            echo "error: panicking call in non-test code of $file:" >&2
            echo "$hits" | sed 's/^/    /' >&2
            fail=1
        fi
    done < <(find "$crate/src" -name '*.rs')
done

if [ "$fail" -ne 0 ]; then
    echo "use typed errors (or the poison-recovering pqp_storage::sync locks) instead" >&2
    exit 1
fi
echo "OK: no unwrap/expect in non-test service/storage/wire/server code"
