#!/usr/bin/env bash
# Local verification gate: everything CI runs, runnable offline.
#
#   ./scripts/verify.sh
#
# The workspace has no external dependencies, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--offline)

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --workspace --release

echo "==> cargo test"
cargo test "${CARGO_FLAGS[@]}" --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> OK"
