#!/usr/bin/env bash
# Local verification gate: everything CI runs, runnable offline.
#
#   ./scripts/verify.sh
#
# The workspace has no external dependencies, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--offline)

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --workspace --release

echo "==> cargo test"
cargo test "${CARGO_FLAGS[@]}" --workspace -q

# The serving-layer concurrency suite must hold under the default test
# parallelism AND serially (different interleavings on both schedules).
echo "==> concurrency tests (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp-service --test concurrency -q

# Telemetry invariants (exactly-once query log under parallel sessions,
# live SHOW answers) must also hold on both schedules.
echo "==> telemetry tests (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp-service --test telemetry -q

# The chaos suite (failpoint-injected faults at every named site) and the
# governor integration tests run on both schedules too: fault isolation
# must hold under concurrent tests and under a serial schedule.
echo "==> chaos suite"
cargo test "${CARGO_FLAGS[@]}" -p pqp-service --test chaos -q
echo "==> chaos suite (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp-service --test chaos -q
echo "==> governor integration tests"
cargo test "${CARGO_FLAGS[@]}" -p pqp --test governor --test governor_env -q

# The network edge: end-to-end TCP integration, protocol robustness
# (malformed/truncated/oversized frames, version mismatches, mid-query
# disconnects) and server-boundary chaos, on both test schedules —
# session-thread interleavings differ under a serial schedule too.
echo "==> server suites (integration, robustness, chaos)"
cargo test "${CARGO_FLAGS[@]}" -p pqp-server -q
echo "==> server suites (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp-server -q

# Replication: crash recovery (torn tails, bit flips, WAL failpoints,
# and the kill -9 differential — SIGKILL a mutating child, replay must
# reconstruct a byte-identical store with no acked mutation lost) and
# failover chaos (leader death, promote-by-term, fencing, router
# auto-promotion), on both test schedules.
echo "==> replication recovery + failover chaos suites"
cargo test "${CARGO_FLAGS[@]}" -p pqp-server --test repl_recovery --test repl_failover -q
echo "==> replication recovery + failover chaos suites (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp-server \
    --test repl_recovery --test repl_failover -q

# Frame-codec fuzzing: every wire decoder over 12k arbitrary-byte cases
# per test (xoshiro-seeded, reproducible) — Ok or a typed error, never a
# panic.
echo "==> wire codec fuzz (PQP_FUZZ_CASES=12000)"
cargo test "${CARGO_FLAGS[@]}" -p pqp-wire --test fuzz_codec -q

# No new unwrap()/expect() in non-test serving-path code (panics there
# take lock-holding threads down mid-query; use typed errors instead).
echo "==> unwrap/expect gate (service, storage, wire, server)"
./scripts/check_unwrap.sh

# Parallel execution must be row-for-row identical to serial, under the
# default test parallelism AND serially (nested-parallelism interleavings
# differ on both schedules). PQP_THREADS sets the budget under test.
echo "==> parallel equivalence (PQP_THREADS=4)"
PQP_THREADS=4 cargo test "${CARGO_FLAGS[@]}" -p pqp --test parallel_equivalence -q
echo "==> parallel equivalence (PQP_THREADS=4, RUST_TEST_THREADS=1)"
PQP_THREADS=4 RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp --test parallel_equivalence -q

# Statistics may change plans, never answers: the stats-equivalence suite
# (naive vs planned, stats on/off/stale, serial vs PQP_THREADS budget) runs
# under the default test parallelism AND serially, like the parallel suite.
echo "==> stats equivalence (PQP_THREADS=4)"
PQP_THREADS=4 cargo test "${CARGO_FLAGS[@]}" -p pqp --test stats_equivalence -q
echo "==> stats equivalence (PQP_THREADS=4, RUST_TEST_THREADS=1)"
PQP_THREADS=4 RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp --test stats_equivalence -q

# Batched (vectorized) execution is the default path and must be
# byte-identical to the tuple-at-a-time reference: the differential suites
# (random predicates over hazard-biased schemas, the generated movie
# corpus, service-level answers) run on both test schedules.
echo "==> vectorized differential suites"
cargo test "${CARGO_FLAGS[@]}" -p pqp-engine --test vectorized_equivalence -q
cargo test "${CARGO_FLAGS[@]}" -p pqp-datagen --test vectorized_equivalence -q
cargo test "${CARGO_FLAGS[@]}" -p pqp-service --test batched_answers -q
echo "==> vectorized differential suites (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp-engine --test vectorized_equivalence -q
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp-datagen --test vectorized_equivalence -q
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp-service --test batched_answers -q

# The native rank operator must be indistinguishable from the ranked MQ
# rewrite — same rows, bit-identical degrees, deterministic tie order —
# over randomized profiles and K/M/L knobs. The suite itself re-executes
# every native plan under the parallel and tuple-at-a-time executor modes
# and trips governor budgets mid-operator; it runs here on both test
# schedules.
echo "==> native rank differential suite"
cargo test "${CARGO_FLAGS[@]}" -p pqp --test native_rank_differential -q
echo "==> native rank differential suite (RUST_TEST_THREADS=1)"
RUST_TEST_THREADS=1 cargo test "${CARGO_FLAGS[@]}" -p pqp --test native_rank_differential -q

# Native TopK micro-bench smoke (PQP_TOPK_SMOKE shrinks the K/L sweep to
# its two ends): must produce results/micro_topk.json with per-point cost
# model choices and the K=14/L=3 corner speedup. The native-vs-ranked-MQ
# equivalence assertion runs inside the bench binary itself.
echo "==> topk bench smoke"
PQP_TOPK_SMOKE=1 cargo bench "${CARGO_FLAGS[@]}" -p pqp-bench --bench topk
if command -v python3 >/dev/null; then
    python3 - <<'EOF'
import json
doc = json.load(open("results/micro_topk.json"))
assert doc["meta"]["bench"] == "micro_topk"
assert doc["meta"]["schema_version"] >= 2
assert doc["benchmarks"], "no benchmarks recorded"
for b in doc["benchmarks"]:
    assert b["mean_ms"] > 0 and b["n"] > 0
derived = doc["derived"]
for key in ("native_speedup_k14_l3", "top_n", "sweep", "host_cores",
            "measured_cheapest_low_end", "measured_cheapest_high_end"):
    assert key in derived, f"derived.{key} missing"
assert derived["sweep"], "empty sweep"
for point in derived["sweep"]:
    assert point["cost_model_choice"] in ("SQ", "MQ", "native"), point
    assert point["est_cost_mq"] > 0 and point["est_cost_native"] > 0
EOF
else
    grep -q '"native_speedup_k14_l3"' results/micro_topk.json
fi

# Vectorized micro-bench smoke: must produce results/micro_vectorized.json
# with the full benchmark set and a derived speedup block (the asserted
# batched-vs-tuple row identity runs inside the bench binary itself).
echo "==> vectorized bench smoke"
cargo bench "${CARGO_FLAGS[@]}" -p pqp-bench --bench vectorized
if command -v python3 >/dev/null; then
    python3 - <<'EOF'
import json
doc = json.load(open("results/micro_vectorized.json"))
names = {b["name"] for b in doc["benchmarks"]}
for name in ("join4_tuple", "join4_batched", "scan_broad_tuple",
             "scan_broad_batched", "scan_selective_tuple", "scan_selective_batched"):
    assert name in names, f"benchmark {name} missing"
for b in doc["benchmarks"]:
    assert b["mean_ms"] > 0 and b["n"] > 0
for key in ("join4_vectorized_speedup", "scan_broad_vectorized_speedup",
            "scan_selective_vectorized_speedup", "join4_rows", "host_cores"):
    assert key in doc["derived"], f"derived.{key} missing"
assert doc["derived"]["join4_rows"] > 0
assert doc["meta"]["bench"] == "micro_vectorized"
EOF
else
    grep -q '"join4_vectorized_speedup"' results/micro_vectorized.json
fi

# Replication bench smoke (PQP_REPL_SMOKE shrinks the sample counts):
# must produce results/micro_repl.json with the in-memory vs WAL'd
# mutation overhead and the ack-quorum latency curve over 1..3 loopback
# followers.
echo "==> replication bench smoke"
PQP_REPL_SMOKE=1 cargo bench "${CARGO_FLAGS[@]}" -p pqp-bench --bench repl
if command -v python3 >/dev/null; then
    python3 - <<'EOF'
import json
doc = json.load(open("results/micro_repl.json"))
assert doc["meta"]["bench"] == "micro_repl"
assert doc["meta"]["schema_version"] >= 2
assert doc["meta"]["host_cores"] >= 1
names = {b["name"] for b in doc["benchmarks"]}
for name in ("in_memory", "wal_quorum1", "quorum2_followers1",
             "quorum3_followers2", "quorum4_followers3"):
    assert name in names, f"benchmark {name} missing"
for b in doc["benchmarks"]:
    assert b["mean_ms"] > 0 and b["n"] > 0
curve = doc["derived"]["quorum_curve"]
assert [p["followers"] for p in curve] == [1, 2, 3]
for p in curve:
    assert p["ack_p50_ms"] > 0 and p["ack_p95_ms"] >= p["ack_p50_ms"]
assert doc["derived"]["durability_overhead_factor"] > 0
EOF
else
    grep -q '"quorum_curve"' results/micro_repl.json
fi

# Macro load harness smoke: a short zipf closed-loop run must produce
# results/macro_load.json with a non-zero throughput figure.
echo "==> load harness smoke (1s closed loop)"
PQP_LOAD_SECONDS=1 PQP_LOAD_USERS=10 PQP_LOAD_WORKERS=2 \
    cargo bench "${CARGO_FLAGS[@]}" -p pqp-bench --bench load
grep -q '"throughput_qps"' results/macro_load.json
if command -v python3 >/dev/null; then
    python3 - <<'EOF'
import json
doc = json.load(open("results/macro_load.json"))
assert doc["throughput_qps"] > 0, "throughput must be non-zero"
for key in ("p50", "p95", "p99"):
    assert key in doc["latency_ms"], f"latency_ms.{key} missing"
assert doc["meta"]["schema_version"] >= 2
EOF
else
    grep -q '"p99"' results/macro_load.json
fi

# The same harness over real loopback sockets: PQP_LOAD_MODE=tcp fronts
# the service with an in-process pqp-server and must report non-zero
# throughput with client-measured latency quantiles.
echo "==> TCP load harness smoke (1s closed loop over loopback)"
PQP_LOAD_MODE=tcp PQP_LOAD_SECONDS=1 PQP_LOAD_USERS=10 PQP_LOAD_WORKERS=2 \
    cargo bench "${CARGO_FLAGS[@]}" -p pqp-bench --bench load
grep -q '"throughput_qps"' results/macro_load_tcp.json
if command -v python3 >/dev/null; then
    python3 - <<'EOF'
import json
doc = json.load(open("results/macro_load_tcp.json"))
assert doc["throughput_qps"] > 0, "TCP throughput must be non-zero"
assert doc["config"]["mode"] == "tcp"
assert doc["latency_ms"]["source"] == "client"
for key in ("p50", "p95", "p99"):
    assert key in doc["latency_ms"], f"latency_ms.{key} missing"
assert doc["meta"]["schema_version"] >= 2
EOF
else
    grep -q '"p99"' results/macro_load_tcp.json
fi

echo "==> cargo test --doc"
cargo test "${CARGO_FLAGS[@]}" --workspace --doc -q

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc "${CARGO_FLAGS[@]}" --workspace --no-deps -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> OK"
