//! Completeness of the preference-selection algorithm (paper Theorems 1–2):
//! on randomized profiles and queries, the best-first algorithm must produce
//! exactly the preferences a brute-force enumerator finds — every related,
//! non-conflicting transitive selection, in decreasing degree order, cut by
//! the interest criterion.

mod common;

use pqp_core::conflict::conflicts_with_query;
use pqp_core::doi::PaperCombinator;
use pqp_core::graph::{GraphAccess, InMemoryGraph};
use pqp_core::path::PreferencePath;
use pqp_core::{select_preferences, InterestCriterion, Profile, QueryGraph};
use pqp_datagen::{generate, generate_profile, MovieDbConfig, ProfileGenConfig};
use pqp_obs::rng::{Rng, SmallRng};

/// Enumerate ALL completed, non-conflicting preference paths by depth-first
/// search (no pruning other than the cycle rule), sorted by
/// (degree desc, length asc).
fn brute_force_paths(qg: &QueryGraph, graph: &InMemoryGraph) -> Vec<PreferencePath> {
    let comb = PaperCombinator;
    let mut out = Vec::new();
    fn expand(
        path: &PreferencePath,
        qg: &QueryGraph,
        graph: &InMemoryGraph,
        comb: &PaperCombinator,
        out: &mut Vec<PreferencePath>,
    ) {
        let end = path.end_table().to_string();
        for sel in graph.selections_of(&end) {
            let p = path.with_selection(sel, comb);
            if !conflicts_with_query(&p, qg) {
                out.push(p);
            }
        }
        for join in graph.joins_from(&end) {
            let target = join.to.table.to_ascii_uppercase();
            if path.visited_tables().contains(&target) || qg.contains_table(&target) {
                continue;
            }
            let p = path.with_join(join, comb);
            expand(&p, qg, graph, comb, out);
        }
    }
    for node in &qg.nodes {
        let anchor = PreferencePath::anchor(&node.var, &node.table);
        expand(&anchor, qg, graph, &comb, &mut out);
    }
    out.sort_by(|a, b| b.doi.cmp(&a.doi).then(a.len().cmp(&b.len())));
    out
}

/// Apply an interest criterion greedily to a (degree desc)-ordered list.
fn greedy_cut(all: &[PreferencePath], ci: &InterestCriterion) -> Vec<PreferencePath> {
    let mut selected = Vec::new();
    let mut dois = Vec::new();
    for p in all {
        if ci.accepts(&dois, p.doi) {
            dois.push(p.doi);
            selected.push(p.clone());
        } else {
            break;
        }
    }
    selected
}

fn check_profile_query(profile: &Profile, sql: &str, catalog: &pqp_storage::Catalog) {
    let graph = InMemoryGraph::build(profile, catalog).unwrap();
    let q = pqp_sql::parse_query(sql).unwrap();
    let qg = QueryGraph::from_select(q.as_select().unwrap(), catalog).unwrap();
    let all = brute_force_paths(&qg, &graph);

    for ci in [
        InterestCriterion::TopK(1),
        InterestCriterion::TopK(3),
        InterestCriterion::TopK(10),
        InterestCriterion::TopK(1000),
        InterestCriterion::MinDegree(0.5),
        InterestCriterion::MinDegree(0.8),
        InterestCriterion::DisjunctionAbove(0.6),
    ] {
        let expected = greedy_cut(&all, &ci);
        let got = select_preferences(&qg, &graph, &ci);
        // Degrees must match exactly (the sets can differ only between
        // equal-degree, equal-length paths — compare the degree+length
        // multiset, which the ordering semantics pin down).
        let exp_sig: Vec<(String, usize)> =
            expected.iter().map(|p| (format!("{:.12}", p.doi.value()), p.len())).collect();
        let got_sig: Vec<(String, usize)> =
            got.selected.iter().map(|p| (format!("{:.12}", p.doi.value()), p.len())).collect();
        assert_eq!(
            got_sig,
            exp_sig,
            "criterion {ci} over {sql}:\nexpected {:#?}\ngot {:#?}",
            expected.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
            got.selected.iter().map(|p| p.to_string()).collect::<Vec<_>>()
        );
        // Every produced path must be genuinely valid.
        for p in &got.selected {
            assert!(p.is_selection());
            assert!(!conflicts_with_query(p, &qg), "conflicting path selected: {p}");
        }
    }
}

#[test]
fn completeness_on_julie() {
    let db = common::paper_db();
    check_profile_query(
        &common::julie(),
        "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid and PL.date = 'x'",
        db.catalog(),
    );
}

#[test]
fn completeness_on_random_profiles() {
    let m = generate(MovieDbConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(99);
    let queries = [
        "select MV.title from MOVIE MV",
        "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid and PL.date = 'd'",
        "select TH.name from THEATRE TH where TH.region = 'downtown'",
        "select GN.genre from GENRE GN, MOVIE MV where GN.mid = MV.mid",
        "select AC.name from ACTOR AC, CAST CA where AC.aid = CA.aid",
        "select D1.name from DIRECTOR D1",
    ];
    for trial in 0..12 {
        let profile = generate_profile(
            "u",
            &m.pools,
            &ProfileGenConfig {
                selections: 5 + rng.gen_range(0..40usize),
                join_coverage: if trial % 3 == 0 { 0.6 } else { 1.0 },
                seed: rng.next_u64(),
            },
        );
        for sql in &queries {
            check_profile_query(&profile, sql, m.db.catalog());
        }
    }
}

#[test]
fn completeness_with_replicated_relation() {
    let m = generate(MovieDbConfig::tiny());
    let profile = generate_profile(
        "u",
        &m.pools,
        &ProfileGenConfig { selections: 20, seed: 4, ..Default::default() },
    );
    check_profile_query(
        &profile,
        "select G1.genre from GENRE G1, GENRE G2, MOVIE MV \
         where G1.mid = MV.mid and G2.mid = MV.mid and G1.genre = 'comedy'",
        m.db.catalog(),
    );
}
