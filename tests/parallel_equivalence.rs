//! Property-style equivalence suite for intra-query parallelism: for a
//! corpus of generated movie-schema queries, parallel execution under an
//! N-thread budget must return the same rows, in the same order, as serial
//! execution.
//!
//! The determinism contract (DESIGN.md, "Parallel execution"): parallel
//! operators merge partitions in partition order, so output is row-for-row
//! identical to the serial executor for any thread budget.
//!
//! The thread budget defaults to 4 and can be overridden with
//! `PQP_THREADS` (scripts/verify.sh and CI run this suite with
//! `PQP_THREADS=4`, both under the default test harness and under
//! `RUST_TEST_THREADS=1`).

use pqp::datagen::{generate, generate_queries, MovieDbConfig, QueryGenConfig};
use pqp::engine::{Database, ExecOptions};

/// Thread budget under test: `PQP_THREADS`, default 4.
fn test_threads() -> usize {
    std::env::var("PQP_THREADS").ok().and_then(|s| s.parse().ok()).filter(|&n| n > 1).unwrap_or(4)
}

/// An [`ExecOptions`] with the threshold dropped so even the tiny test
/// databases actually take the parallel paths.
fn parallel_opts() -> ExecOptions {
    ExecOptions::with_threads(test_threads()).min_parallel_rows(2)
}

fn assert_equivalent(db: &Database, queries: &[pqp::sql::ast::Query], what: &str) {
    let opts = parallel_opts();
    for (i, q) in queries.iter().enumerate() {
        let plan = db.plan(q).unwrap_or_else(|e| panic!("{what} query {i} failed to plan: {e}"));
        let serial = db.run_plan(&plan).unwrap();
        let parallel = db.run_plan_with(&plan, &opts).unwrap();
        assert_eq!(
            serial.rows,
            parallel.rows,
            "{what} query {i} diverged under {} threads:\n{}",
            opts.threads,
            plan.explain()
        );
        assert_eq!(serial.columns, parallel.columns);
    }
}

#[test]
fn generated_selective_queries_match_serial() {
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(60, &m.pools, &QueryGenConfig::default());
    assert_equivalent(&m.db, &queries, "selective");
}

#[test]
fn generated_broad_queries_match_serial() {
    // Broad (selection-free) queries produce the large intermediate results
    // where partitioned joins actually fan out.
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(40, &m.pools, &QueryGenConfig::broad());
    assert_equivalent(&m.db, &queries, "broad");
}

#[test]
fn parallel_paths_were_actually_exercised() {
    // Guard against the suite silently passing because every query fell back
    // to the serial fast path: the worker counter must move.
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(10, &m.pools, &QueryGenConfig::broad());
    let before = pqp::obs::metrics::global_snapshot().counter("exec.parallel.workers");
    assert_equivalent(&m.db, &queries, "counter-guard");
    let after = pqp::obs::metrics::global_snapshot().counter("exec.parallel.workers");
    assert!(after > before, "no parallel operator ran: exec.parallel.workers stayed at {after}");
}

#[test]
fn service_answers_are_thread_budget_agnostic() {
    use pqp::{Service, ServiceConfig};

    let serial_svc = Service::new(generate(MovieDbConfig::tiny()).db);
    let par_svc = Service::with_config(
        generate(MovieDbConfig::tiny()).db,
        ServiceConfig { exec: parallel_opts(), ..ServiceConfig::default() },
    );
    for svc in [&serial_svc, &par_svc] {
        svc.add_join("ana", "MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        svc.add_selection("ana", "GENRE", "genre", "comedy", 0.8).unwrap();
    }
    let sql = "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid";
    let a = serial_svc.session("ana").query(sql).unwrap();
    let b = par_svc.session("ana").query(sql).unwrap();
    assert_eq!(a.rows.rows, b.rows.rows, "service answers diverged across thread budgets");
}
