//! Differential testing for statistics-driven planning: over a corpus of
//! generated movie-schema queries, the planned pipeline must return the
//! same multiset of rows as the naive AST interpreter **both** before and
//! after `ANALYZE` — statistics may change join orders and access paths
//! (index scans, index joins), never answers.
//!
//! Also re-checks the parallel determinism contract on the stats-informed
//! plans: execution under a thread budget stays byte-identical to serial
//! (scripts/verify.sh and CI run this suite with `PQP_THREADS=4`, under
//! the default harness and under `RUST_TEST_THREADS=1`).

use pqp::datagen::{generate, generate_queries, MovieDbConfig, QueryGenConfig};
use pqp::engine::{Database, ExecOptions};
use pqp::sql::ast::Query;
use pqp::storage::Value;

/// Thread budget under test: `PQP_THREADS`, default 4.
fn test_threads() -> usize {
    std::env::var("PQP_THREADS").ok().and_then(|s| s.parse().ok()).filter(|&n| n > 1).unwrap_or(4)
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

fn corpus() -> (pqp::datagen::MovieDb, Vec<Query>) {
    let m = generate(MovieDbConfig::tiny());
    let mut queries = generate_queries(50, &m.pools, &QueryGenConfig::default());
    queries.extend(generate_queries(25, &m.pools, &QueryGenConfig::broad()));
    (m, queries)
}

#[test]
fn planned_results_match_naive_with_and_without_stats() {
    let (m, queries) = corpus();
    let db: &Database = &m.db;

    // Pass 1: no statistics — plans use the fallback heuristics.
    let blind: Vec<_> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let naive = db.run_naive(q).unwrap_or_else(|e| panic!("query {i} naive: {e}"));
            let plan = db.plan(q).unwrap_or_else(|e| panic!("query {i} plan: {e}"));
            let planned = db.run_plan(&plan).unwrap();
            assert_eq!(
                sorted(naive.rows.clone()),
                sorted(planned.rows),
                "query {i} diverged without stats:\n{}",
                plan.explain()
            );
            naive
        })
        .collect();

    // Pass 2: ANALYZE everything and re-plan — the stats-informed plans
    // (possibly different join orders, IndexScan/IndexJoin access paths)
    // must produce the same multisets.
    db.catalog().analyze_all().unwrap();
    let opts = ExecOptions::with_threads(test_threads()).min_parallel_rows(2);
    for (i, q) in queries.iter().enumerate() {
        let plan = db.plan(q).unwrap_or_else(|e| panic!("query {i} re-plan: {e}"));
        let informed = db.run_plan(&plan).unwrap();
        assert_eq!(
            sorted(blind[i].rows.clone()),
            sorted(informed.rows.clone()),
            "query {i} diverged with stats:\n{}",
            plan.explain()
        );
        // Determinism contract holds for stats-informed plans too.
        let parallel = db.run_plan_with(&plan, &opts).unwrap();
        assert_eq!(
            informed.rows,
            parallel.rows,
            "query {i} parallel run diverged on a stats-informed plan:\n{}",
            plan.explain()
        );
    }
}

#[test]
fn stale_stats_never_change_answers() {
    // ANALYZE, then mutate the data so the statistics are stale: planning
    // may be misinformed, answers must not be.
    let m = generate(MovieDbConfig::tiny());
    let db: &Database = &m.db;
    db.catalog().analyze_all().unwrap();
    {
        let genre = db.catalog().table("GENRE").unwrap();
        let mut genre = genre.write();
        for mid in 0..50i64 {
            genre.insert(vec![Value::Int(mid), Value::str("noir")]).unwrap();
        }
    }
    let queries = generate_queries(30, &m.pools, &QueryGenConfig::default());
    for (i, q) in queries.iter().enumerate() {
        let naive = db.run_naive(q).unwrap();
        let plan = db.plan(q).unwrap();
        let planned = db.run_plan(&plan).unwrap();
        assert_eq!(
            sorted(naive.rows),
            sorted(planned.rows),
            "query {i} diverged under stale stats:\n{}",
            plan.explain()
        );
    }
}
