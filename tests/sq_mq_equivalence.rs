//! SQ vs MQ: the paper presents the two integration approaches as
//! equivalent. This holds unconditionally for L ≤ 1; for L ≥ 2 MQ counts
//! preferences satisfied by *any* witness per projected row while SQ demands
//! a single witness satisfying L preferences together, so SQ ⊆ MQ with
//! equality whenever the projected attributes determine the anchor tuples
//! (the situation in all of the paper's examples). These tests pin down both
//! the equality and the containment on randomized workloads.

use pqp_core::prelude::*;
use pqp_datagen::{
    generate, generate_profile, generate_queries, MovieDbConfig, ProfileGenConfig, QueryGenConfig,
};
use std::collections::BTreeSet;

fn rows_of(db: &pqp_engine::Database, q: &pqp_sql::Query) -> BTreeSet<Vec<String>> {
    db.run_query(q)
        .unwrap_or_else(|e| panic!("query failed: {e}\n{q}"))
        .rows
        .into_iter()
        .map(|r| r.into_iter().map(|v| v.to_string()).collect())
        .collect()
}

#[test]
fn sq_equals_mq_for_l_at_most_one() {
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(12, &m.pools, &QueryGenConfig::default());
    for (i, q) in queries.iter().enumerate() {
        let profile = generate_profile(
            "u",
            &m.pools,
            &ProfileGenConfig { selections: 15, seed: 1000 + i as u64, ..Default::default() },
        );
        let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
        for l in [0usize, 1] {
            let p = personalize(
                q,
                &graph,
                m.db.catalog(),
                PersonalizeOptions::builder().k(5).l(l).build(),
            )
            .unwrap();
            let sq = p.sq().unwrap();
            let mq = p.mq().unwrap();
            let a = rows_of(&m.db, &sq);
            let b = rows_of(&m.db, &mq);
            assert_eq!(a, b, "L={l} divergence on query {i}: {q}\nSQ: {sq}\nMQ: {mq}");
        }
    }
}

#[test]
fn sq_subset_of_mq_for_higher_l() {
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(12, &m.pools, &QueryGenConfig::default());
    let mut nonempty = 0;
    for (i, q) in queries.iter().enumerate() {
        let profile = generate_profile(
            "u",
            &m.pools,
            &ProfileGenConfig { selections: 20, seed: 2000 + i as u64, ..Default::default() },
        );
        let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
        for l in [2usize, 3] {
            let p = personalize(
                q,
                &graph,
                m.db.catalog(),
                PersonalizeOptions::builder().k(6).l(l).build(),
            )
            .unwrap();
            let sq = p.sq().unwrap();
            let mq = p.mq().unwrap();
            let a = rows_of(&m.db, &sq);
            let b = rows_of(&m.db, &mq);
            assert!(
                a.is_subset(&b),
                "L={l}: SQ ⊄ MQ on query {i}: {q}\nSQ-only rows: {:?}",
                a.difference(&b).take(3).collect::<Vec<_>>()
            );
            nonempty += usize::from(!a.is_empty());
        }
    }
    assert!(nonempty > 0, "the workload never produced results; tests are vacuous");
}

#[test]
fn personalized_results_are_contained_in_initial_results_when_m_zero_l_positive() {
    // With L ≥ 1 every personalized row must also satisfy the initial query.
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(8, &m.pools, &QueryGenConfig::default());
    for (i, q) in queries.iter().enumerate() {
        let profile = generate_profile(
            "u",
            &m.pools,
            &ProfileGenConfig { selections: 12, seed: 3000 + i as u64, ..Default::default() },
        );
        let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
        let p =
            personalize(q, &graph, m.db.catalog(), PersonalizeOptions::builder().k(4).l(1).build())
                .unwrap();
        let initial: BTreeSet<Vec<String>> = rows_of(&m.db, q);
        let personalized = rows_of(&m.db, &p.mq().unwrap());
        assert!(personalized.is_subset(&initial), "personalized ⊄ initial on query {i}: {q}");
    }
}

#[test]
fn sq_and_mq_agree_on_result_degrees_when_ranked() {
    // For L=1 the ranked MQ interest of each row must equal the client-side
    // estimate over the preferences that row satisfies individually.
    let m = generate(MovieDbConfig::tiny());
    let q = &generate_queries(3, &m.pools, &QueryGenConfig::default())[0];
    let profile = generate_profile(
        "u",
        &m.pools,
        &ProfileGenConfig { selections: 15, seed: 77, ..Default::default() },
    );
    let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
    let p = personalize(
        q,
        &graph,
        m.db.catalog(),
        PersonalizeOptions::builder().k(5).l(1).build().ranked(),
    )
    .unwrap();
    let rs = m.db.run_query(&p.mq().unwrap()).unwrap();
    let Some(interest) = rs.column("interest") else {
        return; // no preferences selected for this pairing
    };
    // Recompute each row's interest by running every single-preference
    // partial separately.
    for (row, got) in rs.rows.iter().zip(interest.iter()) {
        let key: Vec<String> = row[..row.len() - 1].iter().map(|v| v.to_string()).collect();
        let mut satisfied = Vec::new();
        for path in &p.paths {
            let single = pqp_core::integrate_mq(
                q.as_select().unwrap(),
                std::slice::from_ref(path),
                0,
                MatchSpec::AtLeast(1),
                false,
            )
            .unwrap();
            let rows = rows_of(&m.db, &single);
            if rows.contains(&key) {
                satisfied.push(path.doi);
            }
        }
        let expect = pqp_core::rank::estimate_interest(&satisfied).value();
        let got = got.as_f64().unwrap();
        assert!(
            (expect - got).abs() < 1e-9,
            "row {key:?}: engine says {got}, client-side estimate {expect}"
        );
    }
}
