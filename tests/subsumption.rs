//! The paper's theorem (§3.3): among logical combinations of the top-K
//! preferences ("any L of the K most interesting"), subsumed conditions —
//! whose results are contained in another's for all databases — carry a
//! degree of interest at least as high. Smaller answers are more
//! interesting.
//!
//! We verify the two instances the combination functions must support:
//!
//! 1. degree is monotone non-increasing in L (satisfying "any L+1 of K" is
//!    subsumed by "any L of K");
//! 2. a conjunction's degree dominates the degree of any of its subsets.

use pqp_core::doi::{conjunction_degree, disjunction_degree, Doi};
use pqp_obs::rng::{Rng, SmallRng};

fn degrees(rng: &mut SmallRng, n: usize) -> Vec<Doi> {
    let len = rng.gen_range(1..=n);
    (0..len).map(|_| Doi::new(rng.gen_f64()).unwrap()).collect()
}

/// Degree of the condition "at least L of these K preferences hold":
/// the disjunction over all L-subsets of the conjunction of each subset.
fn l_of_k_degree(dois: &[Doi], l: usize) -> Doi {
    assert!(l >= 1 && l <= dois.len());
    let mut combo_degrees = Vec::new();
    let mut subset = Vec::new();
    fn rec(dois: &[Doi], l: usize, start: usize, subset: &mut Vec<Doi>, out: &mut Vec<Doi>) {
        if subset.len() == l {
            out.push(conjunction_degree(subset));
            return;
        }
        for i in start..dois.len() {
            subset.push(dois[i]);
            rec(dois, l, i + 1, subset, out);
            subset.pop();
        }
    }
    rec(dois, l, 0, &mut subset, &mut combo_degrees);
    disjunction_degree(&combo_degrees)
}

#[test]
fn conjunction_dominates_subsets() {
    let mut rng = SmallRng::seed_from_u64(0x5b5);
    for _ in 0..256 {
        let ds = degrees(&mut rng, 6);
        // result(A ∧ B) ⊆ result(A) ⇒ degree(A ∧ B) ≥ degree(A).
        let all = conjunction_degree(&ds);
        for i in 0..ds.len() {
            let mut subset = ds.clone();
            subset.remove(i);
            if subset.is_empty() {
                continue;
            }
            assert!(all >= conjunction_degree(&subset));
        }
    }
}

#[test]
fn l_of_k_degree_is_monotone_in_l() {
    let mut rng = SmallRng::seed_from_u64(0x10f);
    for _ in 0..256 {
        let ds = degrees(&mut rng, 6);
        // "at least L+1 of K" is subsumed by "at least L of K", so its
        // degree must be at least as large.
        for l in 1..ds.len() {
            let lower = l_of_k_degree(&ds, l);
            let higher = l_of_k_degree(&ds, l + 1);
            assert!(
                higher >= lower,
                "L={} gives {}, L={} gives {} for {:?}",
                l + 1,
                higher.value(),
                l,
                lower.value(),
                ds.iter().map(|d| d.value()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn transitive_extension_never_raises_degree() {
    let mut rng = SmallRng::seed_from_u64(0x7a11);
    for _ in 0..256 {
        let ds = degrees(&mut rng, 6);
        // Longer paths are weaker preferences: the product of more degrees
        // is no larger.
        let shorter = pqp_core::doi::transitive_degree(&ds[..ds.len().saturating_sub(1).max(1)]);
        let longer = pqp_core::doi::transitive_degree(&ds);
        assert!(longer <= shorter);
    }
}

#[test]
fn axioms_hold_for_arbitrary_inputs() {
    let mut rng = SmallRng::seed_from_u64(0xa010);
    for _ in 0..256 {
        let ds = degrees(&mut rng, 8);
        // ε absorbs FP rounding: e.g. 1−(1−d) can differ from d by an ulp.
        const EPS: f64 = 1e-12;
        let min = ds.iter().copied().min().unwrap().value();
        let max = ds.iter().copied().max().unwrap().value();
        assert!(pqp_core::doi::transitive_degree(&ds).value() <= min + EPS);
        assert!(conjunction_degree(&ds).value() >= max - EPS);
        let dis = disjunction_degree(&ds).value();
        assert!(dis >= min - EPS && dis <= max + EPS);
    }
}
