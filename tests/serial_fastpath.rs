//! Regression tests for the serial fast path: a `threads <= 1` budget (the
//! default) and small-input runs must never spawn parallel workers.
//!
//! Every parallel operator bumps the process-global
//! `exec.parallel.workers` counter once per worker it spawns, and nothing
//! else touches that counter — so a zero delta across a run proves no
//! worker thread was created. This file is its own integration-test binary
//! (own process) so counters from other suites cannot perturb the deltas.

use pqp::datagen::{generate, generate_queries, MovieDbConfig, QueryGenConfig};
use pqp::engine::ExecOptions;

fn workers_spawned() -> i64 {
    pqp::obs::metrics::global_snapshot().counter("exec.parallel.workers")
}

#[test]
fn default_and_threads_1_budgets_never_spawn() {
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(25, &m.pools, &QueryGenConfig::broad());
    let before = workers_spawned();
    for q in &queries {
        let plan = m.db.plan(q).unwrap();
        m.db.run_plan(&plan).unwrap();
        m.db.run_plan_with(&plan, &ExecOptions::default()).unwrap();
        m.db.run_plan_with(&plan, &ExecOptions::with_threads(1)).unwrap();
        // A low threshold changes nothing when the budget itself is serial.
        m.db.run_plan_with(&plan, &ExecOptions::with_threads(1).min_parallel_rows(1)).unwrap();
    }
    assert_eq!(workers_spawned(), before, "serial budgets spawned parallel workers");
}

#[test]
fn below_threshold_inputs_stay_serial() {
    // threads=8 but the tiny database sits far below the default
    // min_parallel_rows threshold, so every operator takes the serial path.
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(25, &m.pools, &QueryGenConfig::default());
    let opts = ExecOptions::with_threads(8);
    let before = workers_spawned();
    for q in &queries {
        m.db.run_query_with(q, &opts).unwrap();
    }
    assert_eq!(
        workers_spawned(),
        before,
        "inputs below min_parallel_rows ({}) should not fan out",
        pqp::engine::DEFAULT_MIN_PARALLEL_ROWS
    );
}
