//! Shared fixture: the paper's movies schema with a small hand-checked
//! instance, plus Julie's and Rob's profiles from the running example.
#![allow(dead_code)] // not every integration test uses every helper

use pqp_core::Profile;
use pqp_datagen::movies_catalog;
use pqp_engine::Database;
use pqp_storage::Value;

/// Tonight's date in the fixture.
pub const TONIGHT: &str = "2003-07-02";

/// Build the hand-checked movies instance.
///
/// | movie   | genres   | cast               | director | plays tonight |
/// |---------|----------|--------------------|----------|---------------|
/// | Alpha   | comedy   | N. Kidman          | D. Lynch | yes           |
/// | Beta    | comedy   | A. Hopkins         | W. Allen | yes           |
/// | Gamma   | sci-fi   | N. Kidman, J. Roberts | S. Kubrick | yes      |
/// | Delta   | thriller | I. Rossellini      | D. Lynch | yes           |
/// | Omega   | cooking  | A. Hopkins         | W. Allen | no (tomorrow) |
pub fn paper_db() -> Database {
    let c = movies_catalog();
    let ins = |t: &str, rows: Vec<Vec<Value>>| {
        let t = c.table(t).unwrap();
        let mut t = t.write();
        for r in rows {
            t.insert(r).unwrap();
        }
    };
    ins(
        "THEATRE",
        vec![
            vec![1.into(), "Odeon".into(), "210-1".into(), "downtown".into()],
            vec![2.into(), "Rex".into(), "210-2".into(), "uptown".into()],
        ],
    );
    ins(
        "MOVIE",
        vec![
            vec![1.into(), "Alpha".into(), 2001.into()],
            vec![2.into(), "Beta".into(), 2002.into()],
            vec![3.into(), "Gamma".into(), 2003.into()],
            vec![4.into(), "Delta".into(), 2000.into()],
            vec![5.into(), "Omega".into(), 1999.into()],
        ],
    );
    ins(
        "GENRE",
        vec![
            vec![1.into(), "comedy".into()],
            vec![2.into(), "comedy".into()],
            vec![3.into(), "sci-fi".into()],
            vec![4.into(), "thriller".into()],
            vec![5.into(), "cooking".into()],
        ],
    );
    ins(
        "ACTOR",
        vec![
            vec![10.into(), "N. Kidman".into()],
            vec![11.into(), "A. Hopkins".into()],
            vec![12.into(), "J. Roberts".into()],
            vec![13.into(), "I. Rossellini".into()],
        ],
    );
    ins(
        "CAST",
        vec![
            vec![1.into(), 10.into(), Value::Null, "lead".into()],
            vec![2.into(), 11.into(), Value::Null, Value::Null],
            vec![3.into(), 10.into(), Value::Null, Value::Null],
            vec![3.into(), 12.into(), Value::Null, "lead".into()],
            vec![4.into(), 13.into(), Value::Null, Value::Null],
            vec![5.into(), 11.into(), Value::Null, Value::Null],
        ],
    );
    ins(
        "DIRECTOR",
        vec![
            vec![20.into(), "D. Lynch".into()],
            vec![21.into(), "W. Allen".into()],
            vec![22.into(), "S. Kubrick".into()],
        ],
    );
    ins(
        "DIRECTED",
        vec![
            vec![1.into(), 20.into()],
            vec![2.into(), 21.into()],
            vec![3.into(), 22.into()],
            vec![4.into(), 20.into()],
            vec![5.into(), 21.into()],
        ],
    );
    ins(
        "PLAY",
        vec![
            vec![1.into(), 1.into(), TONIGHT.into()],
            vec![1.into(), 2.into(), TONIGHT.into()],
            vec![2.into(), 3.into(), TONIGHT.into()],
            vec![2.into(), 4.into(), TONIGHT.into()],
            vec![1.into(), 5.into(), "2003-07-03".into()],
        ],
    );
    Database::new(c)
}

/// Julie's profile (paper Figures 2–3): degrees chosen so the top-3
/// preferences for the initial query are D. Lynch (0.9), comedy (0.81) and
/// N. Kidman (0.72), as in §5.2's worked example.
pub fn julie() -> Profile {
    let mut p = Profile::new("julie");
    p.add_join("THEATRE", "tid", "PLAY", "tid", 1.0).unwrap();
    p.add_join("PLAY", "tid", "THEATRE", "tid", 1.0).unwrap();
    p.add_join("PLAY", "mid", "MOVIE", "mid", 1.0).unwrap();
    p.add_join("MOVIE", "mid", "PLAY", "mid", 0.8).unwrap();
    p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    p.add_join("MOVIE", "mid", "CAST", "mid", 0.8).unwrap();
    p.add_join("CAST", "aid", "ACTOR", "aid", 1.0).unwrap();
    p.add_join("MOVIE", "mid", "DIRECTED", "mid", 1.0).unwrap();
    p.add_join("DIRECTED", "did", "DIRECTOR", "did", 1.0).unwrap();
    p.add_selection("THEATRE", "region", "downtown", 0.5).unwrap();
    p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
    p.add_selection("GENRE", "genre", "thriller", 0.7).unwrap();
    p.add_selection("GENRE", "genre", "adventure", 0.4).unwrap();
    p.add_selection("DIRECTOR", "name", "D. Lynch", 0.9).unwrap();
    p.add_selection("DIRECTOR", "name", "W. Allen", 0.6).unwrap();
    p.add_selection("ACTOR", "name", "N. Kidman", 0.9).unwrap();
    p.add_selection("ACTOR", "name", "A. Hopkins", 0.7).unwrap();
    p.add_selection("ACTOR", "name", "I. Rossellini", 0.4).unwrap();
    p
}

/// Rob's profile from the introduction: sci-fi movies and J. Roberts.
pub fn rob() -> Profile {
    let mut p = Profile::new("rob");
    p.add_join("PLAY", "mid", "MOVIE", "mid", 1.0).unwrap();
    p.add_join("MOVIE", "mid", "GENRE", "mid", 1.0).unwrap();
    p.add_join("MOVIE", "mid", "CAST", "mid", 1.0).unwrap();
    p.add_join("CAST", "aid", "ACTOR", "aid", 1.0).unwrap();
    p.add_selection("GENRE", "genre", "sci-fi", 0.9).unwrap();
    p.add_selection("ACTOR", "name", "J. Roberts", 0.8).unwrap();
    p
}

/// The paper's initial query: "what is shown tonight".
pub fn tonight_query() -> pqp_sql::Query {
    pqp_sql::parse_query(&format!(
        "select MV.title from MOVIE MV, PLAY PL \
         where MV.mid = PL.mid and PL.date = '{TONIGHT}'"
    ))
    .unwrap()
}

/// Titles of a result set's first column, in result order.
pub fn titles(rs: &pqp_engine::ResultSet) -> Vec<String> {
    rs.rows.iter().map(|r| r[0].as_str().unwrap().to_string()).collect()
}

/// Titles, sorted (for set comparison).
pub fn titles_sorted(rs: &pqp_engine::ResultSet) -> Vec<String> {
    let mut t = titles(rs);
    t.sort();
    t
}
