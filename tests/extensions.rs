//! Extension features (the paper's §8 future work): negative preferences,
//! result explanation, implicit profile learning.

mod common;

use common::*;
use pqp_core::explain::{explain, verify_against_engine};
use pqp_core::learn::{LearnerConfig, ProfileLearner};
use pqp_core::negative::{integrate_mq_with_negatives, select_negatives};
use pqp_core::prelude::*;
use pqp_storage::Value;

#[test]
fn hard_negative_excludes_results() {
    let db = paper_db();
    let mut profile = julie();
    // Julie never wants sci-fi.
    profile.add_negative_selection("GENRE", "genre", "sci-fi", 1.0).unwrap();

    let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build(),
    )
    .unwrap();
    let negatives = select_negatives(&tonight_query(), &profile, db.catalog(), 5).unwrap();
    assert_eq!(negatives.len(), 1, "{negatives:?}");

    let q = integrate_mq_with_negatives(
        tonight_query().as_select().unwrap(),
        &p.paths,
        &negatives,
        0,
        MatchSpec::AtLeast(1),
    )
    .unwrap();
    let rs = db.run_query(&q).unwrap();
    // Without the negative: Alpha, Beta, Delta, Gamma. Gamma is sci-fi.
    let t = titles(&rs);
    assert!(!t.contains(&"Gamma".to_string()), "{t:?}");
    assert_eq!(t.len(), 3);
}

#[test]
fn soft_negative_demotes_ranking() {
    let db = paper_db();
    let mut profile = julie();
    // Mild aversion to thrillers: Delta (thriller, Lynch) should fall below
    // Beta (comedy) without disappearing.
    profile.add_negative_selection("GENRE", "genre", "thriller", 0.5).unwrap();

    let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build(),
    )
    .unwrap();
    let negatives = select_negatives(&tonight_query(), &profile, db.catalog(), 5).unwrap();
    let q = integrate_mq_with_negatives(
        tonight_query().as_select().unwrap(),
        &p.paths,
        &negatives,
        0,
        MatchSpec::AtLeast(1),
    )
    .unwrap();
    let rs = db.run_query(&q).unwrap();
    let t = titles(&rs);
    assert_eq!(t.len(), 4, "soft negative keeps the row: {t:?}");
    // Delta: Lynch 0.9 demoted by (1 - 0.5·0.9·0.9 ≈ 0.405) → 0.9·0.595 ≈ 0.5355,
    // now below Beta (0.81) and Gamma (0.72).
    let delta_pos = t.iter().position(|x| x == "Delta").unwrap();
    let beta_pos = t.iter().position(|x| x == "Beta").unwrap();
    assert!(delta_pos > beta_pos, "{t:?}");
    // Interests stay monotone.
    let interest = rs.column("interest").unwrap();
    let vals: Vec<f64> = interest.iter().map(|v| v.as_f64().unwrap()).collect();
    for w in vals.windows(2) {
        assert!(w[0] >= w[1], "{vals:?}");
    }
}

#[test]
fn negatives_follow_transitive_paths() {
    let db = paper_db();
    let mut profile = julie();
    // Aversion expressed on a transitively-reachable attribute.
    profile.add_negative_selection("DIRECTOR", "name", "W. Allen", 1.0).unwrap();
    let negatives = select_negatives(&tonight_query(), &profile, db.catalog(), 5).unwrap();
    assert_eq!(negatives.len(), 1);
    assert!(negatives[0].joins.len() == 2, "reached through DIRECTED: {}", negatives[0]);

    let p = personalize(
        &tonight_query(),
        &InMemoryGraph::build(&profile, db.catalog()).unwrap(),
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build(),
    )
    .unwrap();
    let q = integrate_mq_with_negatives(
        tonight_query().as_select().unwrap(),
        &p.paths,
        &negatives,
        0,
        MatchSpec::AtLeast(1),
    )
    .unwrap();
    let t = titles(&db.run_query(&q).unwrap());
    assert!(!t.contains(&"Beta".to_string()), "Beta is a W. Allen movie: {t:?}");
}

#[test]
fn negative_profile_json_roundtrip_and_backcompat() {
    let mut p = Profile::new("x");
    p.add_selection("GENRE", "genre", "comedy", 0.8).unwrap();
    p.add_negative_selection("GENRE", "genre", "horror", 0.9).unwrap();
    let back = Profile::from_json(&p.to_json()).unwrap();
    assert_eq!(back, p);
    assert_eq!(back.negatives().count(), 1);
    // Profiles serialized before the extension still load.
    let legacy = r#"{"user":"old","preferences":[]}"#;
    let old = Profile::from_json(legacy).unwrap();
    assert_eq!(old.negatives().count(), 0);
}

#[test]
fn explanations_match_engine_ranking() {
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build(),
    )
    .unwrap();
    let n = verify_against_engine(&p, &db).unwrap();
    assert_eq!(n, 4);

    let ex = explain(&p, &db).unwrap();
    assert_eq!(ex[0].row, vec![Value::str("Alpha")]);
    assert_eq!(ex[0].satisfied.len(), 3, "Alpha satisfies Lynch, comedy, Kidman");
    assert!((ex[0].interest.value() - 0.99468).abs() < 1e-9);
    let gamma = ex.iter().find(|e| e.row == vec![Value::str("Gamma")]).unwrap();
    assert_eq!(gamma.satisfied.len(), 1);
    assert!(gamma.satisfied[0].0.to_string().contains("N. Kidman"));
    // Display renders something human-readable.
    assert!(ex[0].to_string().contains("interest"));
}

#[test]
fn explanations_respect_l_threshold() {
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(2).build(),
    )
    .unwrap();
    let ex = explain(&p, &db).unwrap();
    assert_eq!(ex.len(), 1, "only Alpha satisfies two preferences");
    assert_eq!(ex[0].row, vec![Value::str("Alpha")]);
    verify_against_engine(&p, &db).unwrap();
}

#[test]
fn learner_reconstructs_julies_taste_from_history() {
    let db = paper_db();
    // Julie's hypothetical history: she kept asking for comedies and Lynch.
    let mut learner = ProfileLearner::new("julie2", LearnerConfig::default());
    for _ in 0..6 {
        learner.observe(
            &pqp_sql::parse_query(
                "select MV.title from MOVIE MV, GENRE GN \
                 where MV.mid = GN.mid and GN.genre = 'comedy'",
            )
            .unwrap(),
        );
    }
    for _ in 0..3 {
        learner.observe(
            &pqp_sql::parse_query(
                "select MV.title from MOVIE MV, DIRECTED DD, DIRECTOR DI \
                 where MV.mid = DD.mid and DD.did = DI.did and DI.name = 'D. Lynch'",
            )
            .unwrap(),
        );
    }
    // And she always joins plays to movies.
    for _ in 0..4 {
        learner.observe(&tonight_query());
    }
    let profile = learner.profile().unwrap();
    profile.validate(db.catalog()).unwrap();

    let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build().ranked(),
    )
    .unwrap();
    assert!(p.k() >= 2, "learned comedy + Lynch: {:?}", p.paths);
    let rs = db.run_query(&p.mq().unwrap()).unwrap();
    // Alpha (comedy + Lynch) must rank first.
    assert_eq!(rs.rows[0][0], Value::str("Alpha"));
}
