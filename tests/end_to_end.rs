//! End-to-end reproduction of the paper's running example: Julie and Rob ask
//! "what is shown tonight" and receive different, ranked answers.

mod common;

use common::*;
use pqp_core::prelude::*;
use pqp_core::{InterestCriterion, MatchSpec};
use pqp_storage::Value;

#[test]
fn initial_query_is_impersonal() {
    let db = paper_db();
    let rs = db.run_query(&tonight_query()).unwrap();
    assert_eq!(titles_sorted(&rs), vec!["Alpha", "Beta", "Delta", "Gamma"]);
}

#[test]
fn julie_top3_preferences_match_the_paper() {
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build(),
    )
    .unwrap();
    assert_eq!(p.k(), 3);
    let rendered: Vec<String> = p.paths.iter().map(|x| x.to_string()).collect();
    assert!(rendered[0].contains("D. Lynch"), "{rendered:?}");
    assert!(rendered[1].contains("comedy"), "{rendered:?}");
    assert!(rendered[2].contains("N. Kidman"), "{rendered:?}");
    let degrees: Vec<f64> = p.degrees().iter().map(|d| d.value()).collect();
    assert!((degrees[0] - 0.9).abs() < 1e-12);
    assert!((degrees[1] - 0.81).abs() < 1e-12);
    assert!((degrees[2] - 0.72).abs() < 1e-12);
}

#[test]
fn julie_personalized_results_l1() {
    // K=3, L=1: movies matching Lynch, comedy or Kidman.
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build(),
    )
    .unwrap();
    let sq = db.run_query(&p.sq().unwrap()).unwrap();
    let mq = db.run_query(&p.mq().unwrap()).unwrap();
    // Alpha (Lynch+comedy+Kidman), Beta (comedy), Gamma (Kidman),
    // Delta (Lynch). Omega plays tomorrow.
    let expect = vec!["Alpha", "Beta", "Delta", "Gamma"];
    assert_eq!(titles_sorted(&sq), expect);
    assert_eq!(titles_sorted(&mq), expect);
}

#[test]
fn julie_personalized_results_l2_narrow_further() {
    // The paper's example setting: L = 2 of the top K = 3.
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(2).build(),
    )
    .unwrap();
    let sq = db.run_query(&p.sq().unwrap()).unwrap();
    let mq = db.run_query(&p.mq().unwrap()).unwrap();
    // Only Alpha satisfies two of {Lynch, comedy, Kidman} together.
    assert_eq!(titles_sorted(&sq), vec!["Alpha"]);
    assert_eq!(titles_sorted(&mq), vec!["Alpha"]);
}

#[test]
fn julie_ranked_output_orders_by_interest() {
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build().ranked(),
    )
    .unwrap();
    let rs = db.run_query(&p.mq().unwrap()).unwrap();
    // Interest: Alpha = 1-(1-.9)(1-.81)(1-.72) = 0.99468 > Delta (Lynch 0.9)
    // > Beta (comedy 0.81) > Gamma (Kidman 0.72).
    assert_eq!(titles(&rs), vec!["Alpha", "Delta", "Beta", "Gamma"]);
    let interest = rs.column("interest").unwrap();
    let Value::Float(top) = interest[0] else { panic!() };
    assert!((top - 0.99468).abs() < 1e-9, "{top}");
    // Monotone non-increasing.
    let vals: Vec<f64> = interest.iter().map(|v| v.as_f64().unwrap()).collect();
    for w in vals.windows(2) {
        assert!(w[0] >= w[1], "{vals:?}");
    }
}

#[test]
fn rob_gets_different_answers_than_julie() {
    let db = paper_db();
    let graph = InMemoryGraph::build(&rob(), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(2).l(1).build().ranked(),
    )
    .unwrap();
    assert_eq!(p.k(), 2);
    let rs = db.run_query(&p.mq().unwrap()).unwrap();
    // Gamma is sci-fi *and* stars J. Roberts; nothing else matches.
    assert_eq!(titles(&rs), vec!["Gamma"]);
}

#[test]
fn top_n_limits_ranked_output() {
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(3).l(1).build(),
    )
    .unwrap();
    let q = pqp_core::rank::top_n_query(&p, 2).unwrap();
    let rs = db.run_query(&q).unwrap();
    assert_eq!(titles(&rs), vec!["Alpha", "Delta"]);
}

#[test]
fn mandatory_preferences_filter_hard() {
    // Make the top preference (Lynch, 0.9) mandatory: only Lynch movies
    // survive, still requiring one of the others.
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let opts = PersonalizeOptions {
        criterion: InterestCriterion::TopK(3),
        mandatory: MandatorySpec::Count(1),
        matching: MatchSpec::AtLeast(1),
        rank: false,
    };
    let p = personalize(&tonight_query(), &graph, db.catalog(), opts).unwrap();
    assert_eq!(p.m, 1);
    let sq = db.run_query(&p.sq().unwrap()).unwrap();
    // Lynch movies tonight: Alpha, Delta. Of those, satisfying one of
    // {comedy, Kidman}: Alpha only.
    assert_eq!(titles_sorted(&sq), vec!["Alpha"]);
    let mq = db.run_query(&p.mq().unwrap()).unwrap();
    assert_eq!(titles_sorted(&mq), vec!["Alpha"]);
}

#[test]
fn min_degree_threshold_via_mq() {
    let db = paper_db();
    let graph = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let opts = PersonalizeOptions {
        criterion: InterestCriterion::TopK(3),
        mandatory: MandatorySpec::None,
        matching: MatchSpec::MinDegree(0.85),
        rank: true,
    };
    let p = personalize(&tonight_query(), &graph, db.catalog(), opts).unwrap();
    let rs = db.run_query(&p.mq().unwrap()).unwrap();
    // Degree > 0.85: Alpha (0.99468) and Delta (0.9). Beta (0.81) and
    // Gamma (0.72) fall below.
    assert_eq!(titles(&rs), vec!["Alpha", "Delta"]);
}

#[test]
fn personalization_degrades_gracefully_without_preferences() {
    let db = paper_db();
    let graph = InMemoryGraph::build(&Profile::new("stranger"), db.catalog()).unwrap();
    let p = personalize(
        &tonight_query(),
        &graph,
        db.catalog(),
        PersonalizeOptions::builder().k(5).l(2).build(),
    )
    .unwrap();
    assert_eq!(p.k(), 0);
    let sq = db.run_query(&p.sq().unwrap()).unwrap();
    assert_eq!(titles_sorted(&sq), vec!["Alpha", "Beta", "Delta", "Gamma"]);
}

#[test]
fn stored_profile_backend_agrees_with_in_memory() {
    let mut db = paper_db();
    StoredProfileGraph::store(&mut db, &julie()).unwrap();
    let stored = StoredProfileGraph::open(&db, "julie");
    let memory = InMemoryGraph::build(&julie(), db.catalog()).unwrap();
    let ps = personalize(
        &tonight_query(),
        &stored,
        db.catalog(),
        PersonalizeOptions::builder().k(5).l(1).build(),
    )
    .unwrap();
    let pm = personalize(
        &tonight_query(),
        &memory,
        db.catalog(),
        PersonalizeOptions::builder().k(5).l(1).build(),
    )
    .unwrap();
    assert_eq!(ps.k(), pm.k());
    let ds: Vec<f64> = ps.degrees().iter().map(|d| d.value()).collect();
    let dm: Vec<f64> = pm.degrees().iter().map(|d| d.value()).collect();
    assert_eq!(ds, dm);
    // The stored backend pays per-adjacency SQL queries.
    assert!(ps.stats.graph_accesses > 0);
}
