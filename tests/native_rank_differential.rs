//! Native rank operator ≡ ranked MQ: the differential suite.
//!
//! The native TopK operator (preference pushdown with threshold-style
//! early termination) must be *indistinguishable* from recomputing the
//! ranked MQ rewrite: the same row set, the same interest degrees
//! (bit-identical — both fold satisfied preferences in ascending
//! preference order), and the same deterministic rank order (interest
//! descending, then the visible columns ascending as the tie-break).
//!
//! The suite runs randomized profiles and K/M/L knobs over the generated
//! movie corpus, and re-executes every native plan under the parallel
//! (`PQP_THREADS=4`-shaped) and tuple-at-a-time (`PQP_BATCHED=0`-shaped)
//! executor modes, which must be row-for-row identical to the serial run.
//! scripts/verify.sh and CI run the suite on both test schedules (default
//! and `RUST_TEST_THREADS=1`).

use pqp::core::{personalize, InMemoryGraph, PersonalizeOptions, Rewrite};
use pqp::datagen::{
    generate, generate_profile, generate_queries, MovieDbConfig, ProfileGenConfig, QueryGenConfig,
};
use pqp::engine::{Database, EngineError, ExecOptions};
use pqp::storage::Value;
use pqp::{Budget, BudgetReason, QueryCtx};

/// Canonical rank order: interest descending (rows without an interest —
/// NULL — last), then every visible column ascending. This is the order
/// the native operator promises; the MQ oracle is re-sorted into it
/// because SQL `ORDER BY interest DESC` leaves ties unspecified.
fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        let key = |r: &Vec<Value>| match r.last() {
            Some(Value::Float(f)) => (0u8, -f),
            _ => (1u8, 0.0),
        };
        key(a).partial_cmp(&key(b)).unwrap().then_with(|| a[..a.len() - 1].cmp(&b[..b.len() - 1]))
    });
    rows
}

/// The alternate executor modes every native plan is re-run under.
fn alternate_modes() -> [ExecOptions; 2] {
    [ExecOptions::with_threads(4).min_parallel_rows(2), ExecOptions::default().batched(false)]
}

/// Build the native execution for `p`; `None` when the strategy layer had
/// to fall back to MQ (a shape the operator does not support).
fn native_plan(
    db: &Database,
    p: &pqp::core::Personalized,
    limit: Option<u64>,
) -> Option<pqp::core::StrategyChoice> {
    let choice = pqp::core::build_execution(db, p, Rewrite::NativeRank, limit).unwrap();
    (choice.rewrite == Rewrite::NativeRank).then_some(choice)
}

#[test]
fn native_matches_ranked_mq_over_randomized_profiles_and_knobs() {
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(12, &m.pools, &QueryGenConfig::default());
    let knobs: [(usize, usize, usize); 4] = [(3, 0, 1), (5, 1, 1), (6, 0, 2), (4, 2, 1)];
    let mut exercised = 0;
    let mut nonempty = 0;
    for (i, q) in queries.iter().enumerate() {
        let profile = generate_profile(
            "u",
            &m.pools,
            &ProfileGenConfig { selections: 15, seed: 9000 + i as u64, ..Default::default() },
        );
        let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
        let (k, mm, l) = knobs[i % knobs.len()];
        let p = personalize(
            q,
            &graph,
            m.db.catalog(),
            PersonalizeOptions::builder().k(k).m(mm).l(l).build().ranked(),
        )
        .unwrap();
        let Some(choice) = native_plan(&m.db, &p, None) else { continue };
        exercised += 1;
        let native = m.db.run_plan(&choice.plan).unwrap();
        let mq = m.db.run_query(&p.mq().unwrap()).unwrap();
        assert_eq!(native.columns, mq.columns, "query {i}: {q}");
        // Same rows, same degrees, and the native order IS canonical —
        // deterministic ties included.
        assert_eq!(native.rows, canonical(native.rows.clone()), "query {i} order: {q}");
        assert_eq!(
            native.rows,
            canonical(mq.rows),
            "query {i} (K={k}, M={mm}, L={l}) diverged from ranked MQ: {q}"
        );
        nonempty += usize::from(!native.rows.is_empty());
        // Executor modes must be row-for-row identical.
        for exec in alternate_modes() {
            let alt = m.db.run_plan_with(&choice.plan, &exec).unwrap();
            assert_eq!(
                alt.rows, native.rows,
                "query {i} diverged under threads={} batched={}",
                exec.threads, exec.batched
            );
        }
    }
    assert!(exercised >= 6, "only {exercised} native plans built; the suite is near-vacuous");
    assert!(nonempty > 0, "the workload never produced rows; the suite is vacuous");
}

#[test]
fn native_top_n_equals_canonically_truncated_mq() {
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(8, &m.pools, &QueryGenConfig::default());
    let mut exercised = 0;
    for (i, q) in queries.iter().enumerate() {
        let profile = generate_profile(
            "u",
            &m.pools,
            &ProfileGenConfig { selections: 12, seed: 4200 + i as u64, ..Default::default() },
        );
        let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
        let p = personalize(
            q,
            &graph,
            m.db.catalog(),
            PersonalizeOptions::builder().k(5).l(1).build().ranked(),
        )
        .unwrap();
        for n in [1u64, 3, 10] {
            let Some(choice) = native_plan(&m.db, &p, Some(n)) else { continue };
            exercised += 1;
            let native = m.db.run_plan(&choice.plan).unwrap();
            // Oracle: the *unlimited* ranked MQ, canonically sorted, cut
            // to n — early termination must not change what the top-n is.
            let mq = canonical(m.db.run_query(&p.mq().unwrap()).unwrap().rows);
            let cut = &mq[..mq.len().min(n as usize)];
            assert_eq!(native.rows, cut, "query {i} top-{n} diverged: {q}");
            for exec in alternate_modes() {
                let alt = m.db.run_plan_with(&choice.plan, &exec).unwrap();
                assert_eq!(alt.rows, native.rows, "query {i} top-{n} mode divergence");
            }
        }
    }
    assert!(exercised >= 6, "only {exercised} top-n plans built; the suite is near-vacuous");
}

#[test]
fn native_matches_mq_under_min_degree_matching() {
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(6, &m.pools, &QueryGenConfig::default());
    let mut exercised = 0;
    for (i, q) in queries.iter().enumerate() {
        let profile = generate_profile(
            "u",
            &m.pools,
            &ProfileGenConfig { selections: 15, seed: 7700 + i as u64, ..Default::default() },
        );
        let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
        let p = personalize(
            q,
            &graph,
            m.db.catalog(),
            PersonalizeOptions::builder()
                .k(5)
                .matching(pqp::core::MatchSpec::MinDegree(0.5))
                .build()
                .ranked(),
        )
        .unwrap();
        let Some(choice) = native_plan(&m.db, &p, None) else { continue };
        exercised += 1;
        let native = m.db.run_plan(&choice.plan).unwrap();
        let mq = m.db.run_query(&p.mq().unwrap()).unwrap();
        assert_eq!(native.rows, canonical(mq.rows), "query {i} MinDegree divergence: {q}");
    }
    assert!(exercised >= 3, "only {exercised} MinDegree plans built; the suite is near-vacuous");
}

/// Governor budgets trip cleanly *inside* the TopK operator: a typed
/// `Budget` error with the right reason, and — because the operator holds
/// no state outside the query — an immediately-following unlimited run
/// returns the full, correct answer.
#[test]
fn governor_trips_mid_topk_leave_no_state_behind() {
    let m = generate(MovieDbConfig::tiny());
    let queries = generate_queries(6, &m.pools, &QueryGenConfig::default());
    let profile = generate_profile(
        "u",
        &m.pools,
        &ProfileGenConfig { selections: 15, seed: 31, ..Default::default() },
    );
    let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
    let choice = queries
        .iter()
        .find_map(|q| {
            let p = personalize(
                q,
                &graph,
                m.db.catalog(),
                PersonalizeOptions::builder().k(5).l(1).build().ranked(),
            )
            .ok()?;
            native_plan(&m.db, &p, None).filter(|_| {
                // A plan whose full run scans rows and returns rows, so
                // every budget below genuinely trips mid-operator.
                !m.db
                    .run_plan(
                        &pqp::core::build_execution(&m.db, &p, Rewrite::NativeRank, None)
                            .unwrap()
                            .plan,
                    )
                    .unwrap()
                    .rows
                    .is_empty()
            })
        })
        .expect("no native plan with a non-empty result in the corpus");
    let expected = m.db.run_plan(&choice.plan).unwrap();

    let trips: [(Budget, BudgetReason); 3] = [
        (Budget::unlimited().deadline_ms(0), BudgetReason::Deadline),
        (Budget::unlimited().max_rows(1), BudgetReason::RowsScanned),
        (Budget::unlimited().max_memory_bytes(16), BudgetReason::Memory),
    ];
    for exec in [ExecOptions::default(), ExecOptions::with_threads(4).min_parallel_rows(2)] {
        for (budget, reason) in trips {
            let ctx = QueryCtx::new(budget);
            match m.db.run_plan_ctx(&choice.plan, &exec, &ctx) {
                Err(EngineError::Budget(b)) => {
                    assert_eq!(b.reason, reason, "threads={}", exec.threads)
                }
                other => panic!("expected Budget({reason:?}), got {other:?}"),
            }
            // No leaked state: the very next unlimited run over the same
            // plan object is complete and correct.
            let again = m.db.run_plan_ctx(&choice.plan, &exec, &QueryCtx::unlimited()).unwrap();
            assert_eq!(again.rows, expected.rows, "post-trip run diverged ({reason:?})");
        }
        // Cancellation too: a pre-cancelled context aborts, the plan stays
        // reusable.
        let ctx = QueryCtx::unlimited();
        ctx.cancel();
        match m.db.run_plan_ctx(&choice.plan, &exec, &ctx) {
            Err(EngineError::Budget(b)) => assert_eq!(b.reason, BudgetReason::Cancelled),
            other => panic!("expected Budget(Cancelled), got {other:?}"),
        }
        let again = m.db.run_plan_ctx(&choice.plan, &exec, &QueryCtx::unlimited()).unwrap();
        assert_eq!(again.rows, expected.rows);
    }
}
