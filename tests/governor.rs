//! Query-governor integration tests through the public `pqp` API: budgets
//! trip with typed errors instead of hangs, cancellation works from another
//! thread mid-operator, personalization degrades along the paper's knobs,
//! and admission control bounds concurrency — all on the paper's running
//! example (Julie, the movies database).
//!
//! The failpoint registry is process-global, so every test that arms one
//! serializes on a shared mutex and clears the registry before returning.

mod common;

use pqp::core::{PersonalizeOptions, Rewrite};
use pqp::obs::failpoint;
use pqp::{
    Budget, BudgetReason, DegradeLevel, Error, ExecOptions, QueryCtx, Service, ServiceConfig,
};
use std::sync::Mutex;
use std::time::Duration;

static FAILPOINT_GUARD: Mutex<()> = Mutex::new(());

fn with_failpoints<R>(f: impl FnOnce() -> R) -> R {
    let _g = FAILPOINT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    let r = f();
    failpoint::clear();
    r
}

fn tonight_sql() -> String {
    format!(
        "select MV.title from MOVIE MV, PLAY PL \
         where MV.mid = PL.mid and PL.date = '{}'",
        common::TONIGHT
    )
}

/// The paper fixture behind a service with parallel execution enabled (so
/// governor checkpoints inside parallel operators are actually exercised)
/// and an explicitly unlimited default budget (immune to `PQP_*` env vars).
fn governed_service() -> Service {
    let service = Service::with_config(
        common::paper_db(),
        ServiceConfig {
            options: PersonalizeOptions::builder().k(3).l(1).build(),
            rewrite: Rewrite::Mq,
            exec: ExecOptions::with_threads(3).min_parallel_rows(2),
            budget: Budget::unlimited(),
            ..ServiceConfig::default()
        },
    );
    service.install_profile(common::julie()).unwrap();
    service.install_profile(common::rob()).unwrap();
    service
}

#[test]
fn zero_deadline_returns_budget_exceeded_instead_of_hanging() {
    let service = governed_service();
    let sql = tonight_sql();
    let result =
        service.session("julie").with_budget(Budget::unlimited().deadline_ms(0)).query(&sql);
    match result {
        Err(Error::BudgetExceeded(b)) => assert_eq!(b.reason, BudgetReason::Deadline),
        other => panic!("expected BudgetExceeded(Deadline), got {other:?}"),
    }
    // The same session recovers immediately with a sane budget.
    let ok = service.session("julie").query(&sql).unwrap();
    assert!(!ok.rows.rows.is_empty());
}

#[test]
fn row_budget_trips_with_partial_progress_through_the_full_stack() {
    let service = governed_service();
    let result =
        service.session("julie").with_budget(Budget::unlimited().max_rows(3)).query(&tonight_sql());
    match result {
        Err(Error::BudgetExceeded(b)) => {
            assert_eq!(b.reason, BudgetReason::RowsScanned);
            assert!(b.rows_scanned > 3, "partial progress reported: {b:?}");
        }
        other => panic!("expected BudgetExceeded(RowsScanned), got {other:?}"),
    }
}

#[test]
fn generous_budget_answers_match_the_unlimited_run() {
    let service = governed_service();
    for user in ["julie", "rob"] {
        for sql in [tonight_sql(), "select MV.title from MOVIE MV".to_string()] {
            let plain = service.session(user).query(&sql).unwrap();
            service.clear_caches();
            let governed = service
                .session(user)
                .with_budget(Budget::unlimited().deadline_ms(60_000).max_rows(1_000_000))
                .query(&sql)
                .unwrap();
            assert_eq!(plain.rows, governed.rows, "governed run diverged for {user}: `{sql}`");
            assert_eq!(governed.meta.degraded, DegradeLevel::None);
        }
    }
}

#[test]
fn cancellation_from_another_thread_aborts_a_parallel_join() {
    with_failpoints(|| {
        let service = governed_service();
        let sql = tonight_sql();
        // Slow every parallel worker down so the cancellation lands while
        // the join is genuinely in flight.
        failpoint::configure("par.worker", "delay(40)").unwrap();
        let before = pqp::obs::metrics::global_snapshot().counter("exec.parallel.workers");
        let ctx = QueryCtx::unlimited();
        let result = std::thread::scope(|s| {
            let handle = s.spawn(|| service.session("julie").query_ctx(&sql, &ctx));
            std::thread::sleep(Duration::from_millis(10));
            ctx.cancel();
            handle.join().expect("query thread must not panic")
        });
        match result {
            Err(Error::BudgetExceeded(b)) => assert_eq!(b.reason, BudgetReason::Cancelled),
            other => panic!("expected BudgetExceeded(Cancelled), got {other:?}"),
        }
        let after = pqp::obs::metrics::global_snapshot().counter("exec.parallel.workers");
        assert!(after > before, "the cancelled query reached a parallel operator");
        // Scoped workers all joined: the service keeps serving.
        failpoint::clear();
        assert_eq!(service.in_flight(), 0);
        assert!(service.session("julie").query(&sql).is_ok());
    });
}

#[test]
fn injected_personalization_trip_degrades_and_reports_the_level() {
    with_failpoints(|| {
        let service = governed_service();
        let sql = tonight_sql();
        // Three injected trips walk the ladder past ReducedK and
        // NativeReducedK to MandatoryOnly.
        failpoint::configure("select.budget", "3*error").unwrap();
        let degraded = service.session("julie").query(&sql).unwrap();
        assert_eq!(degraded.meta.degraded, DegradeLevel::MandatoryOnly);
        assert!(!degraded.meta.cache.is_hit(), "degraded answers never come from the cache");
        failpoint::clear();
        // The degraded plan was not cached: full fidelity returns at once.
        let full = service.session("julie").query(&sql).unwrap();
        assert_eq!(full.meta.degraded, DegradeLevel::None);
        assert_eq!(full.meta.k, 3, "full personalization selects top-3 again");
    });
}

#[test]
fn admission_control_rejects_at_capacity_under_real_concurrency() {
    with_failpoints(|| {
        let service = Service::with_config(
            common::paper_db(),
            ServiceConfig {
                options: PersonalizeOptions::builder().k(3).l(1).build(),
                rewrite: Rewrite::Mq,
                exec: ExecOptions::with_threads(2).min_parallel_rows(2),
                budget: Budget::unlimited(),
                max_in_flight: 1,
                ..ServiceConfig::default()
            },
        );
        service.install_profile(common::julie()).unwrap();
        let sql = tonight_sql();
        // Slow parallel workers keep the first query inside the service
        // long enough for the second to hit the admission limit.
        failpoint::configure("par.worker", "delay(60)").unwrap();
        std::thread::scope(|s| {
            let slow = s.spawn(|| service.session("julie").query(&sql));
            std::thread::sleep(Duration::from_millis(15));
            match service.session("julie").query(&sql) {
                Err(Error::Overloaded { max, .. }) => assert_eq!(max, 1),
                other => panic!("expected Overloaded, got {other:?}"),
            }
            assert!(slow.join().unwrap().is_ok(), "the admitted query completes normally");
        });
        failpoint::clear();
        // The slot was released: the service admits again.
        assert_eq!(service.in_flight(), 0);
        assert!(service.session("julie").query(&sql).is_ok());
    });
}
