//! Environment-driven governor configuration (`PQP_DEADLINE_MS`,
//! `PQP_MAX_ROWS_SCANNED`, `PQP_MAX_MEMORY_BYTES`, `PQP_MAX_IN_FLIGHT`,
//! `PQP_FAILPOINTS`, `PQP_FAILPOINT_SEED`).
//!
//! Lives in its own test binary — and in a single test function — because
//! it mutates process-global environment variables and
//! `failpoint::init_from_env` applies them once per process.

mod common;

use pqp::core::{PersonalizeOptions, Rewrite};
use pqp::obs::failpoint;
use pqp::{Budget, Error, Service, ServiceConfig};
use std::time::Duration;

#[test]
fn env_vars_shape_the_default_budget_admission_and_failpoints() {
    std::env::set_var("PQP_DEADLINE_MS", "1234");
    std::env::set_var("PQP_MAX_ROWS_SCANNED", "77");
    std::env::set_var("PQP_MAX_MEMORY_BYTES", "4096");
    std::env::set_var("PQP_MAX_IN_FLIGHT", "3");

    let budget = Budget::from_env();
    assert_eq!(budget.deadline, Some(Duration::from_millis(1234)));
    assert_eq!(budget.max_rows_scanned, Some(77));
    assert_eq!(budget.max_memory, Some(4096));

    let config = ServiceConfig::default();
    assert_eq!(config.budget, budget, "the service default budget comes from the environment");
    assert_eq!(config.max_in_flight, 3);

    // Unparsable values must leave the field unlimited, never panic.
    std::env::set_var("PQP_DEADLINE_MS", "not-a-number");
    assert_eq!(Budget::from_env().deadline, None);

    // `PQP_FAILPOINTS` arms sites when the first service is constructed.
    std::env::set_var("PQP_FAILPOINTS", "service.query=1*error(armed from env)");
    std::env::set_var("PQP_FAILPOINT_SEED", "42");
    let service = Service::with_config(
        common::paper_db(),
        ServiceConfig {
            options: PersonalizeOptions::builder().k(3).l(1).build(),
            rewrite: Rewrite::Mq,
            budget: Budget::unlimited(),
            max_in_flight: 0,
            ..ServiceConfig::default()
        },
    );
    service.install_profile(common::julie()).unwrap();
    let sql = "select MV.title from MOVIE MV";
    match service.session("julie").query(sql) {
        Err(Error::Internal(m)) => assert!(m.contains("armed from env"), "{m}"),
        other => panic!("expected the env-armed failpoint to fire, got {other:?}"),
    }
    // The count-limited failpoint is spent; the service serves normally.
    assert!(service.session("julie").query(sql).is_ok());

    failpoint::clear();
    for var in [
        "PQP_DEADLINE_MS",
        "PQP_MAX_ROWS_SCANNED",
        "PQP_MAX_MEMORY_BYTES",
        "PQP_MAX_IN_FLIGHT",
        "PQP_FAILPOINTS",
        "PQP_FAILPOINT_SEED",
    ] {
        std::env::remove_var(var);
    }
}
