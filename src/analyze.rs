//! `EXPLAIN ANALYZE` for the personalization pipeline: run the whole chain
//! — parse, query-graph construction, preference selection, SQ/MQ
//! integration, planning, execution — under a `pqp_obs` trace and return
//! the result set together with the span tree, the per-stage counters, and
//! a rendered report.
//!
//! Every stage is already instrumented (the spans are permanent no-ops when
//! no trace is active); this module only brackets the pipeline with
//! [`pqp_obs::trace_begin`]/[`pqp_obs::trace_end`] and attaches the
//! selection summary (selected preferences and their degrees) to the
//! report.

use pqp_core::error::{PrefError, Result};
use pqp_core::graph::GraphAccess;
use pqp_core::{personalize, PersonalizeOptions, Personalized};
use pqp_engine::{Database, ExecOptions, ResultSet};
use pqp_obs::{Json, PipelineTrace};
use std::fmt::Write as _;

pub use pqp_core::Rewrite;

/// The outcome of an `EXPLAIN ANALYZE` run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The executed rewrite, as resolved by the strategy layer: an `Auto`
    /// request reports the strategy the cost model picked, an unsupported
    /// `NativeRank` request reports its MQ fallback.
    pub rewrite: Rewrite,
    /// The strategy line: chosen rewrite, estimated cost, and the
    /// estimated cost of every buildable candidate
    /// ([`pqp_core::StrategyChoice::summary`]).
    pub strategy: String,
    /// The personalization outcome (selected preferences, K/M/L).
    pub personalized: Personalized,
    /// The rows the executed query returned.
    pub result: ResultSet,
    /// The span tree + metrics captured across the pipeline.
    pub trace: PipelineTrace,
}

impl Analysis {
    /// The `EXPLAIN ANALYZE` text report: span tree with timings and
    /// operator cardinalities, followed by the selected preferences.
    pub fn report(&self) -> String {
        let mut out = self.trace.render();
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Selected preferences (K={}, M={}, rewrite {}):",
            self.personalized.k(),
            self.personalized.m,
            self.rewrite.label()
        );
        if self.personalized.paths.is_empty() {
            let _ = writeln!(out, "  (none — the query runs unpersonalized)");
        }
        for p in &self.personalized.paths {
            let _ = writeln!(out, "  {:.4}  {p}", p.doi.value());
        }
        let _ = writeln!(out, "{}", self.strategy);
        let _ = writeln!(out, "Result: {} rows", self.result.rows.len());
        out
    }

    /// The trace (span tree, fields, counters, histograms) as JSON.
    pub fn to_json(&self) -> Json {
        let degrees: Vec<Json> =
            self.personalized.degrees().iter().map(|d| Json::from(d.value())).collect();
        Json::obj()
            .set("rewrite", self.rewrite.label())
            .set("strategy", self.strategy.as_str())
            .set("k", self.personalized.k() as i64)
            .set("m", self.personalized.m as i64)
            .set("degrees", Json::Arr(degrees))
            .set("result_rows", self.result.rows.len() as i64)
            .set("trace", self.trace.to_json())
    }
}

/// Run `sql` personalized for the profile behind `graph` under a pipeline
/// trace, and return rows + trace + report.
///
/// The trace is thread-local; any trace already active on the calling
/// thread is replaced.
pub fn explain_analyze(
    sql: &str,
    graph: &impl GraphAccess,
    db: &Database,
    opts: PersonalizeOptions,
    rewrite: Rewrite,
) -> Result<Analysis> {
    explain_analyze_with(sql, graph, db, opts, rewrite, &ExecOptions::default())
}

/// [`explain_analyze`] under an explicit [`ExecOptions`] thread budget.
///
/// With `threads > 1` the executor spans in the trace carry the parallel
/// shape — `partitions`, per-partition row counts, and
/// `strategy=parallel_hash_join` on partitioned joins — while the answer
/// itself is row-for-row identical to the serial run (ordered partition
/// merge).
pub fn explain_analyze_with(
    sql: &str,
    graph: &impl GraphAccess,
    db: &Database,
    opts: PersonalizeOptions,
    rewrite: Rewrite,
    exec: &ExecOptions,
) -> Result<Analysis> {
    pqp_obs::trace_begin("explain_analyze");
    let run = || -> Result<(Personalized, Rewrite, String, ResultSet)> {
        let query =
            pqp_sql::parse_query(sql).map_err(|e| PrefError::UnsupportedQuery(e.to_string()))?;
        let p = personalize(&query, graph, db.catalog(), opts)?;
        // Strategy resolution builds and costs every candidate (or just the
        // requested one); `Auto` picks the cheapest, an unsupported native
        // request falls back to MQ.
        let choice = pqp_core::strategy::build_execution(db, &p, rewrite, None)?;
        let result = db.run_plan_with(&choice.plan, exec)?;
        Ok((p, choice.rewrite, choice.summary(), result))
    };
    let outcome = run();
    let trace = pqp_obs::trace_end().expect("trace_begin opened a trace");
    let (personalized, rewrite, strategy, result) = outcome?;
    Ok(Analysis { rewrite, strategy, personalized, result, trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_core::graph::InMemoryGraph;
    use pqp_core::Profile;
    use pqp_datagen::{generate, MovieDbConfig};

    fn fixture() -> (Database, Profile) {
        let m = generate(MovieDbConfig::tiny());
        let mut profile = Profile::new("ana");
        profile.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        profile.add_selection("GENRE", "genre", "comedy", 0.8).unwrap();
        profile.add_selection("GENRE", "genre", "drama", 0.6).unwrap();
        (m.db, profile)
    }

    #[test]
    fn analyze_traces_every_stage() {
        let (db, profile) = fixture();
        let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
        let a = explain_analyze(
            "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid",
            &graph,
            &db,
            PersonalizeOptions::builder().k(2).l(1).build(),
            Rewrite::Mq,
        )
        .unwrap();
        let root = &a.trace.root;
        assert_eq!(root.name, "explain_analyze");
        for stage in ["sql.parse", "personalize", "execute"] {
            assert!(root.find(stage).is_some(), "missing span `{stage}`:\n{}", a.trace.render());
        }
        // The nested selection span sits under personalize.
        let personalize_span = root.find("personalize").unwrap();
        assert!(personalize_span.find("query_graph").is_some());
        assert!(personalize_span.find("selection").is_some());
        // Executor spans carry cardinalities.
        let exec = root.find("execute").unwrap();
        assert!(exec.field("result_rows").is_some());
        // Selection counters flowed into the trace's registry.
        assert!(a.trace.metrics.counter("selection.expansions") > 0);

        let report = a.report();
        assert!(report.contains("EXPLAIN ANALYZE"), "{report}");
        assert!(report.contains("Selected preferences (K=2"), "{report}");
        assert!(report.contains("Result:"), "{report}");

        let json = a.to_json();
        assert_eq!(json.get("rewrite").and_then(Json::as_str), Some("MQ"));
        assert_eq!(json.get("k").and_then(Json::as_i64), Some(2));
        assert!(json.get("trace").and_then(|t| t.get("root")).is_some());
        // The export parses back (whole-valued floats may re-parse as ints,
        // so compare the stable fields rather than the full tree).
        let parsed = Json::parse(&json.pretty()).unwrap();
        assert_eq!(parsed.get("k").and_then(Json::as_i64), Some(2));
        let root = parsed.get("trace").and_then(|t| t.get("root")).unwrap();
        assert_eq!(root.get("name").and_then(Json::as_str), Some("explain_analyze"));
        assert_eq!(
            parsed.get("trace").and_then(|t| t.get("schema_version")).and_then(Json::as_i64),
            Some(1)
        );
    }

    #[test]
    fn analyze_runs_all_rewrites() {
        let (db, profile) = fixture();
        let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
        let sql = "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid";
        for rewrite in [Rewrite::Original, Rewrite::Sq, Rewrite::Mq, Rewrite::NativeRank] {
            let a = explain_analyze(
                sql,
                &graph,
                &db,
                PersonalizeOptions::builder().k(2).l(1).build(),
                rewrite,
            )
            .unwrap();
            assert_eq!(a.rewrite, rewrite);
            assert!(a.trace.root.find("execute").is_some());
            assert!(a.report().contains("strategy: "), "{}", a.report());
        }
        // Auto resolves to a concrete strategy and reports every candidate.
        let a = explain_analyze(
            sql,
            &graph,
            &db,
            PersonalizeOptions::builder().k(2).l(1).build(),
            Rewrite::Auto,
        )
        .unwrap();
        assert_ne!(a.rewrite, Rewrite::Auto);
        assert!(a.strategy.contains("candidates: "), "{}", a.strategy);
        assert_eq!(a.to_json().get("strategy").and_then(Json::as_str), Some(a.strategy.as_str()));
    }

    #[test]
    fn analyze_surfaces_errors_but_still_ends_the_trace() {
        let (db, profile) = fixture();
        let graph = InMemoryGraph::build(&profile, db.catalog()).unwrap();
        let err = explain_analyze(
            "select nonsense from",
            &graph,
            &db,
            PersonalizeOptions::builder().k(2).l(1).build(),
            Rewrite::Mq,
        );
        assert!(err.is_err());
        // The thread-local trace was consumed: a fresh one starts clean.
        assert!(!pqp_obs::trace_active());
    }
}
