//! # pqp — Personalization of Queries in Database Systems
//!
//! An umbrella crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of Koutrika & Ioannidis, *Personalization of Queries in
//! Database Systems* (ICDE 2004).
//!
//! - [`storage`] — value model, schemas with join cardinalities, slotted
//!   pages, heap tables, hash indexes, catalog;
//! - [`sql`] — lexer/parser/AST/printer for the SPJ dialect the framework
//!   produces and consumes;
//! - [`engine`] — binder, optimizer (predicate pushdown, greedy join order,
//!   OR-expansion under DISTINCT), executor, ranking aggregates;
//! - [`core`] — the paper's contribution: preference model, personalization
//!   graph, preference selection, SQ/MQ integration, ranking;
//! - [`datagen`] — synthetic movies/bookstore databases, profile and query
//!   generators (the experimental apparatus);
//! - [`service`] — the concurrent multi-user serving layer: a [`Service`]
//!   owning one database plus a sharded profile store, prepared-query and
//!   personalized-plan caches with epoch invalidation, [`Session::query`]
//!   as the one front door (returning [`Result<Answer, Error>`](Error)),
//!   and [`Service::query_batch`] for batch execution;
//! - [`wire`] — the versioned, length-prefixed binary protocol and the
//!   blocking TCP [`Client`];
//! - [`server`] — the `pqp-server` TCP session runtime (thread per
//!   connection, typed error frames, admission control at the edge).
//!
//! The client-facing API is the [`QueryApi`] trait: both the in-process
//! [`Session`] and the TCP [`Client`] implement it, so application code is
//! written once and runs over either backend. Every answer carries
//! [`AnswerMeta`] — the rewrite, K/M, [`DegradeLevel`], [`CacheOutcome`]
//! and rows-scanned telemetry — in a stable wire-serializable shape.
//!
//! Every query runs under a **query governor**: a per-query [`Budget`]
//! (deadline, rows scanned, memory) checked cooperatively at operator loop
//! boundaries, with typed [`Error::BudgetExceeded`] aborts carrying
//! partial-progress counters, graceful degradation of personalization
//! ([`DegradeLevel`]), admission control, and panic isolation. A zero-dep
//! failpoint registry ([`obs::failpoint`], `PQP_FAILPOINTS`) injects
//! faults at named sites for chaos testing.
//!
//! See `examples/quickstart.rs` for the five-minute tour,
//! `examples/service.rs` for the serving layer, and DESIGN.md for the
//! architecture and per-experiment index.

pub mod analyze;

pub use pqp_core as core;
pub use pqp_datagen as datagen;
pub use pqp_engine as engine;
pub use pqp_obs as obs;
pub use pqp_server as server;
pub use pqp_service as service;
pub use pqp_sql as sql;
pub use pqp_storage as storage;
pub use pqp_wire as wire;

pub use analyze::{explain_analyze, explain_analyze_with, Analysis, Rewrite};
pub use pqp_core::prelude;
pub use pqp_engine::ExecOptions;
pub use pqp_obs::{Budget, BudgetExceeded, BudgetReason, QueryCtx};
pub use pqp_server::{Server, ServerConfig, ServerHandle};
pub use pqp_service::{
    Answer, AnswerMeta, CacheOutcome, DegradeLevel, Error, ErrorCode, QueryApi, Service,
    ServiceConfig, Session, UserId,
};
pub use pqp_wire::{Client, ClientConfig};
