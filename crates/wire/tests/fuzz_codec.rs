//! Frame-codec fuzzing: every decoder in the wire vocabulary must turn
//! arbitrary bytes into `Ok` or a typed `DecodeError`/`FrameError` —
//! never a panic. The generator is a xoshiro256** PRNG with a fixed
//! (env-overridable) seed, so a failing case is reproducible from the
//! printed case number alone.
//!
//! Knobs: `PQP_FUZZ_CASES` (default 12 000, the CI floor is 10 000) and
//! `PQP_FUZZ_SEED`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pqp_storage::Value;
use pqp_wire::repl::{LogEntry, MutationRecord, NodeStatus, ReplRequest, ReplResponse, Role};
use pqp_wire::{
    read_frame, ProfileOp, Request, Response, ShowRequest, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

/// xoshiro256** — the workspace-standard generator (no external deps).
struct Xoshiro([u64; 4]);

impl Xoshiro {
    fn seeded(seed: u64) -> Xoshiro {
        // SplitMix64 expansion so a one-word seed fills the state well.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro([next(), next(), next(), next()])
    }

    fn next(&mut self) -> u64 {
        let s = &mut self.0;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next() & 0xFF) as u8).collect()
    }
}

fn cases() -> usize {
    std::env::var("PQP_FUZZ_CASES").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(12_000)
}

fn seed() -> u64 {
    std::env::var("PQP_FUZZ_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0x05EE_D0FC_0DEC)
}

/// A pool of valid encoded messages whose bytes the fuzzer mutates, so
/// the deep decode paths (length-prefixed strings, nested lists) get
/// exercised, not just the tag dispatch.
fn valid_pool() -> Vec<(u8, Vec<u8>)> {
    let requests = [
        Request::Hello { version: PROTOCOL_VERSION, user: "ana".into() },
        Request::Query {
            sql: "select MV.title from MOVIE MV".into(),
            options: None,
            rewrite: None,
        },
        Request::Prepare { sql: "select G.genre from GENRE G".into() },
        Request::Mutate(ProfileOp::AddSelection {
            table: "GENRE".into(),
            column: "genre".into(),
            value: Value::Str("comedy".into()),
            doi: 0.8,
        }),
        Request::Mutate(ProfileOp::AddJoin {
            from_table: "MOVIE".into(),
            from_column: "mid".into(),
            to_table: "GENRE".into(),
            to_column: "mid".into(),
            doi: 0.9,
        }),
        Request::Mutate(ProfileOp::Remove),
        Request::Show(ShowRequest::Queries { limit: Some(5) }),
        Request::Close,
    ];
    let responses = [
        Response::HelloOk { version: PROTOCOL_VERSION, server: "pqp-server/0.1.0".into() },
        Response::PrepareOk { canonical: "SELECT MV.title FROM MOVIE MV".into() },
        Response::MutateOk { epoch: 42, removed: true },
        Response::Error(WireError::protocol("fuzz")),
        Response::Bye,
    ];
    let record = MutationRecord { user: "ana".into(), op: ProfileOp::Remove }.encode();
    let repl_requests = [
        ReplRequest::Hello {
            version: PROTOCOL_VERSION,
            node_id: "node-1".into(),
            term: 3,
            token: "fuzz-token".into(),
            last_seq: 9,
            last_term: 3,
        },
        ReplRequest::Append {
            term: 3,
            prev_seq: 0,
            prev_term: 0,
            entries: vec![LogEntry { term: 3, seq: 1, payload: record.clone() }],
        },
        ReplRequest::Snapshot { term: 3, last_seq: 9, last_term: 3, data: record },
        ReplRequest::Status,
        ReplRequest::Promote { term: 4, token: "fuzz-token".into() },
    ];
    let repl_responses = [
        ReplResponse::Ok { term: 3, ack_seq: 9, ack_term: 3 },
        ReplResponse::Reject { term: 5, last_seq: 2, reason: "stale term".into() },
        ReplResponse::Status(NodeStatus {
            node_id: "node-2".into(),
            role: Role::Follower,
            term: 3,
            last_seq: 9,
            durable_seq: 9,
        }),
    ];
    requests
        .iter()
        .map(Request::encode)
        .chain(responses.iter().map(Response::encode))
        .chain(repl_requests.iter().map(ReplRequest::encode))
        .chain(repl_responses.iter().map(ReplResponse::encode))
        .collect()
}

/// Feed one (tag, payload) to every decoder; a panic in any of them
/// fails the test with enough context to replay the exact case.
fn decode_all(case: usize, tag: u8, payload: &[u8]) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = Request::decode(tag, payload);
        let _ = Response::decode(tag, payload);
        let _ = ReplRequest::decode(tag, payload);
        let _ = ReplResponse::decode(tag, payload);
        let _ = MutationRecord::decode(payload);
    }));
    assert!(
        outcome.is_ok(),
        "decoder panicked: case {case}, tag {tag:#04x}, payload ({} bytes) {payload:02x?}",
        payload.len(),
    );
}

#[test]
fn decoders_never_panic_on_arbitrary_bytes() {
    let mut rng = Xoshiro::seeded(seed());
    let pool = valid_pool();
    let total = cases();
    for case in 0..total {
        let (tag, payload) = match case % 3 {
            // Pure noise: random tag, random payload.
            0 => {
                let tag = (rng.next() & 0xFF) as u8;
                let len = rng.below(256);
                (tag, rng.bytes(len))
            }
            // Valid message, bit-flipped: exercises the deep field
            // decoders past the tag dispatch.
            1 => {
                let (tag, bytes) = &pool[rng.below(pool.len())];
                let mut mutated = bytes.clone();
                if !mutated.is_empty() {
                    for _ in 0..1 + rng.below(8) {
                        let at = rng.below(mutated.len());
                        mutated[at] ^= 1 << rng.below(8);
                    }
                }
                (*tag, mutated)
            }
            // Valid message, truncated or extended: length-prefix lies.
            _ => {
                let (tag, bytes) = &pool[rng.below(pool.len())];
                let mut mutated = bytes.clone();
                if rng.below(2) == 0 {
                    mutated.truncate(rng.below(mutated.len() + 1));
                } else {
                    let extra = 1 + rng.below(16);
                    mutated.extend(rng.bytes(extra));
                }
                (*tag, mutated)
            }
        };
        decode_all(case, tag, &payload);
    }
}

#[test]
fn frame_reader_never_panics_on_arbitrary_streams() {
    let mut rng = Xoshiro::seeded(seed() ^ 0xF4A3E);
    let total = cases();
    for case in 0..total {
        let buf = match case % 2 {
            // Raw noise, including buffers shorter than a header.
            0 => {
                let len = rng.below(64);
                rng.bytes(len)
            }
            // Plausible header (declared length near the real payload
            // size, sometimes lying in either direction) + noise body.
            _ => {
                let body = rng.below(48);
                let lie = rng.below(9) as i64 - 4;
                let declared = ((body + 1) as i64 + lie).max(0) as u32;
                let mut buf = declared.to_be_bytes().to_vec();
                buf.push((rng.next() & 0xFF) as u8); // tag
                buf.extend(rng.bytes(body));
                buf
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut cursor = std::io::Cursor::new(&buf);
            // Either a frame or a typed FrameError; never a panic. A
            // tiny max_len on odd cases exercises the oversize guard.
            let max = if case % 5 == 0 { 16 } else { MAX_FRAME_LEN };
            let _ = read_frame(&mut cursor, max);
        }));
        assert!(
            outcome.is_ok(),
            "read_frame panicked: case {case}, buf ({} bytes) {buf:02x?}",
            buf.len(),
        );
    }
}

#[test]
fn round_trip_survives_the_pool() {
    // Sanity on the generator pool itself: everything in it decodes
    // back to success (the fuzz tests would quietly lose coverage if a
    // pool entry were malformed to begin with).
    for (tag, payload) in valid_pool() {
        let ok = Request::decode(tag, &payload).is_ok()
            || Response::decode(tag, &payload).is_ok()
            || ReplRequest::decode(tag, &payload).is_ok()
            || ReplResponse::decode(tag, &payload).is_ok();
        assert!(ok, "pool entry with tag {tag:#04x} decodes with no decoder");
    }
}
