//! Frame transport: `len:u32be  tag:u8  payload` over any `Read`/`Write`.
//!
//! Writes assemble one contiguous buffer per frame (a single `write_all`,
//! so a frame is never interleaved mid-stream by racing writers on
//! duplicated sockets). Reads distinguish a *clean* close (EOF exactly at a
//! frame boundary) from a truncated frame (EOF inside one), and reject
//! oversized frames before buffering them.

use std::fmt;
use std::io::{self, Read, Write};

/// A frame-level read failure.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The transport failed mid-frame (includes EOF inside a frame, which
    /// surfaces as an `UnexpectedEof` I/O error).
    Io(io::Error),
    /// The peer announced a frame longer than the agreed maximum. The
    /// stream is no longer trustworthy — close it.
    Oversized {
        /// Announced `tag + payload` length.
        len: usize,
        /// The maximum this side accepts.
        max: usize,
    },
    /// The peer announced a zero-length frame (no room for the tag byte).
    Empty,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Empty => write!(f, "zero-length frame (no message tag)"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Write one frame: length prefix, tag, payload — as a single `write_all`.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    buf.push(tag);
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame, returning `(tag, payload)`.
///
/// `max_len` bounds the announced `tag + payload` length; longer frames are
/// rejected *before* any payload is buffered, so a hostile length prefix
/// cannot force an allocation.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<(u8, Vec<u8>), FrameError> {
    let mut len_buf = [0u8; 4];
    // A clean close is EOF before the first length byte; EOF later is a
    // truncated frame and surfaces as an I/O error.
    match r.read(&mut len_buf) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => r.read_exact(&mut len_buf)?,
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut payload = vec![0u8; len - 1];
    r.read_exact(&mut payload)?;
    Ok((tag[0], payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x42, b"payload").unwrap();
        let (tag, payload) = read_frame(&mut Cursor::new(&buf), 1024).unwrap();
        assert_eq!(tag, 0x42);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn empty_stream_is_a_clean_close() {
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty, 1024), Err(FrameError::Closed)));
    }

    #[test]
    fn eof_inside_a_frame_is_an_io_error_not_a_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"full payload").unwrap();
        for cut in [1, 3, 4, 5, buf.len() - 1] {
            let mut truncated = Cursor::new(buf[..cut].to_vec());
            match read_frame(&mut truncated, 1024) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}")
                }
                other => panic!("cut at {cut}: expected Io(UnexpectedEof), got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_frames_are_rejected_before_buffering() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes()); // 4 GiB announcement
        buf.push(1);
        match read_frame(&mut Cursor::new(&buf), 1024) {
            Err(FrameError::Oversized { len, max: 1024 }) => {
                assert_eq!(len, u32::MAX as usize)
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_frames_are_rejected() {
        let buf = 0u32.to_be_bytes();
        assert!(matches!(read_frame(&mut Cursor::new(&buf[..]), 1024), Err(FrameError::Empty)));
    }
}
