//! Byte-level primitives of the wire format: a [`Writer`] that appends
//! big-endian fields to a payload buffer and a bounds-checked [`Reader`]
//! that decodes them with typed errors (never a panic, whatever the bytes).

use std::fmt;

/// A payload decode failure. Every variant names what was being decoded, so
/// protocol errors sent back to a peer are actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before a field did.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The payload had bytes left after the last field of the message.
    Trailing {
        /// Bytes left over.
        remaining: usize,
    },
    /// An enum discriminant (message tag, value tag, …) is not assigned.
    BadTag {
        /// What the tag discriminates.
        what: &'static str,
        /// The unassigned value.
        tag: u64,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// What the string field was.
        what: &'static str,
    },
    /// A count or length field exceeds its sanity bound.
    TooLong {
        /// What the length counts.
        what: &'static str,
        /// The announced length.
        len: usize,
        /// The maximum this decoder accepts.
        max: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { what, needed, remaining } => {
                write!(f, "truncated {what}: needed {needed} bytes, {remaining} left")
            }
            DecodeError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            DecodeError::BadTag { what, tag } => write!(f, "unassigned {what} tag {tag}"),
            DecodeError::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
            DecodeError::TooLong { what, len, max } => {
                write!(f, "{what} length {len} exceeds limit {max}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Result alias for payload decoding.
pub type Result<T> = std::result::Result<T, DecodeError>;

/// Appends big-endian fields to a payload buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload buffer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// The encoded payload.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) -> &mut Writer {
        self.buf.push(v);
        self
    }

    pub fn bool(&mut self, v: bool) -> &mut Writer {
        self.u8(v as u8)
    }

    pub fn u16(&mut self, v: u16) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn i64(&mut self, v: i64) -> &mut Writer {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// IEEE-754 bit pattern, big-endian (NaN round-trips bit-exactly).
    pub fn f64(&mut self, v: f64) -> &mut Writer {
        self.u64(v.to_bits())
    }

    /// `u32be` length prefix + UTF-8 bytes.
    pub fn str(&mut self, s: &str) -> &mut Writer {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// `u32be` length prefix + raw bytes (opaque payloads: WAL records,
    /// snapshot blobs).
    pub fn bytes(&mut self, b: &[u8]) -> &mut Writer {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }
}

/// Bounds-checked big-endian decoder over a payload slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the whole payload was consumed — a message with bytes to
    /// spare was built by a different (newer?) protocol.
    pub fn expect_end(&self) -> Result<()> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(DecodeError::Trailing { remaining }),
        }
    }

    fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { what, needed: n, remaining: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.take(what, 1)?[0])
    }

    pub fn bool(&mut self, what: &'static str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what, tag: tag as u64 }),
        }
    }

    pub fn u16(&mut self, what: &'static str) -> Result<u16> {
        let b = self.take(what, 2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self, what: &'static str) -> Result<u32> {
        let b = self.take(what, 4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, what: &'static str) -> Result<u64> {
        let b = self.take(what, 8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn i64(&mut self, what: &'static str) -> Result<i64> {
        Ok(self.u64(what)? as i64)
    }

    pub fn f64(&mut self, what: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A length-prefixed UTF-8 string. The length is validated against the
    /// bytes actually present before anything is allocated.
    pub fn str(&mut self, what: &'static str) -> Result<String> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(DecodeError::Truncated { what, needed: len, remaining: self.remaining() });
        }
        let bytes = self.take(what, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8 { what })
    }

    /// A length-prefixed opaque byte blob. Like [`Reader::str`], the
    /// length is validated against the bytes present before allocating.
    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(DecodeError::Truncated { what, needed: len, remaining: self.remaining() });
        }
        Ok(self.take(what, len)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new();
        w.u8(7).bool(true).u16(65535).u32(1 << 30).u64(u64::MAX).i64(-42).f64(-0.125).str("héllo");
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.u16("c").unwrap(), 65535);
        assert_eq!(r.u32("d").unwrap(), 1 << 30);
        assert_eq!(r.u64("e").unwrap(), u64::MAX);
        assert_eq!(r.i64("f").unwrap(), -42);
        assert_eq!(r.f64("g").unwrap(), -0.125);
        assert_eq!(r.str("h").unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_typed_never_a_panic() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf[..5]);
        assert!(matches!(
            r.u64("field"),
            Err(DecodeError::Truncated { what: "field", needed: 8, remaining: 5 })
        ));
    }

    #[test]
    fn string_length_is_validated_before_allocation() {
        // Announce a 4 GiB string backed by 2 bytes: must fail cheaply.
        let mut w = Writer::new();
        w.u32(u32::MAX).u16(0);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.str("s"), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn bad_utf8_and_trailing_are_typed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.str("s"), Err(DecodeError::BadUtf8 { what: "s" }));

        let buf = [0u8; 3];
        let r = Reader::new(&buf);
        assert_eq!(r.expect_end(), Err(DecodeError::Trailing { remaining: 3 }));
    }

    #[test]
    fn nan_bit_patterns_round_trip() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut w = Writer::new();
        w.f64(weird);
        let buf = w.into_vec();
        assert_eq!(Reader::new(&buf).f64("x").unwrap().to_bits(), weird.to_bits());
    }
}
