//! Replication frames: the node-to-node vocabulary for single-leader log
//! shipping, snapshot transfer, role/term handshake, and failover control.
//!
//! Replication reuses the client frame grammar (`len:u32be tag:u8
//! payload`) on the same listen port — a connection's *first* frame
//! decides whether it is a client session (`Hello`, tag `0x01`) or a
//! replication peer (any tag in the [`tag`] ranges below). Tags are
//! append-only like the client vocabulary; requests sit in `0x10..=0x14`,
//! responses in `0x90..=0x92`, disjoint from the client ranges.
//!
//! # Term fencing and log identity
//!
//! Every request carries the sender's `term` (except `Status`, which is a
//! read-only probe). A node rejects any request whose term is below its
//! own with [`ReplResponse::Reject`] carrying the higher term; a leader
//! that sees a higher term in any response steps down immediately — that
//! is the whole fencing protocol. Promotion bumps the term, so a deposed
//! leader can never ship another record.
//!
//! A log entry's identity is the pair `(term, seq)` — Raft's invariant:
//! two logs holding an entry with the same term and sequence hold the
//! same entry and the same prefix. [`ReplRequest::Append`] therefore
//! carries the identity of the entry *preceding* the batch
//! (`prev_seq`/`prev_term`); a follower whose log disagrees at that
//! position truncates its conflicting suffix and rejects so the leader
//! walks back. A follower's self-reported offset is likewise qualified by
//! the term of its tip ([`ReplResponse::Ok::ack_term`]) — the leader
//! never counts an offset toward quorum without validating the term.
//!
//! # Authentication
//!
//! The state-changing vocabulary (`Hello`+`Append`/`Snapshot`, `Promote`)
//! carries a shared-secret token, because these frames share the client
//! listen port: without it, anyone who can connect could seize leadership
//! or wipe the store. `Status` stays open — it is a read-only probe.
//!
//! # Log record payloads
//!
//! The shipped log entries are opaque to this layer; the serving layer
//! encodes each profile mutation as a [`MutationRecord`] (the same
//! encoding is what the leader's WAL stores), so a follower applies
//! exactly the bytes the leader made durable.

use crate::codec::{DecodeError, Reader, Result, Writer};
use crate::proto::{decode_profile_op, encode_profile_op, ProfileOp};

/// Replication message tags. Requests sit in `0x10..=0x14`, responses in
/// `0x90..=0x92` — disjoint from the client tag ranges and append-only.
pub mod tag {
    /// Peer → node: role/term handshake (first frame of a peer link).
    pub const REPL_HELLO: u8 = 0x10;
    /// Leader → follower: ship log entries (AppendEntries-style).
    pub const REPL_APPEND: u8 = 0x11;
    /// Leader → follower: replace the follower's state with a snapshot.
    pub const REPL_SNAPSHOT: u8 = 0x12;
    /// Any → node: read-only health/lag probe (router, diagnostics).
    pub const REPL_STATUS: u8 = 0x13;
    /// Router → follower: become leader at the given (higher) term.
    pub const REPL_PROMOTE: u8 = 0x14;
    /// Node → peer: request accepted; carries term + ack offset.
    pub const REPL_OK: u8 = 0x90;
    /// Node → peer: request refused (stale term, log gap).
    pub const REPL_REJECT: u8 = 0x91;
    /// Node → peer: answer to a `REPL_STATUS` probe.
    pub const REPL_STATUS_OK: u8 = 0x92;
}

/// True when `t` is a replication *request* tag — the server uses this on
/// a connection's first frame to route it to the peer handler instead of
/// the client session handler.
pub fn is_repl_request(t: u8) -> bool {
    (tag::REPL_HELLO..=tag::REPL_PROMOTE).contains(&t)
}

/// A node's replication role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts client mutations, ships the log to followers.
    Leader,
    /// Applies shipped records; refuses client mutations.
    Follower,
}

impl Role {
    /// Stable lowercase label (telemetry, `SHOW METRICS`).
    pub fn label(self) -> &'static str {
        match self {
            Role::Leader => "leader",
            Role::Follower => "follower",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Role::Leader => 0,
            Role::Follower => 1,
        }
    }

    fn from_u8(t: u8) -> Result<Role> {
        match t {
            0 => Ok(Role::Leader),
            1 => Ok(Role::Follower),
            t => Err(DecodeError::BadTag { what: "role", tag: t as u64 }),
        }
    }
}

/// One shipped log entry: its `(term, seq)` identity and the opaque
/// record bytes exactly as the leader made them durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The term the entry was created under (half of its identity).
    pub term: u64,
    /// The leader's log sequence number for this record.
    pub seq: u64,
    /// The record payload (a [`MutationRecord`] encoding).
    pub payload: Vec<u8>,
}

/// A node's replication status, as answered to a `Status` probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// The node's configured identity.
    pub node_id: String,
    /// Current role.
    pub role: Role,
    /// Current term.
    pub term: u64,
    /// Last appended log sequence number.
    pub last_seq: u64,
    /// Last sequence number known durable (fsynced).
    pub durable_seq: u64,
}

/// A node-to-node replication request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplRequest {
    /// Handshake: must be the first frame on a peer link. The receiver
    /// adopts a higher term (stepping down if it was leader), reconciles
    /// its log tail against the leader's tip identity (truncating any
    /// suffix the leader does not hold), and answers [`ReplResponse::Ok`]
    /// with its last log position so the sender can pick catch-up vs
    /// snapshot transfer.
    Hello {
        /// The protocol version the peer speaks (exact match required).
        version: u16,
        /// The sending node's identity.
        node_id: String,
        /// The sender's current term.
        term: u64,
        /// Shared-secret auth token (`PQP_REPL_TOKEN`); must match the
        /// receiver's configured token before any state-changing frame
        /// is honored on this link.
        token: String,
        /// The sender's (the leader's) last log sequence number.
        last_seq: u64,
        /// The term of the sender's last log entry (0 for an empty log).
        last_term: u64,
    },
    /// Ship contiguous log entries. The receiver verifies the entry
    /// preceding the batch matches `(prev_seq, prev_term)` — truncating
    /// its conflicting suffix if not — then appends, syncs, applies, and
    /// acks its new last sequence; it rejects stale terms and gaps.
    Append {
        /// The sender's term (fencing).
        term: u64,
        /// Sequence of the entry immediately before this batch (0 when
        /// the batch starts the log).
        prev_seq: u64,
        /// Term of that preceding entry (0 when `prev_seq` is 0). A
        /// mismatch on the receiver is a log conflict.
        prev_term: u64,
        /// Entries in sequence order, contiguous after `prev_seq`.
        entries: Vec<LogEntry>,
    },
    /// Replace the receiver's entire state with a snapshot (the catch-up
    /// path when the sender's log no longer reaches back far enough).
    Snapshot {
        /// The sender's term (fencing).
        term: u64,
        /// The sequence number the snapshot covers through.
        last_seq: u64,
        /// The term of the entry at `last_seq` (the snapshot's identity).
        last_term: u64,
        /// Opaque snapshot bytes (the serving layer's profile dump).
        data: Vec<u8>,
    },
    /// Read-only status probe; never changes node state.
    Status,
    /// Manual/router-triggered failover: become leader at `term`. The
    /// receiver refuses unless `term` is strictly above its own and the
    /// token matches its configured secret.
    Promote {
        /// The new leadership term (must exceed every term the cluster
        /// has seen, so the deposed leader is fenced).
        term: u64,
        /// Shared-secret auth token (`PQP_REPL_TOKEN`).
        token: String,
    },
}

/// A node's answer to a [`ReplRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplResponse {
    /// Accepted. `ack_seq` is the receiver's last log sequence after the
    /// request — the sender's replication offset for this peer. The
    /// sender must validate `(ack_seq, ack_term)` against its own log
    /// before trusting the offset for quorum.
    Ok {
        /// The receiver's current term.
        term: u64,
        /// The receiver's last log sequence number.
        ack_seq: u64,
        /// The term of the receiver's entry at `ack_seq` (0 for an empty
        /// log) — the identity half of the ack.
        ack_term: u64,
    },
    /// Refused: stale term (fencing) or a log discontinuity. `last_seq`
    /// tells the sender where the receiver's log actually ends so it can
    /// resend from there (or ship a snapshot).
    Reject {
        /// The receiver's current term (≥ the sender's on fencing).
        term: u64,
        /// The receiver's last log sequence number.
        last_seq: u64,
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Answer to [`ReplRequest::Status`].
    Status(NodeStatus),
}

/// Sanity ceiling on entries per `Append` frame (the frame length limit
/// bounds total bytes; this bounds the vector allocation).
const MAX_ENTRIES: usize = 65_536;

impl ReplRequest {
    /// Encode into `(tag, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = Writer::new();
        let tag = match self {
            ReplRequest::Hello { version, node_id, term, token, last_seq, last_term } => {
                w.u16(*version).str(node_id).u64(*term).str(token).u64(*last_seq).u64(*last_term);
                tag::REPL_HELLO
            }
            ReplRequest::Append { term, prev_seq, prev_term, entries } => {
                w.u64(*term).u64(*prev_seq).u64(*prev_term).u32(entries.len() as u32);
                for e in entries {
                    w.u64(e.term).u64(e.seq).bytes(&e.payload);
                }
                tag::REPL_APPEND
            }
            ReplRequest::Snapshot { term, last_seq, last_term, data } => {
                w.u64(*term).u64(*last_seq).u64(*last_term).bytes(data);
                tag::REPL_SNAPSHOT
            }
            ReplRequest::Status => tag::REPL_STATUS,
            ReplRequest::Promote { term, token } => {
                w.u64(*term).str(token);
                tag::REPL_PROMOTE
            }
        };
        (tag, w.into_vec())
    }

    /// Decode from `(tag, payload)`. The whole payload must be consumed.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<ReplRequest> {
        let mut r = Reader::new(payload);
        let req = match tag {
            tag::REPL_HELLO => ReplRequest::Hello {
                version: r.u16("protocol version")?,
                node_id: r.str("node id")?,
                term: r.u64("term")?,
                token: r.str("auth token")?,
                last_seq: r.u64("leader last seq")?,
                last_term: r.u64("leader last term")?,
            },
            tag::REPL_APPEND => {
                let term = r.u64("term")?;
                let prev_seq = r.u64("prev seq")?;
                let prev_term = r.u64("prev term")?;
                let count = r.u32("entry count")? as usize;
                // Each entry is ≥ 20 bytes (term + seq + length prefix):
                // reject absurd counts before allocating.
                if count > MAX_ENTRIES || count > r.remaining() / 20 + 1 {
                    return Err(DecodeError::TooLong {
                        what: "append entries",
                        len: count,
                        max: MAX_ENTRIES.min(r.remaining() / 20 + 1),
                    });
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(LogEntry {
                        term: r.u64("entry term")?,
                        seq: r.u64("entry seq")?,
                        payload: r.bytes("entry payload")?,
                    });
                }
                ReplRequest::Append { term, prev_seq, prev_term, entries }
            }
            tag::REPL_SNAPSHOT => ReplRequest::Snapshot {
                term: r.u64("term")?,
                last_seq: r.u64("snapshot last seq")?,
                last_term: r.u64("snapshot last term")?,
                data: r.bytes("snapshot data")?,
            },
            tag::REPL_STATUS => ReplRequest::Status,
            tag::REPL_PROMOTE => {
                ReplRequest::Promote { term: r.u64("term")?, token: r.str("auth token")? }
            }
            tag => return Err(DecodeError::BadTag { what: "repl request", tag: tag as u64 }),
        };
        r.expect_end()?;
        Ok(req)
    }
}

impl ReplResponse {
    /// Encode into `(tag, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = Writer::new();
        let tag = match self {
            ReplResponse::Ok { term, ack_seq, ack_term } => {
                w.u64(*term).u64(*ack_seq).u64(*ack_term);
                tag::REPL_OK
            }
            ReplResponse::Reject { term, last_seq, reason } => {
                w.u64(*term).u64(*last_seq).str(reason);
                tag::REPL_REJECT
            }
            ReplResponse::Status(s) => {
                w.str(&s.node_id).u8(s.role.to_u8()).u64(s.term).u64(s.last_seq).u64(s.durable_seq);
                tag::REPL_STATUS_OK
            }
        };
        (tag, w.into_vec())
    }

    /// Decode from `(tag, payload)`. The whole payload must be consumed.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<ReplResponse> {
        let mut r = Reader::new(payload);
        let resp = match tag {
            tag::REPL_OK => ReplResponse::Ok {
                term: r.u64("term")?,
                ack_seq: r.u64("ack seq")?,
                ack_term: r.u64("ack term")?,
            },
            tag::REPL_REJECT => ReplResponse::Reject {
                term: r.u64("term")?,
                last_seq: r.u64("last seq")?,
                reason: r.str("reject reason")?,
            },
            tag::REPL_STATUS_OK => ReplResponse::Status(NodeStatus {
                node_id: r.str("node id")?,
                role: Role::from_u8(r.u8("role")?)?,
                term: r.u64("term")?,
                last_seq: r.u64("last seq")?,
                durable_seq: r.u64("durable seq")?,
            }),
            tag => return Err(DecodeError::BadTag { what: "repl response", tag: tag as u64 }),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

/// One profile mutation as recorded in the WAL and shipped to followers:
/// the target user plus the operation. This is the log record grammar —
/// the bytes a [`LogEntry`] carries and the leader's WAL stores.
///
/// Epochs are deliberately *not* part of the record: they are node-local
/// cache-invalidation counters, re-drawn on every apply. The WAL sequence
/// number (carried by the framing, not the record) is the authoritative
/// mutation order.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationRecord {
    /// The user whose profile mutates.
    pub user: String,
    /// The mutation.
    pub op: ProfileOp,
}

impl MutationRecord {
    /// Encode to the canonical record bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.user);
        encode_profile_op(&mut w, &self.op);
        w.into_vec()
    }

    /// Decode from record bytes. The whole buffer must be consumed.
    pub fn decode(bytes: &[u8]) -> Result<MutationRecord> {
        let mut r = Reader::new(bytes);
        let record = MutationRecord { user: r.str("record user")?, op: decode_profile_op(&mut r)? };
        r.expect_end()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_storage::Value;

    fn round_trip_request(req: ReplRequest) {
        let (tag, payload) = req.encode();
        assert_eq!(ReplRequest::decode(tag, &payload).unwrap(), req);
    }

    fn round_trip_response(resp: ReplResponse) {
        let (tag, payload) = resp.encode();
        assert_eq!(ReplResponse::decode(tag, &payload).unwrap(), resp);
    }

    #[test]
    fn repl_requests_round_trip() {
        round_trip_request(ReplRequest::Hello {
            version: 1,
            node_id: "node-a".into(),
            term: 7,
            token: "s3cret".into(),
            last_seq: 41,
            last_term: 6,
        });
        round_trip_request(ReplRequest::Append {
            term: 3,
            prev_seq: 9,
            prev_term: 2,
            entries: vec![],
        });
        round_trip_request(ReplRequest::Append {
            term: 3,
            prev_seq: 9,
            prev_term: 3,
            entries: vec![
                LogEntry { term: 3, seq: 10, payload: vec![1, 2, 3] },
                LogEntry { term: 3, seq: 11, payload: vec![] },
            ],
        });
        round_trip_request(ReplRequest::Snapshot {
            term: 9,
            last_seq: 1000,
            last_term: 8,
            data: vec![0xAB; 64],
        });
        round_trip_request(ReplRequest::Status);
        round_trip_request(ReplRequest::Promote { term: 12, token: String::new() });
    }

    #[test]
    fn repl_responses_round_trip() {
        round_trip_response(ReplResponse::Ok { term: 4, ack_seq: 99, ack_term: 4 });
        round_trip_response(ReplResponse::Reject {
            term: 5,
            last_seq: 42,
            reason: "stale term".into(),
        });
        round_trip_response(ReplResponse::Status(NodeStatus {
            node_id: "node-b".into(),
            role: Role::Follower,
            term: 6,
            last_seq: 77,
            durable_seq: 76,
        }));
        round_trip_response(ReplResponse::Status(NodeStatus {
            node_id: "node-a".into(),
            role: Role::Leader,
            term: 6,
            last_seq: 78,
            durable_seq: 78,
        }));
    }

    #[test]
    fn mutation_records_round_trip() {
        for op in [
            ProfileOp::AddSelection {
                table: "GENRE".into(),
                column: "genre".into(),
                value: Value::Str("comedy".into()),
                doi: 0.9,
            },
            ProfileOp::AddJoin {
                from_table: "MOVIE".into(),
                from_column: "mid".into(),
                to_table: "GENRE".into(),
                to_column: "mid".into(),
                doi: 0.5,
            },
            ProfileOp::Remove,
        ] {
            let record = MutationRecord { user: "julie".into(), op };
            assert_eq!(MutationRecord::decode(&record.encode()).unwrap(), record);
        }
    }

    #[test]
    fn repl_tags_are_disjoint_from_client_tags() {
        use crate::proto::tag as client;
        let client_tags = [
            client::HELLO,
            client::QUERY,
            client::PREPARE,
            client::MUTATE,
            client::SHOW,
            client::CLOSE,
            client::HELLO_OK,
            client::ANSWER,
            client::PREPARE_OK,
            client::MUTATE_OK,
            client::ERROR,
            client::BYE,
        ];
        let repl_tags = [
            tag::REPL_HELLO,
            tag::REPL_APPEND,
            tag::REPL_SNAPSHOT,
            tag::REPL_STATUS,
            tag::REPL_PROMOTE,
            tag::REPL_OK,
            tag::REPL_REJECT,
            tag::REPL_STATUS_OK,
        ];
        for t in repl_tags {
            assert!(!client_tags.contains(&t), "tag {t:#04x} reused");
        }
        for t in [tag::REPL_HELLO, tag::REPL_PROMOTE] {
            assert!(is_repl_request(t));
        }
        for t in [client::HELLO, client::MUTATE, tag::REPL_OK] {
            assert!(!is_repl_request(t));
        }
    }

    #[test]
    fn malformed_repl_payloads_are_typed_errors() {
        assert!(matches!(
            ReplRequest::decode(0x7F, &[]),
            Err(DecodeError::BadTag { what: "repl request", .. })
        ));
        assert!(matches!(
            ReplResponse::decode(0x8F, &[]),
            Err(DecodeError::BadTag { what: "repl response", .. })
        ));
        // Absurd entry count: longer than the payload can carry.
        let mut w = Writer::new();
        w.u64(1).u64(0).u64(0).u32(u32::MAX);
        assert!(matches!(
            ReplRequest::decode(tag::REPL_APPEND, &w.into_vec()),
            Err(DecodeError::TooLong { what: "append entries", .. })
        ));
        // Truncated snapshot.
        let mut w = Writer::new();
        w.u64(1).u64(5).u64(1).u32(1000);
        assert!(matches!(
            ReplRequest::decode(tag::REPL_SNAPSHOT, &w.into_vec()),
            Err(DecodeError::Truncated { .. })
        ));
        // Trailing bytes after a well-formed response.
        let (tag, mut payload) = ReplResponse::Ok { term: 1, ack_seq: 2, ack_term: 1 }.encode();
        payload.push(0);
        assert!(matches!(ReplResponse::decode(tag, &payload), Err(DecodeError::Trailing { .. })));
        // Unassigned role discriminant.
        let mut w = Writer::new();
        w.str("n").u8(9).u64(1).u64(1).u64(1);
        assert!(matches!(
            ReplResponse::decode(tag::REPL_STATUS_OK, &w.into_vec()),
            Err(DecodeError::BadTag { what: "role", .. })
        ));
    }
}
