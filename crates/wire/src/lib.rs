//! # pqp-wire — the framed wire protocol and its blocking client
//!
//! The serving layer becomes a database *server* here: this crate defines
//! the versioned, length-prefixed binary protocol that `pqp-server` speaks
//! over TCP, and ships the matching blocking [`Client`]. Everything that
//! crosses the wire — requests, answers, options, errors — is a stable,
//! versioned surface (see `DESIGN.md` §14 for the grammar and the
//! compatibility rules).
//!
//! ## Frame grammar
//!
//! ```text
//! frame   := len:u32be  tag:u8  payload:byte*     (len = 1 + |payload|)
//! ```
//!
//! A frame is at most [`MAX_FRAME_LEN`] bytes of `tag + payload`; peers
//! reject oversized frames with a typed protocol error and close (the
//! stream can no longer be trusted to be frame-aligned). All integers are
//! big-endian; strings are `u32be` length-prefixed UTF-8; floats are IEEE
//! bit patterns. The message vocabulary lives in [`proto`].
//!
//! ## Versioning rules
//!
//! - The handshake carries [`PROTOCOL_VERSION`]; a server that does not
//!   speak the client's version answers with a `protocol` error frame and
//!   closes. Version 1 has no negotiation — matching versions or nothing.
//! - Message tags, error codes ([`pqp_service::ErrorCode`]) and enum
//!   discriminants are append-only: once assigned, never reused.
//! - Fields are never removed or reordered within a version; additions
//!   require a version bump.
//!
//! ## One client API over both backends
//!
//! [`Client`] implements [`pqp_service::QueryApi`], the same trait the
//! in-process `Session` implements — code written against
//! `&mut impl QueryApi` runs unchanged over TCP or in-process.

pub mod codec;
pub mod frame;
pub mod proto;
pub mod repl;

mod client;

pub use client::{Client, ClientConfig, RetryCounters, RetryPolicy};
pub use codec::{DecodeError, Reader, Writer};
pub use frame::{read_frame, write_frame, FrameError};
pub use proto::{ProfileOp, Request, Response, ShowRequest, WireError};
pub use repl::{LogEntry, MutationRecord, NodeStatus, ReplRequest, ReplResponse, Role};

/// The protocol version this build speaks. The handshake requires an exact
/// match; see the crate docs for the compatibility rules.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard ceiling on `tag + payload` length of a single frame (8 MiB). A
/// peer announcing a longer frame is desynchronized or hostile; the frame
/// is rejected without buffering it.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;
