//! The blocking TCP client: one socket, one session, the same
//! [`QueryApi`] the in-process `Session` implements — plus an opt-in
//! bounded-backoff retry policy for transient transport failures.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use pqp_service::{Answer, Error, QueryApi, Result};
use pqp_storage::Value;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{ProfileOp, Request, Response, ShowRequest};
use crate::{MAX_FRAME_LEN, PROTOCOL_VERSION};

/// Opt-in retry policy for transient failures: bounded exponential
/// backoff with full jitter.
///
/// Only `Io` and `Overloaded` errors are retried — everything else
/// (parse errors, protocol violations, budget trips) is deterministic and
/// retrying it wastes work. An `Io` retry reconnects and re-handshakes
/// first, since the old socket is dead.
///
/// **At-least-once caveat:** when a request dies with `Io`, whether it
/// took effect is unknown. Retrying a *mutation* after `Io` can therefore
/// apply it twice. Profile mutations are upserts keyed on the preference,
/// so a duplicate is harmless here — but that is why the policy is
/// default-off and opt-in per client.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Backoff base: attempt `n` draws a delay uniformly from
    /// `0..min(max_delay, base_delay * 2^n)` (full jitter).
    pub base_delay: Duration,
    /// Hard cap on a single backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// 4 attempts, 25 ms base, 1 s cap — under 2 s worst-case total sleep.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff delay before retry attempt `attempt`
    /// (0-based), given a uniform draw in `[0, 1)`.
    fn delay(&self, attempt: u32, draw: f64) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        exp.min(self.max_delay).mul_f64(draw)
    }
}

/// Counters a client accumulates under its [`RetryPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryCounters {
    /// Individual retry attempts performed (after transient failures).
    pub retries: u64,
    /// Requests that failed even after exhausting every attempt.
    pub exhausted: u64,
    /// Successful reconnect-and-re-handshake cycles after an `Io` error.
    pub reconnects: u64,
}

/// Client-side connection knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The user this session acts as.
    pub user: String,
    /// Read timeout on responses (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Write timeout on requests (`None` = block forever).
    pub write_timeout: Option<Duration>,
    /// Retry transient `Io`/`Overloaded` failures (`None` = off, the
    /// default: every transport error surfaces immediately).
    pub retry: Option<RetryPolicy>,
}

impl ClientConfig {
    /// A config for `user` with 30-second read/write timeouts and no
    /// retry policy.
    pub fn new(user: impl Into<String>) -> ClientConfig {
        ClientConfig {
            user: user.into(),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: None,
        }
    }

    /// The same config with a retry policy enabled.
    pub fn with_retry(mut self, policy: RetryPolicy) -> ClientConfig {
        self.retry = Some(policy);
        self
    }
}

/// A blocking connection to a `pqp-server`, bound to one user session.
///
/// Implements [`QueryApi`], so code written against `&mut impl QueryApi`
/// runs identically over TCP and in-process. Request/response is strictly
/// sequential — one outstanding request per connection.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    config: ClientConfig,
    /// Resolved addresses, kept for reconnects under the retry policy.
    addrs: Vec<SocketAddr>,
    server: String,
    counters: RetryCounters,
    /// Jitter state: a cheap xorshift seeded per client.
    jitter: u64,
}

impl Client {
    /// Connect, perform the protocol handshake, and bind the session to
    /// `config.user`. Fails with [`Error::Protocol`] on a version mismatch
    /// and [`Error::Io`] on transport failures. With a retry policy
    /// configured, transient connect failures back off and retry too.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(io_err)?.collect();
        if addrs.is_empty() {
            return Err(Error::Io("address resolved to nothing".to_string()));
        }
        let mut jitter = RandomState::new().build_hasher().finish() | 1;
        let mut attempt = 0u32;
        let mut counters = RetryCounters::default();
        loop {
            match Self::open_session(&addrs, &config) {
                Ok((reader, writer, server)) => {
                    return Ok(Client { reader, writer, config, addrs, server, counters, jitter });
                }
                Err(e) => {
                    let Some(policy) = config.retry.clone() else { return Err(e) };
                    if !transient(&e) {
                        return Err(e);
                    }
                    if attempt + 1 >= policy.max_attempts {
                        // The client is never constructed, so exhaustion is
                        // only visible via the process-wide counter.
                        pqp_obs::counter_add("wire.client.retry_exhausted", 1);
                        return Err(e);
                    }
                    counters.retries += 1;
                    pqp_obs::counter_add("wire.client.retries", 1);
                    std::thread::sleep(policy.delay(attempt, draw(&mut jitter)));
                    attempt += 1;
                }
            }
        }
    }

    /// One raw connect + handshake.
    fn open_session(
        addrs: &[SocketAddr],
        config: &ClientConfig,
    ) -> Result<(TcpStream, BufWriter<TcpStream>, String)> {
        let stream = TcpStream::connect(addrs).map_err(io_err)?;
        stream.set_read_timeout(config.read_timeout).map_err(io_err)?;
        stream.set_write_timeout(config.write_timeout).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let mut reader = stream.try_clone().map_err(io_err)?;
        let mut writer = BufWriter::new(stream);
        let hello = Request::Hello { version: PROTOCOL_VERSION, user: config.user.clone() };
        let (tag, payload) = hello.encode();
        write_frame(&mut writer, tag, &payload).map_err(io_err)?;
        use std::io::Write;
        writer.flush().map_err(io_err)?;
        match recv_on(&mut reader)? {
            Response::HelloOk { server, .. } => Ok((reader, writer, server)),
            Response::Error(e) => Err(e.into_error()),
            other => Err(unexpected(&hello, &other)),
        }
    }

    /// The server identification string from the handshake.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Retry counters accumulated by this client (all zero without a
    /// retry policy).
    pub fn retry_counters(&self) -> RetryCounters {
        self.counters
    }

    /// Run one introspection request (`SHOW …`) over live server telemetry.
    pub fn show(&mut self, show: ShowRequest) -> Result<Answer> {
        let req = Request::Show(show);
        match self.rpc(&req)? {
            Response::Answer(a) => Ok(a),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// Run one query with explicit personalization/rewrite overrides
    /// (`None` = the server session's defaults).
    pub fn query_with(
        &mut self,
        sql: &str,
        options: Option<pqp_core::PersonalizeOptions>,
        rewrite: Option<pqp_core::Rewrite>,
    ) -> Result<Answer> {
        let req = Request::Query { sql: sql.to_string(), options, rewrite };
        match self.rpc(&req)? {
            Response::Answer(a) => Ok(a),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// Send an orderly goodbye and consume the socket. Errors on the
    /// goodbye itself are ignored — the session is over either way.
    pub fn close(mut self) {
        if self.send(&Request::Close).is_ok() {
            let _ = self.recv();
        }
    }

    fn mutate(&mut self, op: ProfileOp) -> Result<(u64, bool)> {
        let req = Request::Mutate(op);
        match self.rpc(&req)? {
            Response::MutateOk { epoch, removed } => Ok((epoch, removed)),
            other => Err(unexpected(&req, &other)),
        }
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        let (tag, payload) = req.encode();
        write_frame(&mut self.writer, tag, &payload).map_err(io_err)
    }

    fn recv(&mut self) -> Result<Response> {
        recv_on(&mut self.reader)
    }

    /// Tear down the dead socket and open a fresh session (same address,
    /// same user). Only called under a retry policy after an `Io` error.
    fn reconnect(&mut self) -> Result<()> {
        let (reader, writer, server) = Self::open_session(&self.addrs, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        self.server = server;
        self.counters.reconnects += 1;
        pqp_obs::counter_add("wire.client.reconnects", 1);
        Ok(())
    }

    fn rpc_once(&mut self, req: &Request) -> Result<Response> {
        self.send(req)?;
        match self.recv()? {
            Response::Error(e) => Err(e.into_error()),
            resp => Ok(resp),
        }
    }

    /// One request/response exchange. A server `Error` frame becomes the
    /// decoded service [`Error`] (kind-preserving; `Overloaded` rebuilds
    /// structurally). With a retry policy, transient `Io`/`Overloaded`
    /// failures back off with jitter and retry — reconnecting first when
    /// the socket died.
    fn rpc(&mut self, req: &Request) -> Result<Response> {
        let Some(policy) = self.config.retry.clone() else { return self.rpc_once(req) };
        let mut attempt = 0u32;
        loop {
            let err = match self.rpc_once(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            if !transient(&err) {
                return Err(err);
            }
            if attempt + 1 >= policy.max_attempts {
                self.counters.exhausted += 1;
                pqp_obs::counter_add("wire.client.retry_exhausted", 1);
                return Err(err);
            }
            self.counters.retries += 1;
            pqp_obs::counter_add("wire.client.retries", 1);
            std::thread::sleep(policy.delay(attempt, draw(&mut self.jitter)));
            if matches!(err, Error::Io(_)) {
                // The socket is dead; a fresh session is part of the
                // retry. A failed reconnect is itself transient — loop.
                if let Err(e) = self.reconnect() {
                    if attempt + 2 >= policy.max_attempts {
                        self.counters.exhausted += 1;
                        pqp_obs::counter_add("wire.client.retry_exhausted", 1);
                        return Err(e);
                    }
                }
            }
            attempt += 1;
        }
    }
}

impl QueryApi for Client {
    fn user_id(&self) -> &str {
        &self.config.user
    }

    fn query(&mut self, sql: &str) -> Result<Answer> {
        self.query_with(sql, None, None)
    }

    fn prepare(&mut self, sql: &str) -> Result<String> {
        let req = Request::Prepare { sql: sql.to_string() };
        match self.rpc(&req)? {
            Response::PrepareOk { canonical } => Ok(canonical),
            other => Err(unexpected(&req, &other)),
        }
    }

    fn add_selection(&mut self, table: &str, column: &str, value: Value, doi: f64) -> Result<()> {
        self.mutate(ProfileOp::AddSelection {
            table: table.to_string(),
            column: column.to_string(),
            value,
            doi,
        })
        .map(|_| ())
    }

    fn add_join(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
        doi: f64,
    ) -> Result<()> {
        self.mutate(ProfileOp::AddJoin {
            from_table: from_table.to_string(),
            from_column: from_column.to_string(),
            to_table: to_table.to_string(),
            to_column: to_column.to_string(),
            doi,
        })
        .map(|_| ())
    }

    fn remove_profile(&mut self) -> Result<bool> {
        self.mutate(ProfileOp::Remove).map(|(_, removed)| removed)
    }
}

/// Is this error worth retrying? Only transport failures and admission
/// refusals — both can succeed on a later attempt.
fn transient(e: &Error) -> bool {
    matches!(e, Error::Io(_) | Error::Overloaded { .. })
}

/// Uniform draw in `[0, 1)` from a xorshift64* step.
fn draw(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
}

fn recv_on(reader: &mut TcpStream) -> Result<Response> {
    let (tag, payload) = read_frame(reader, MAX_FRAME_LEN).map_err(frame_err)?;
    Response::decode(tag, &payload).map_err(|e| Error::Protocol(format!("bad response frame: {e}")))
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(e.to_string())
}

fn frame_err(e: FrameError) -> Error {
    match e {
        FrameError::Closed => Error::Io("server closed the connection".to_string()),
        FrameError::Io(e) => Error::Io(e.to_string()),
        e @ (FrameError::Oversized { .. } | FrameError::Empty) => Error::Protocol(e.to_string()),
    }
}

fn unexpected(req: &Request, resp: &Response) -> Error {
    let (req_tag, _) = req.encode();
    let (resp_tag, _) = resp.encode();
    Error::Protocol(format!(
        "unexpected response tag {resp_tag:#04x} to request tag {req_tag:#04x}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_bounded() {
        let p = RetryPolicy::default();
        assert!(p.max_attempts >= 2);
        // Worst-case total sleep stays small even if every draw is ~1.
        let total: Duration = (0..p.max_attempts - 1).map(|a| p.delay(a, 0.999)).sum();
        assert!(total < Duration::from_secs(5), "worst-case backoff {total:?}");
    }

    #[test]
    fn delay_grows_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
        };
        assert_eq!(p.delay(0, 1.0), Duration::from_millis(10));
        assert_eq!(p.delay(1, 1.0), Duration::from_millis(20));
        assert_eq!(p.delay(2, 1.0), Duration::from_millis(40));
        assert_eq!(p.delay(3, 1.0), Duration::from_millis(80));
        assert_eq!(p.delay(9, 1.0), Duration::from_millis(80), "capped");
        assert_eq!(p.delay(5, 0.0), Duration::ZERO, "full jitter reaches zero");
    }

    #[test]
    fn transient_classification() {
        assert!(transient(&Error::Io("reset".into())));
        assert!(transient(&Error::Overloaded { in_flight: 9, max: 8 }));
        assert!(!transient(&Error::Protocol("bad".into())));
        assert!(!transient(&Error::Internal("bug".into())));
    }

    #[test]
    fn jitter_draw_is_uniformish_and_in_range() {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut sum = 0.0;
        for _ in 0..1000 {
            let d = draw(&mut state);
            assert!((0.0..1.0).contains(&d));
            sum += d;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }
}
