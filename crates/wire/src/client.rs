//! The blocking TCP client: one socket, one session, the same
//! [`QueryApi`] the in-process `Session` implements.

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pqp_service::{Answer, Error, QueryApi, Result};
use pqp_storage::Value;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{ProfileOp, Request, Response, ShowRequest};
use crate::{MAX_FRAME_LEN, PROTOCOL_VERSION};

/// Client-side connection knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The user this session acts as.
    pub user: String,
    /// Read timeout on responses (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Write timeout on requests (`None` = block forever).
    pub write_timeout: Option<Duration>,
}

impl ClientConfig {
    /// A config for `user` with 30-second read/write timeouts.
    pub fn new(user: impl Into<String>) -> ClientConfig {
        ClientConfig {
            user: user.into(),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A blocking connection to a `pqp-server`, bound to one user session.
///
/// Implements [`QueryApi`], so code written against `&mut impl QueryApi`
/// runs identically over TCP and in-process. Request/response is strictly
/// sequential — one outstanding request per connection.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    user: String,
    server: String,
}

impl Client {
    /// Connect, perform the protocol handshake, and bind the session to
    /// `config.user`. Fails with [`Error::Protocol`] on a version mismatch
    /// and [`Error::Io`] on transport failures.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_read_timeout(config.read_timeout).map_err(io_err)?;
        stream.set_write_timeout(config.write_timeout).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let reader = stream.try_clone().map_err(io_err)?;
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            user: config.user.clone(),
            server: String::new(),
        };
        let hello = Request::Hello { version: PROTOCOL_VERSION, user: config.user };
        match client.rpc(&hello)? {
            Response::HelloOk { server, .. } => {
                client.server = server;
                Ok(client)
            }
            other => Err(unexpected(&hello, &other)),
        }
    }

    /// The server identification string from the handshake.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Run one introspection request (`SHOW …`) over live server telemetry.
    pub fn show(&mut self, show: ShowRequest) -> Result<Answer> {
        let req = Request::Show(show);
        match self.rpc(&req)? {
            Response::Answer(a) => Ok(a),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// Run one query with explicit personalization/rewrite overrides
    /// (`None` = the server session's defaults).
    pub fn query_with(
        &mut self,
        sql: &str,
        options: Option<pqp_core::PersonalizeOptions>,
        rewrite: Option<pqp_core::Rewrite>,
    ) -> Result<Answer> {
        let req = Request::Query { sql: sql.to_string(), options, rewrite };
        match self.rpc(&req)? {
            Response::Answer(a) => Ok(a),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// Send an orderly goodbye and consume the socket. Errors on the
    /// goodbye itself are ignored — the session is over either way.
    pub fn close(mut self) {
        if self.send(&Request::Close).is_ok() {
            let _ = self.recv();
        }
    }

    fn mutate(&mut self, op: ProfileOp) -> Result<(u64, bool)> {
        let req = Request::Mutate(op);
        match self.rpc(&req)? {
            Response::MutateOk { epoch, removed } => Ok((epoch, removed)),
            other => Err(unexpected(&req, &other)),
        }
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        let (tag, payload) = req.encode();
        write_frame(&mut self.writer, tag, &payload).map_err(io_err)
    }

    fn recv(&mut self) -> Result<Response> {
        let (tag, payload) = read_frame(&mut self.reader, MAX_FRAME_LEN).map_err(frame_err)?;
        Response::decode(tag, &payload)
            .map_err(|e| Error::Protocol(format!("bad response frame: {e}")))
    }

    /// One request/response exchange. A server `Error` frame becomes the
    /// decoded service [`Error`] (kind-preserving; `Overloaded` rebuilds
    /// structurally).
    fn rpc(&mut self, req: &Request) -> Result<Response> {
        self.send(req)?;
        match self.recv()? {
            Response::Error(e) => Err(e.into_error()),
            resp => Ok(resp),
        }
    }
}

impl QueryApi for Client {
    fn user_id(&self) -> &str {
        &self.user
    }

    fn query(&mut self, sql: &str) -> Result<Answer> {
        self.query_with(sql, None, None)
    }

    fn prepare(&mut self, sql: &str) -> Result<String> {
        let req = Request::Prepare { sql: sql.to_string() };
        match self.rpc(&req)? {
            Response::PrepareOk { canonical } => Ok(canonical),
            other => Err(unexpected(&req, &other)),
        }
    }

    fn add_selection(&mut self, table: &str, column: &str, value: Value, doi: f64) -> Result<()> {
        self.mutate(ProfileOp::AddSelection {
            table: table.to_string(),
            column: column.to_string(),
            value,
            doi,
        })
        .map(|_| ())
    }

    fn add_join(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
        doi: f64,
    ) -> Result<()> {
        self.mutate(ProfileOp::AddJoin {
            from_table: from_table.to_string(),
            from_column: from_column.to_string(),
            to_table: to_table.to_string(),
            to_column: to_column.to_string(),
            doi,
        })
        .map(|_| ())
    }

    fn remove_profile(&mut self) -> Result<bool> {
        self.mutate(ProfileOp::Remove).map(|(_, removed)| removed)
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(e.to_string())
}

fn frame_err(e: FrameError) -> Error {
    match e {
        FrameError::Closed => Error::Io("server closed the connection".to_string()),
        FrameError::Io(e) => Error::Io(e.to_string()),
        e @ (FrameError::Oversized { .. } | FrameError::Empty) => Error::Protocol(e.to_string()),
    }
}

fn unexpected(req: &Request, resp: &Response) -> Error {
    let (req_tag, _) = req.encode();
    let (resp_tag, _) = resp.encode();
    Error::Protocol(format!(
        "unexpected response tag {resp_tag:#04x} to request tag {req_tag:#04x}"
    ))
}
