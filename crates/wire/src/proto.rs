//! The protocol vocabulary: request/response messages and the encoding of
//! every type that crosses the wire (values, rows, personalization options,
//! answer metadata, errors).
//!
//! Tags and discriminants are **append-only** — a value, once assigned,
//! never changes meaning and is never reused (see the crate docs for the
//! versioning rules).

use crate::codec::{DecodeError, Reader, Result, Writer};
use pqp_core::{InterestCriterion, MandatorySpec, MatchSpec, PersonalizeOptions, Rewrite};
use pqp_engine::ResultSet;
use pqp_service::{Answer, AnswerMeta, CacheOutcome, DegradeLevel, Error, ErrorCode};
use pqp_storage::Value;

/// Message tags. Requests sit below `0x80`, responses above.
pub mod tag {
    /// Client → server: handshake (protocol version + user id).
    pub const HELLO: u8 = 0x01;
    /// Client → server: run one personalized query.
    pub const QUERY: u8 = 0x02;
    /// Client → server: parse + validate, warm the prepared cache.
    pub const PREPARE: u8 = 0x03;
    /// Client → server: mutate this session's profile.
    pub const MUTATE: u8 = 0x04;
    /// Client → server: introspection (`SHOW …`).
    pub const SHOW: u8 = 0x05;
    /// Client → server: orderly goodbye.
    pub const CLOSE: u8 = 0x06;
    /// Server → client: handshake accepted.
    pub const HELLO_OK: u8 = 0x81;
    /// Server → client: result frame (schema + rows + telemetry tail).
    pub const ANSWER: u8 = 0x82;
    /// Server → client: prepare succeeded (canonical SQL).
    pub const PREPARE_OK: u8 = 0x83;
    /// Server → client: profile mutation applied (new epoch).
    pub const MUTATE_OK: u8 = 0x84;
    /// Server → client: typed error (code + message + detail words).
    pub const ERROR: u8 = 0x85;
    /// Server → client: goodbye acknowledged; the server closes after it.
    pub const BYE: u8 = 0x86;
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The handshake: must be the first frame on a connection.
    Hello {
        /// The protocol version the client speaks.
        version: u16,
        /// The user this session acts as (non-empty).
        user: String,
    },
    /// Run one personalized query. `options`/`rewrite` override the
    /// server's session defaults when present.
    Query {
        /// The SQL text.
        sql: String,
        /// Personalization options override.
        options: Option<PersonalizeOptions>,
        /// Rewrite override.
        rewrite: Option<Rewrite>,
    },
    /// Parse + validate without executing; warms the prepared cache.
    Prepare {
        /// The SQL text.
        sql: String,
    },
    /// Mutate this session's profile.
    Mutate(ProfileOp),
    /// Introspection over live telemetry.
    Show(ShowRequest),
    /// Orderly shutdown of this session.
    Close,
}

/// A profile mutation carried by [`Request::Mutate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileOp {
    /// Add (or update) a selection preference.
    AddSelection {
        /// Table the preference selects on.
        table: String,
        /// Column within the table.
        column: String,
        /// The preferred value.
        value: Value,
        /// Degree of interest in `[0, 1]`.
        doi: f64,
    },
    /// Add (or update) a directed join preference.
    AddJoin {
        /// Join source table.
        from_table: String,
        /// Join source column.
        from_column: String,
        /// Join target table.
        to_table: String,
        /// Join target column.
        to_column: String,
        /// Degree of interest in `[0, 1]`.
        doi: f64,
    },
    /// Remove the profile entirely (queries run unpersonalized after).
    Remove,
}

/// Which introspection table a [`Request::Show`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowRequest {
    /// `SHOW METRICS`.
    Metrics,
    /// `SHOW QUERIES [LIMIT n]`.
    Queries {
        /// Bound on returned entries (server default when `None`).
        limit: Option<u64>,
    },
    /// `SHOW CACHES`.
    Caches,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The version the server speaks (equals the client's on success).
        version: u16,
        /// Human-readable server identification.
        server: String,
    },
    /// A result frame: schema + rows + the [`AnswerMeta`] telemetry tail.
    Answer(Answer),
    /// Prepare succeeded.
    PrepareOk {
        /// The canonical SQL text (the plan-cache key component).
        canonical: String,
    },
    /// Profile mutation applied.
    MutateOk {
        /// The user's invalidation epoch after the mutation (0 = no
        /// profile stored).
        epoch: u64,
        /// For [`ProfileOp::Remove`]: whether a profile was stored.
        /// Always `true` for adds.
        removed: bool,
    },
    /// A typed error. The request it answers failed; the session survives
    /// unless the error is a protocol violation.
    Error(WireError),
    /// Goodbye acknowledged.
    Bye,
}

/// The wire form of an [`Error`]: a stable numeric code, a rendered
/// message, and two code-specific detail words (for
/// [`ErrorCode::Overloaded`]: queries in flight, admission limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The [`ErrorCode`] as `u16` (kept raw so unknown codes from newer
    /// peers survive transit).
    pub code: u16,
    /// The rendered error message.
    pub message: String,
    /// Code-specific numeric details (zeroed when unused).
    pub detail: [u64; 2],
}

impl WireError {
    /// Encode a service error for the wire.
    pub fn from_error(e: &Error) -> WireError {
        let detail = match e {
            Error::Overloaded { in_flight, max } => [*in_flight as u64, *max as u64],
            Error::BudgetExceeded(b) => [b.rows_scanned, b.mem_bytes],
            _ => [0, 0],
        };
        WireError { code: e.code().as_u16(), message: e.to_string(), detail }
    }

    /// Build a protocol-violation error (handshake failures, malformed
    /// frames) without going through a service [`Error`] first.
    pub fn protocol(message: impl Into<String>) -> WireError {
        WireError { code: ErrorCode::Protocol.as_u16(), message: message.into(), detail: [0, 0] }
    }

    /// Decode back into a service [`Error`], preserving the code — and
    /// thus `kind()` — exactly. Codes with enough structure on the wire
    /// reconstruct the real variant ([`Error::Overloaded`]); everything
    /// else becomes [`Error::Remote`]. Codes this build does not know
    /// degrade to [`ErrorCode::Internal`] with the original code noted.
    pub fn into_error(self) -> Error {
        match ErrorCode::from_u16(self.code) {
            Some(ErrorCode::Overloaded) => Error::Overloaded {
                in_flight: self.detail[0] as usize,
                max: self.detail[1] as usize,
            },
            Some(code) => Error::Remote { code, message: self.message },
            None => Error::Remote {
                code: ErrorCode::Internal,
                message: format!("unknown wire error code {}: {}", self.code, self.message),
            },
        }
    }
}

// ---- scalar encodings ------------------------------------------------------

fn encode_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => {
            w.u8(0);
        }
        Value::Bool(b) => {
            w.u8(1).bool(*b);
        }
        Value::Int(i) => {
            w.u8(2).i64(*i);
        }
        Value::Float(f) => {
            w.u8(3).f64(*f);
        }
        Value::Str(s) => {
            w.u8(4).str(s);
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8("value tag")? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(r.bool("bool value")?)),
        2 => Ok(Value::Int(r.i64("int value")?)),
        3 => Ok(Value::Float(r.f64("float value")?)),
        4 => Ok(Value::Str(r.str("str value")?)),
        tag => Err(DecodeError::BadTag { what: "value", tag: tag as u64 }),
    }
}

pub(crate) fn encode_profile_op(w: &mut Writer, op: &ProfileOp) {
    match op {
        ProfileOp::AddSelection { table, column, value, doi } => {
            w.u8(0).str(table).str(column);
            encode_value(w, value);
            w.f64(*doi);
        }
        ProfileOp::AddJoin { from_table, from_column, to_table, to_column, doi } => {
            w.u8(1).str(from_table).str(from_column).str(to_table).str(to_column).f64(*doi);
        }
        ProfileOp::Remove => {
            w.u8(2);
        }
    }
}

pub(crate) fn decode_profile_op(r: &mut Reader<'_>) -> Result<ProfileOp> {
    Ok(match r.u8("profile op tag")? {
        0 => ProfileOp::AddSelection {
            table: r.str("table")?,
            column: r.str("column")?,
            value: decode_value(r)?,
            doi: r.f64("doi")?,
        },
        1 => ProfileOp::AddJoin {
            from_table: r.str("from table")?,
            from_column: r.str("from column")?,
            to_table: r.str("to table")?,
            to_column: r.str("to column")?,
            doi: r.f64("doi")?,
        },
        2 => ProfileOp::Remove,
        tag => return Err(DecodeError::BadTag { what: "profile op", tag: tag as u64 }),
    })
}

fn rewrite_to_u8(rw: Rewrite) -> u8 {
    match rw {
        Rewrite::Original => 0,
        Rewrite::Sq => 1,
        Rewrite::Mq => 2,
        Rewrite::NativeRank => 3,
        Rewrite::Auto => 4,
        // `Rewrite` is #[non_exhaustive]; a new variant must be assigned a
        // wire discriminant here before it can cross the wire.
        _ => unreachable!("Rewrite variant without a wire discriminant"),
    }
}

fn rewrite_from_u8(tag: u8) -> Result<Rewrite> {
    match tag {
        0 => Ok(Rewrite::Original),
        1 => Ok(Rewrite::Sq),
        2 => Ok(Rewrite::Mq),
        3 => Ok(Rewrite::NativeRank),
        4 => Ok(Rewrite::Auto),
        tag => Err(DecodeError::BadTag { what: "rewrite", tag: tag as u64 }),
    }
}

fn degrade_to_u8(d: DegradeLevel) -> u8 {
    match d {
        DegradeLevel::None => 0,
        DegradeLevel::ReducedK => 1,
        DegradeLevel::MandatoryOnly => 2,
        DegradeLevel::Unpersonalized => 3,
        // Appended after the original four: wire discriminants are
        // append-only, so the new rung cannot renumber its neighbours.
        DegradeLevel::NativeReducedK => 4,
    }
}

fn degrade_from_u8(tag: u8) -> Result<DegradeLevel> {
    match tag {
        0 => Ok(DegradeLevel::None),
        1 => Ok(DegradeLevel::ReducedK),
        2 => Ok(DegradeLevel::MandatoryOnly),
        3 => Ok(DegradeLevel::Unpersonalized),
        4 => Ok(DegradeLevel::NativeReducedK),
        tag => Err(DecodeError::BadTag { what: "degrade level", tag: tag as u64 }),
    }
}

fn cache_to_u8(c: CacheOutcome) -> u8 {
    match c {
        CacheOutcome::Hit => 0,
        CacheOutcome::Stale => 1,
        CacheOutcome::Miss => 2,
        CacheOutcome::Bypass => 3,
    }
}

fn cache_from_u8(tag: u8) -> Result<CacheOutcome> {
    match tag {
        0 => Ok(CacheOutcome::Hit),
        1 => Ok(CacheOutcome::Stale),
        2 => Ok(CacheOutcome::Miss),
        3 => Ok(CacheOutcome::Bypass),
        tag => Err(DecodeError::BadTag { what: "cache outcome", tag: tag as u64 }),
    }
}

fn encode_options(w: &mut Writer, o: &PersonalizeOptions) {
    match o.criterion {
        InterestCriterion::TopK(k) => {
            w.u8(0).u64(k as u64);
        }
        InterestCriterion::MinDegree(d) => {
            w.u8(1).f64(d);
        }
        InterestCriterion::DisjunctionAbove(d) => {
            w.u8(2).f64(d);
        }
        InterestCriterion::ConjunctionAbove(d) => {
            w.u8(3).f64(d);
        }
    }
    match o.mandatory {
        MandatorySpec::None => {
            w.u8(0);
        }
        MandatorySpec::Count(m) => {
            w.u8(1).u64(m as u64);
        }
        MandatorySpec::DegreeAtLeast(d) => {
            w.u8(2).f64(d);
        }
    }
    match o.matching {
        MatchSpec::AtLeast(l) => {
            w.u8(0).u64(l as u64);
        }
        MatchSpec::MinDegree(d) => {
            w.u8(1).f64(d);
        }
    }
    w.bool(o.rank);
}

fn decode_options(r: &mut Reader<'_>) -> Result<PersonalizeOptions> {
    let criterion = match r.u8("criterion tag")? {
        0 => InterestCriterion::TopK(r.u64("top-k")? as usize),
        1 => InterestCriterion::MinDegree(r.f64("min degree")?),
        2 => InterestCriterion::DisjunctionAbove(r.f64("disjunction threshold")?),
        3 => InterestCriterion::ConjunctionAbove(r.f64("conjunction threshold")?),
        tag => return Err(DecodeError::BadTag { what: "criterion", tag: tag as u64 }),
    };
    let mandatory = match r.u8("mandatory tag")? {
        0 => MandatorySpec::None,
        1 => MandatorySpec::Count(r.u64("mandatory count")? as usize),
        2 => MandatorySpec::DegreeAtLeast(r.f64("mandatory degree")?),
        tag => return Err(DecodeError::BadTag { what: "mandatory spec", tag: tag as u64 }),
    };
    let matching = match r.u8("matching tag")? {
        0 => MatchSpec::AtLeast(r.u64("at-least-L")? as usize),
        1 => MatchSpec::MinDegree(r.f64("matching degree")?),
        tag => return Err(DecodeError::BadTag { what: "match spec", tag: tag as u64 }),
    };
    let rank = r.bool("rank flag")?;
    let mut opts = PersonalizeOptions::builder()
        .criterion(criterion)
        .mandatory(mandatory)
        .matching(matching)
        .build();
    opts.rank = rank;
    Ok(opts)
}

/// Ceiling on result-set columns (sanity bound, not a protocol limit).
const MAX_COLUMNS: usize = 4096;

fn encode_answer(w: &mut Writer, a: &Answer) {
    w.u32(a.rows.columns.len() as u32);
    for col in &a.rows.columns {
        w.str(col);
    }
    w.u32(a.rows.rows.len() as u32);
    for row in &a.rows.rows {
        for v in row.iter() {
            encode_value(w, v);
        }
    }
    w.u8(rewrite_to_u8(a.meta.rewrite));
    w.u64(a.meta.k as u64);
    w.u64(a.meta.m as u64);
    w.u8(degrade_to_u8(a.meta.degraded));
    w.u8(cache_to_u8(a.meta.cache));
    w.u64(a.meta.rows_scanned);
}

fn decode_answer(r: &mut Reader<'_>) -> Result<Answer> {
    let ncols = r.u32("column count")? as usize;
    if ncols > MAX_COLUMNS {
        return Err(DecodeError::TooLong { what: "columns", len: ncols, max: MAX_COLUMNS });
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(r.str("column name")?);
    }
    let nrows = r.u32("row count")? as usize;
    // Each value is ≥ 1 byte on the wire, so `remaining` bounds the row
    // count a well-formed payload can carry — reject before allocating.
    if ncols > 0 && nrows > r.remaining() {
        return Err(DecodeError::TooLong { what: "rows", len: nrows, max: r.remaining() });
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(decode_value(r)?);
        }
        rows.push(row);
    }
    let rewrite = rewrite_from_u8(r.u8("rewrite")?)?;
    let k = r.u64("k")? as usize;
    let m = r.u64("m")? as usize;
    let degraded = degrade_from_u8(r.u8("degrade level")?)?;
    let cache = cache_from_u8(r.u8("cache outcome")?)?;
    let rows_scanned = r.u64("rows scanned")?;
    Ok(Answer::new(
        ResultSet { columns, rows },
        AnswerMeta { rewrite, k, m, degraded, cache, rows_scanned },
    ))
}

// ---- messages --------------------------------------------------------------

impl Request {
    /// Encode into `(tag, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = Writer::new();
        let tag = match self {
            Request::Hello { version, user } => {
                w.u16(*version).str(user);
                tag::HELLO
            }
            Request::Query { sql, options, rewrite } => {
                w.str(sql);
                match options {
                    Some(o) => {
                        w.bool(true);
                        encode_options(&mut w, o);
                    }
                    None => {
                        w.bool(false);
                    }
                }
                match rewrite {
                    Some(rw) => {
                        w.bool(true).u8(rewrite_to_u8(*rw));
                    }
                    None => {
                        w.bool(false);
                    }
                }
                tag::QUERY
            }
            Request::Prepare { sql } => {
                w.str(sql);
                tag::PREPARE
            }
            Request::Mutate(op) => {
                encode_profile_op(&mut w, op);
                tag::MUTATE
            }
            Request::Show(show) => {
                match show {
                    ShowRequest::Metrics => {
                        w.u8(0);
                    }
                    ShowRequest::Queries { limit } => {
                        w.u8(1);
                        match limit {
                            Some(n) => w.bool(true).u64(*n),
                            None => w.bool(false),
                        };
                    }
                    ShowRequest::Caches => {
                        w.u8(2);
                    }
                }
                tag::SHOW
            }
            Request::Close => tag::CLOSE,
        };
        (tag, w.into_vec())
    }

    /// Decode from `(tag, payload)`. The whole payload must be consumed.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let req = match tag {
            tag::HELLO => {
                Request::Hello { version: r.u16("protocol version")?, user: r.str("user id")? }
            }
            tag::QUERY => {
                let sql = r.str("sql")?;
                let options =
                    if r.bool("options flag")? { Some(decode_options(&mut r)?) } else { None };
                let rewrite = if r.bool("rewrite flag")? {
                    Some(rewrite_from_u8(r.u8("rewrite")?)?)
                } else {
                    None
                };
                Request::Query { sql, options, rewrite }
            }
            tag::PREPARE => Request::Prepare { sql: r.str("sql")? },
            tag::MUTATE => Request::Mutate(decode_profile_op(&mut r)?),
            tag::SHOW => Request::Show(match r.u8("show tag")? {
                0 => ShowRequest::Metrics,
                1 => ShowRequest::Queries {
                    limit: if r.bool("limit flag")? { Some(r.u64("limit")?) } else { None },
                },
                2 => ShowRequest::Caches,
                tag => return Err(DecodeError::BadTag { what: "show request", tag: tag as u64 }),
            }),
            tag::CLOSE => Request::Close,
            tag => return Err(DecodeError::BadTag { what: "request", tag: tag as u64 }),
        };
        r.expect_end()?;
        Ok(req)
    }
}

impl Response {
    /// Encode into `(tag, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = Writer::new();
        let tag = match self {
            Response::HelloOk { version, server } => {
                w.u16(*version).str(server);
                tag::HELLO_OK
            }
            Response::Answer(answer) => {
                encode_answer(&mut w, answer);
                tag::ANSWER
            }
            Response::PrepareOk { canonical } => {
                w.str(canonical);
                tag::PREPARE_OK
            }
            Response::MutateOk { epoch, removed } => {
                w.u64(*epoch).bool(*removed);
                tag::MUTATE_OK
            }
            Response::Error(e) => {
                w.u16(e.code).str(&e.message).u64(e.detail[0]).u64(e.detail[1]);
                tag::ERROR
            }
            Response::Bye => tag::BYE,
        };
        (tag, w.into_vec())
    }

    /// Decode from `(tag, payload)`. The whole payload must be consumed.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match tag {
            tag::HELLO_OK => Response::HelloOk {
                version: r.u16("protocol version")?,
                server: r.str("server name")?,
            },
            tag::ANSWER => Response::Answer(decode_answer(&mut r)?),
            tag::PREPARE_OK => Response::PrepareOk { canonical: r.str("canonical sql")? },
            tag::MUTATE_OK => {
                Response::MutateOk { epoch: r.u64("epoch")?, removed: r.bool("removed flag")? }
            }
            tag::ERROR => Response::Error(WireError {
                code: r.u16("error code")?,
                message: r.str("error message")?,
                detail: [r.u64("error detail 0")?, r.u64("error detail 1")?],
            }),
            tag::BYE => Response::Bye,
            tag => return Err(DecodeError::BadTag { what: "response", tag: tag as u64 }),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let (tag, payload) = req.encode();
        assert_eq!(Request::decode(tag, &payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let (tag, payload) = resp.encode();
        assert_eq!(Response::decode(tag, &payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello { version: 1, user: "julie".into() });
        round_trip_request(Request::Query {
            sql: "select MV.title from MOVIE MV".into(),
            options: None,
            rewrite: None,
        });
        round_trip_request(Request::Query {
            sql: "select MV.title from MOVIE MV".into(),
            options: Some(PersonalizeOptions::builder().k(3).m(1).l(2).build()),
            rewrite: Some(Rewrite::Sq),
        });
        round_trip_request(Request::Query {
            sql: "q".into(),
            options: Some(
                PersonalizeOptions::builder()
                    .criterion(InterestCriterion::ConjunctionAbove(0.75))
                    .mandatory(MandatorySpec::DegreeAtLeast(0.9))
                    .matching(MatchSpec::MinDegree(0.5))
                    .build()
                    .ranked(),
            ),
            rewrite: Some(Rewrite::Original),
        });
        round_trip_request(Request::Query {
            sql: "q".into(),
            options: None,
            rewrite: Some(Rewrite::NativeRank),
        });
        round_trip_request(Request::Query {
            sql: "q".into(),
            options: None,
            rewrite: Some(Rewrite::Auto),
        });
        round_trip_request(Request::Prepare { sql: "select T.x from T".into() });
        round_trip_request(Request::Mutate(ProfileOp::AddSelection {
            table: "GENRE".into(),
            column: "genre".into(),
            value: Value::Str("comedy".into()),
            doi: 0.9,
        }));
        round_trip_request(Request::Mutate(ProfileOp::AddJoin {
            from_table: "MOVIE".into(),
            from_column: "mid".into(),
            to_table: "GENRE".into(),
            to_column: "mid".into(),
            doi: 0.8,
        }));
        round_trip_request(Request::Mutate(ProfileOp::Remove));
        round_trip_request(Request::Show(ShowRequest::Metrics));
        round_trip_request(Request::Show(ShowRequest::Queries { limit: Some(7) }));
        round_trip_request(Request::Show(ShowRequest::Queries { limit: None }));
        round_trip_request(Request::Show(ShowRequest::Caches));
        round_trip_request(Request::Close);
    }

    #[test]
    fn answers_round_trip_with_every_value_type() {
        let answer = Answer::new(
            ResultSet {
                columns: vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
                rows: vec![
                    vec![
                        Value::Null,
                        Value::Bool(true),
                        Value::Int(-7),
                        Value::Float(2.5),
                        Value::Str("x".into()),
                    ],
                    vec![
                        Value::Int(0),
                        Value::Bool(false),
                        Value::Null,
                        Value::Float(f64::MIN),
                        Value::Str(String::new()),
                    ],
                ],
            },
            AnswerMeta {
                rewrite: Rewrite::Mq,
                k: 3,
                m: 1,
                degraded: DegradeLevel::ReducedK,
                cache: CacheOutcome::Stale,
                rows_scanned: 12345,
            },
        );
        round_trip_response(Response::Answer(answer));
    }

    #[test]
    fn native_rank_meta_round_trips() {
        let answer = Answer::new(
            ResultSet { columns: vec!["t".into()], rows: vec![vec![Value::Str("x".into())]] },
            AnswerMeta {
                rewrite: Rewrite::NativeRank,
                k: 4,
                m: 1,
                degraded: DegradeLevel::NativeReducedK,
                cache: CacheOutcome::Miss,
                rows_scanned: 9,
            },
        );
        round_trip_response(Response::Answer(answer));
    }

    #[test]
    fn empty_answers_round_trip() {
        let answer = Answer::new(
            ResultSet { columns: vec![], rows: vec![] },
            AnswerMeta {
                rewrite: Rewrite::Original,
                k: 0,
                m: 0,
                degraded: DegradeLevel::None,
                cache: CacheOutcome::Bypass,
                rows_scanned: 0,
            },
        );
        round_trip_response(Response::Answer(answer));
    }

    #[test]
    fn control_responses_round_trip() {
        round_trip_response(Response::HelloOk { version: 1, server: "pqp-server/0.1".into() });
        round_trip_response(Response::PrepareOk { canonical: "SELECT x FROM T".into() });
        round_trip_response(Response::MutateOk { epoch: 42, removed: true });
        round_trip_response(Response::Bye);
        round_trip_response(Response::Error(WireError {
            code: 6,
            message: "overloaded".into(),
            detail: [8, 8],
        }));
    }

    #[test]
    fn every_error_code_round_trips_to_the_same_kind() {
        // The satellite contract: encode → decode preserves kind() for
        // every assigned code, and Overloaded reconstructs structurally.
        let representatives = vec![
            pqp_sql::parse_query("select from").map(|_| ()).map_err(Error::from).unwrap_err(),
            Error::Personalize(pqp_core::PrefError::InvalidDegree(7.0)),
            Error::Engine(pqp_engine::EngineError::Exec("x".into())),
            Error::Storage(pqp_storage::StorageError::UnknownTable("T".into())),
            Error::BudgetExceeded(
                pqp_obs::QueryCtx::unlimited().exceeded(pqp_obs::BudgetReason::Deadline),
            ),
            Error::Overloaded { in_flight: 9, max: 4 },
            Error::Internal("boom".into()),
            Error::Io("reset".into()),
            Error::Protocol("bad frame".into()),
            Error::Unavailable("not the leader (term 4)".into()),
        ];
        let mut covered = std::collections::HashSet::new();
        for original in representatives {
            let wire = WireError::from_error(&original);
            let (tag, payload) = Response::Error(wire).encode();
            let Response::Error(decoded) = Response::decode(tag, &payload).unwrap() else {
                panic!("error frame decoded as non-error");
            };
            let back = decoded.into_error();
            assert_eq!(back.kind(), original.kind(), "kind survives the wire");
            assert_eq!(back.code(), original.code(), "code survives the wire");
            covered.insert(original.code().as_u16());
        }
        for code in ErrorCode::ALL {
            assert!(covered.contains(&code.as_u16()), "code {code} untested");
        }
    }

    #[test]
    fn overloaded_reconstructs_structurally() {
        let original = Error::Overloaded { in_flight: 31, max: 16 };
        let back = WireError::from_error(&original).into_error();
        assert_eq!(back, original);
    }

    #[test]
    fn unknown_error_codes_degrade_to_internal() {
        let wire = WireError { code: 60000, message: "from the future".into(), detail: [0, 0] };
        let e = wire.into_error();
        assert_eq!(e.kind(), "internal");
        assert!(e.to_string().contains("60000"));
    }

    #[test]
    fn malformed_payloads_decode_to_typed_errors() {
        // Unknown request tag.
        assert!(matches!(
            Request::decode(0x7F, &[]),
            Err(DecodeError::BadTag { what: "request", .. })
        ));
        // Truncated handshake.
        assert!(matches!(Request::decode(tag::HELLO, &[0x00]), Err(DecodeError::Truncated { .. })));
        // Trailing garbage after a well-formed message.
        let (tag, mut payload) = Request::Close.encode();
        payload.push(0xAA);
        assert!(matches!(Request::decode(tag, &payload), Err(DecodeError::Trailing { .. })));
        // Absurd row count (longer than the payload can carry).
        let mut w = Writer::new();
        w.u32(1).str("c").u32(u32::MAX);
        assert!(matches!(
            Response::decode(tag::ANSWER, &w.into_vec()),
            Err(DecodeError::TooLong { what: "rows", .. })
        ));
        // Bad value tag inside a row.
        let mut w = Writer::new();
        w.u32(1).str("c").u32(1).u8(99);
        assert!(matches!(
            Response::decode(tag::ANSWER, &w.into_vec()),
            Err(DecodeError::BadTag { what: "value", .. })
        ));
    }
}
