//! Degrees of interest and the combination algebra of §3.
//!
//! A degree of interest is a real in `[0, 1]`: 0 means no interest (never
//! stored), 1 means "must have". Three combination functions build degrees
//! for composite preferences:
//!
//! - **transitive** (path composition): must satisfy `f(D) ≤ min(D)`;
//!   the paper chooses the product `d₁·d₂·…·dₙ`;
//! - **conjunction**: must satisfy `f(D) ≥ max(D)`; the paper chooses
//!   `1 − (1−d₁)(1−d₂)…(1−dₙ)`;
//! - **disjunction**: must satisfy `min(D) ≤ f(D) ≤ max(D)`; the paper
//!   chooses the average.
//!
//! The functions are behind the [`Combinator`] trait so ablation experiments
//! can swap alternatives (e.g. min-transitive) and observe where the axioms
//! or the ranking behaviour break.

use crate::error::{PrefError, Result};
use std::fmt;

/// A validated degree of interest in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Doi(f64);

impl Doi {
    /// The "must-have" degree.
    pub const ONE: Doi = Doi(1.0);
    /// The zero degree (lack of interest; never stored in profiles).
    pub const ZERO: Doi = Doi(0.0);

    /// Validate and wrap a raw degree.
    pub fn new(d: f64) -> Result<Doi> {
        if d.is_finite() && (0.0..=1.0).contains(&d) {
            Ok(Doi(d))
        } else {
            Err(PrefError::InvalidDegree(d))
        }
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl TryFrom<f64> for Doi {
    type Error = PrefError;
    fn try_from(d: f64) -> Result<Doi> {
        Doi::new(d)
    }
}

impl From<Doi> for f64 {
    fn from(d: Doi) -> f64 {
        d.0
    }
}

impl Eq for Doi {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Doi {
    fn cmp(&self, other: &Doi) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Doi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A family of combination functions for transitive, conjunctive and
/// disjunctive preferences.
pub trait Combinator {
    /// Degree of a transitive preference composed of `degrees`
    /// (in path order). Must satisfy `f(D) ≤ min(D)` to be admissible.
    fn transitive(&self, degrees: &[Doi]) -> Doi;
    /// Degree of the conjunction of preferences. Must satisfy `f(D) ≥ max(D)`.
    fn conjunction(&self, degrees: &[Doi]) -> Doi;
    /// Degree of the disjunction. Must satisfy `min(D) ≤ f(D) ≤ max(D)`.
    fn disjunction(&self, degrees: &[Doi]) -> Doi;
}

/// The paper's choices: product / `1 − ∏(1−d)` / average.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaperCombinator;

impl Combinator for PaperCombinator {
    fn transitive(&self, degrees: &[Doi]) -> Doi {
        Doi(degrees.iter().map(|d| d.0).product())
    }

    fn conjunction(&self, degrees: &[Doi]) -> Doi {
        Doi(1.0 - degrees.iter().map(|d| 1.0 - d.0).product::<f64>())
    }

    fn disjunction(&self, degrees: &[Doi]) -> Doi {
        if degrees.is_empty() {
            return Doi::ZERO;
        }
        Doi(degrees.iter().map(|d| d.0).sum::<f64>() / degrees.len() as f64)
    }
}

/// An ablation combinator: min-transitive, max-conjunction, max-disjunction.
///
/// It satisfies the paper's *admissibility* conditions but is degenerate:
/// path length no longer penalizes transitive preferences and conjunction no
/// longer rewards satisfying more preferences. The ablation benches quantify
/// the effect on ranking quality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinMaxCombinator;

impl Combinator for MinMaxCombinator {
    fn transitive(&self, degrees: &[Doi]) -> Doi {
        degrees.iter().copied().min().unwrap_or(Doi::ONE)
    }

    fn conjunction(&self, degrees: &[Doi]) -> Doi {
        degrees.iter().copied().max().unwrap_or(Doi::ZERO)
    }

    fn disjunction(&self, degrees: &[Doi]) -> Doi {
        degrees.iter().copied().max().unwrap_or(Doi::ZERO)
    }
}

/// Paper transitive function (free-function convenience).
pub fn transitive_degree(degrees: &[Doi]) -> Doi {
    PaperCombinator.transitive(degrees)
}

/// Paper conjunction function (free-function convenience).
pub fn conjunction_degree(degrees: &[Doi]) -> Doi {
    PaperCombinator.conjunction(degrees)
}

/// Paper disjunction function (free-function convenience).
pub fn disjunction_degree(degrees: &[Doi]) -> Doi {
    PaperCombinator.disjunction(degrees)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: f64) -> Doi {
        Doi::new(x).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Doi::new(0.0).is_ok());
        assert!(Doi::new(1.0).is_ok());
        assert!(Doi::new(-0.1).is_err());
        assert!(Doi::new(1.1).is_err());
        assert!(Doi::new(f64::NAN).is_err());
        assert!(Doi::new(f64::INFINITY).is_err());
    }

    #[test]
    fn paper_worked_examples() {
        // §3.2: 0.8 * 1 * 0.9 = 0.72 (Kidman transitive selection).
        let t = transitive_degree(&[d(0.8), d(1.0), d(0.9)]);
        assert!((t.value() - 0.72).abs() < 1e-12);
        // §3.3: 1 - (1 - 0.7)(1 - 0.81) = 0.943 (comedy ∧ Allen).
        let c = conjunction_degree(&[d(0.7), d(0.81)]);
        assert!((c.value() - 0.943).abs() < 1e-12);
        // §3.3: (0.7 + 0.81)/2 = 0.755 (comedy ∨ Allen).
        let o = disjunction_degree(&[d(0.7), d(0.81)]);
        assert!((o.value() - 0.755).abs() < 1e-12);
    }

    #[test]
    fn transitive_below_min() {
        let ds = [d(0.9), d(0.5), d(0.8)];
        let min = ds.iter().copied().min().unwrap();
        assert!(transitive_degree(&ds) <= min);
    }

    #[test]
    fn conjunction_above_max() {
        let ds = [d(0.3), d(0.6)];
        let max = ds.iter().copied().max().unwrap();
        assert!(conjunction_degree(&ds) >= max);
    }

    #[test]
    fn disjunction_between_min_and_max() {
        let ds = [d(0.3), d(0.6), d(0.9)];
        let o = disjunction_degree(&ds);
        assert!(o >= *ds.iter().min().unwrap());
        assert!(o <= *ds.iter().max().unwrap());
    }

    #[test]
    fn minmax_combinator_is_admissible() {
        let ds = [d(0.3), d(0.6)];
        let c = MinMaxCombinator;
        assert!(c.transitive(&ds) <= d(0.3));
        assert!(c.conjunction(&ds) >= d(0.6));
        let o = c.disjunction(&ds);
        assert!(o >= d(0.3) && o <= d(0.6));
    }

    #[test]
    fn empty_combinations() {
        assert_eq!(transitive_degree(&[]), Doi::ONE);
        assert_eq!(conjunction_degree(&[]), Doi::ZERO);
        assert_eq!(disjunction_degree(&[]), Doi::ZERO);
    }

    #[test]
    fn raw_value_roundtrip_and_validation() {
        // Degrees cross serialization boundaries as raw f64s; the TryFrom
        // side must re-validate.
        let raw: f64 = d(0.75).into();
        assert_eq!(raw, 0.75);
        assert_eq!(Doi::try_from(raw).unwrap(), d(0.75));
        assert!(Doi::try_from(1.5).is_err());
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![d(0.5), d(0.1), d(1.0)];
        v.sort();
        assert_eq!(v, vec![d(0.1), d(0.5), d(1.0)]);
    }
}
