//! The personalization graph (§3.1) and its access backends.
//!
//! The graph extends the schema graph with the user's degrees of interest:
//! join edges (attribute → attribute, directed, labelled with a degree and a
//! to-one/to-many cardinality derived from the schema) and selection edges
//! (attribute → value, labelled with a degree).
//!
//! Two backends implement [`GraphAccess`]:
//!
//! - [`InMemoryGraph`]: adjacency lists held in memory, built once from a
//!   [`Profile`];
//! - [`StoredProfileGraph`]: preferences stored in database tables and
//!   fetched with SQL on every adjacency lookup — the setup of the paper's
//!   prototype ("user profiles are stored in a separate table"), whose
//!   per-access cost explains the shape of Figure 6.

use crate::doi::Doi;
use crate::error::Result;
use crate::pref::{AtomicPreference, AttrRef};
use crate::profile::Profile;
use pqp_engine::Database;
use pqp_storage::{Cardinality, Catalog, ColumnDef, DataType, TableSchema, Value};
use std::cell::Cell;
use std::collections::HashMap;

/// A join edge of the personalization graph, labelled with a degree of
/// interest and the cardinality of following it (into `to`).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    pub from: AttrRef,
    pub to: AttrRef,
    pub doi: Doi,
    pub cardinality: Cardinality,
}

/// A selection edge of the personalization graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionEdge {
    pub attr: AttrRef,
    pub value: Value,
    pub doi: Doi,
}

/// Read access to a user's personalization graph, as required by the
/// preference-selection algorithm. Adjacency lists must be returned in
/// **decreasing degree of interest** (the algorithm's expansion pruning
/// relies on it).
pub trait GraphAccess {
    /// Join edges leaving (any attribute of) `table`.
    fn joins_from(&self, table: &str) -> Vec<JoinEdge>;
    /// Selection edges on (attributes of) `table`.
    fn selections_of(&self, table: &str) -> Vec<SelectionEdge>;
    /// Number of adjacency fetches performed so far (a proxy for the
    /// prototype's "database accesses"; used by the Figure 6 experiment).
    fn access_count(&self) -> usize;
    /// Reset the access counter.
    fn reset_access_count(&self);
}

/// In-memory personalization graph.
pub struct InMemoryGraph {
    joins: HashMap<String, Vec<JoinEdge>>,
    selections: HashMap<String, Vec<SelectionEdge>>,
    accesses: Cell<usize>,
}

impl InMemoryGraph {
    /// Build the graph for a profile over a schema catalog.
    ///
    /// Join-edge cardinalities come from the catalog: following an edge into
    /// a table on a key column is to-one, otherwise to-many.
    pub fn build(profile: &Profile, catalog: &Catalog) -> Result<InMemoryGraph> {
        profile.validate(catalog)?;
        let mut joins: HashMap<String, Vec<JoinEdge>> = HashMap::new();
        let mut selections: HashMap<String, Vec<SelectionEdge>> = HashMap::new();
        for p in profile.preferences() {
            match p {
                AtomicPreference::Join { from, to, doi } => {
                    let cardinality = catalog.join_cardinality(&to.table, &to.column)?;
                    joins.entry(from.table.to_ascii_uppercase()).or_default().push(JoinEdge {
                        from: from.clone(),
                        to: to.clone(),
                        doi: *doi,
                        cardinality,
                    });
                }
                AtomicPreference::Selection { attr, value, doi } => {
                    selections.entry(attr.table.to_ascii_uppercase()).or_default().push(
                        SelectionEdge { attr: attr.clone(), value: value.clone(), doi: *doi },
                    );
                }
            }
        }
        for v in joins.values_mut() {
            v.sort_by_key(|e| std::cmp::Reverse(e.doi));
        }
        for v in selections.values_mut() {
            v.sort_by_key(|e| std::cmp::Reverse(e.doi));
        }
        Ok(InMemoryGraph { joins, selections, accesses: Cell::new(0) })
    }
}

impl GraphAccess for InMemoryGraph {
    fn joins_from(&self, table: &str) -> Vec<JoinEdge> {
        self.accesses.set(self.accesses.get() + 1);
        self.joins.get(&table.to_ascii_uppercase()).cloned().unwrap_or_default()
    }

    fn selections_of(&self, table: &str) -> Vec<SelectionEdge> {
        self.accesses.set(self.accesses.get() + 1);
        self.selections.get(&table.to_ascii_uppercase()).cloned().unwrap_or_default()
    }

    fn access_count(&self) -> usize {
        self.accesses.get()
    }

    fn reset_access_count(&self) {
        self.accesses.set(0);
    }
}

/// Names of the profile tables created by [`StoredProfileGraph::install`].
pub const PROFILE_SELECTIONS_TABLE: &str = "PQP_PROFILE_SELECTIONS";
/// See [`PROFILE_SELECTIONS_TABLE`].
pub const PROFILE_JOINS_TABLE: &str = "PQP_PROFILE_JOINS";

/// A personalization graph whose adjacency lists live in database tables and
/// are fetched with SQL queries — one query per adjacency lookup, exactly as
/// in the paper's prototype.
pub struct StoredProfileGraph<'a> {
    db: &'a Database,
    user: String,
    accesses: Cell<usize>,
    /// Simulated per-access latency (see [`Self::with_access_penalty`]).
    penalty: std::time::Duration,
}

impl<'a> StoredProfileGraph<'a> {
    /// Create the profile tables in a database (idempotent: existing tables
    /// are kept).
    pub fn install(db: &mut Database) -> Result<()> {
        let catalog = db.catalog_mut();
        if !catalog.contains(PROFILE_SELECTIONS_TABLE) {
            catalog.create_table(TableSchema::new(
                PROFILE_SELECTIONS_TABLE,
                vec![
                    ColumnDef::new("user_id", DataType::Str),
                    ColumnDef::new("tbl", DataType::Str),
                    ColumnDef::new("col", DataType::Str),
                    ColumnDef::new("val", DataType::Str),
                    ColumnDef::new("doi", DataType::Float),
                ],
            ))?;
            // Adjacency lookups filter on the owning table name.
            catalog.table(PROFILE_SELECTIONS_TABLE)?.write().create_index("tbl")?;
        }
        if !catalog.contains(PROFILE_JOINS_TABLE) {
            catalog.create_table(TableSchema::new(
                PROFILE_JOINS_TABLE,
                vec![
                    ColumnDef::new("user_id", DataType::Str),
                    ColumnDef::new("from_tbl", DataType::Str),
                    ColumnDef::new("from_col", DataType::Str),
                    ColumnDef::new("to_tbl", DataType::Str),
                    ColumnDef::new("to_col", DataType::Str),
                    ColumnDef::new("doi", DataType::Float),
                    ColumnDef::new("to_one", DataType::Bool),
                ],
            ))?;
            catalog.table(PROFILE_JOINS_TABLE)?.write().create_index("from_tbl")?;
        }
        Ok(())
    }

    /// Store a profile's preferences into the profile tables.
    ///
    /// Selection values are stored in their SQL literal form (the store is a
    /// string-typed side table, as in the prototype).
    pub fn store(db: &mut Database, profile: &Profile) -> Result<()> {
        Self::install(db)?;
        profile.validate(db.catalog())?;
        let sels = db.catalog().table(PROFILE_SELECTIONS_TABLE)?;
        let joins = db.catalog().table(PROFILE_JOINS_TABLE)?;
        // Storing is an upsert of the whole profile: clear the user's
        // previous rows, or a refresh would duplicate every preference.
        for table in [&sels, &joins] {
            let mut t = table.write();
            let doomed: Vec<_> = t
                .iter()
                .filter_map(|(id, row)| match row {
                    Ok(r) if r[0].as_str() == Some(profile.user.as_str()) => Some(id),
                    _ => None,
                })
                .collect();
            for id in doomed {
                t.delete(id)?;
            }
        }
        for p in profile.preferences() {
            match p {
                AtomicPreference::Selection { attr, value, doi } => {
                    sels.write().insert(vec![
                        Value::str(&profile.user),
                        Value::str(attr.table.to_ascii_uppercase()),
                        Value::str(&attr.column),
                        Value::str(pqp_sql::sql_literal(value)),
                        Value::Float(doi.value()),
                    ])?;
                }
                AtomicPreference::Join { from, to, doi } => {
                    let card = db.catalog().join_cardinality(&to.table, &to.column)?;
                    joins.write().insert(vec![
                        Value::str(&profile.user),
                        Value::str(from.table.to_ascii_uppercase()),
                        Value::str(&from.column),
                        Value::str(to.table.to_ascii_uppercase()),
                        Value::str(&to.column),
                        Value::Float(doi.value()),
                        Value::Bool(card == Cardinality::ToOne),
                    ])?;
                }
            }
        }
        Ok(())
    }

    /// Open the stored graph of a user.
    pub fn open(db: &'a Database, user: impl Into<String>) -> StoredProfileGraph<'a> {
        StoredProfileGraph {
            db,
            user: user.into(),
            accesses: Cell::new(0),
            penalty: std::time::Duration::ZERO,
        }
    }

    /// Add a simulated latency to every adjacency fetch.
    ///
    /// The paper's prototype fetched adjacency lists from Oracle, paying a
    /// round trip per access; that cost — not the in-memory graph work — is
    /// what shapes its Figure 6 (small profiles touch *more* of the schema
    /// graph per derived preference). An in-process engine answers these
    /// lookups in microseconds, so the Figure 6 experiment offers this
    /// switch to reinstate a realistic per-access cost (busy-wait, so it is
    /// unaffected by timer resolution).
    pub fn with_access_penalty(mut self, penalty: std::time::Duration) -> StoredProfileGraph<'a> {
        self.penalty = penalty;
        self
    }

    fn pay_penalty(&self) {
        if !self.penalty.is_zero() {
            let end = std::time::Instant::now() + self.penalty;
            while std::time::Instant::now() < end {
                std::hint::spin_loop();
            }
        }
    }

    fn parse_literal(text: &str) -> Value {
        pqp_sql::parse_expr(text)
            .ok()
            .and_then(|e| match e {
                pqp_sql::Expr::Literal(v) => Some(v),
                _ => None,
            })
            .unwrap_or_else(|| Value::str(text))
    }
}

impl GraphAccess for StoredProfileGraph<'_> {
    fn joins_from(&self, table: &str) -> Vec<JoinEdge> {
        self.accesses.set(self.accesses.get() + 1);
        self.pay_penalty();
        let sql = format!(
            "select from_tbl, from_col, to_tbl, to_col, doi, to_one \
             from {PROFILE_JOINS_TABLE} \
             where user_id = '{}' and from_tbl = '{}' order by doi desc",
            self.user.replace('\'', "''"),
            table.to_ascii_uppercase()
        );
        let Ok(rs) = self.db.run(&sql) else {
            return Vec::new();
        };
        rs.rows
            .into_iter()
            .filter_map(|r| {
                Some(JoinEdge {
                    from: AttrRef::new(r[0].as_str()?, r[1].as_str()?),
                    to: AttrRef::new(r[2].as_str()?, r[3].as_str()?),
                    doi: Doi::new(r[4].as_f64()?).ok()?,
                    cardinality: if r[5].as_bool()? {
                        Cardinality::ToOne
                    } else {
                        Cardinality::ToMany
                    },
                })
            })
            .collect()
    }

    fn selections_of(&self, table: &str) -> Vec<SelectionEdge> {
        self.accesses.set(self.accesses.get() + 1);
        self.pay_penalty();
        let sql = format!(
            "select tbl, col, val, doi from {PROFILE_SELECTIONS_TABLE} \
             where user_id = '{}' and tbl = '{}' order by doi desc",
            self.user.replace('\'', "''"),
            table.to_ascii_uppercase()
        );
        let Ok(rs) = self.db.run(&sql) else {
            return Vec::new();
        };
        rs.rows
            .into_iter()
            .filter_map(|r| {
                Some(SelectionEdge {
                    attr: AttrRef::new(r[0].as_str()?, r[1].as_str()?),
                    value: Self::parse_literal(r[2].as_str()?),
                    doi: Doi::new(r[3].as_f64()?).ok()?,
                })
            })
            .collect()
    }

    fn access_count(&self) -> usize {
        self.accesses.get()
    }

    fn reset_access_count(&self) {
        self.accesses.set(0);
    }
}

/// Ensure adjacency lists are sorted by decreasing degree (defensive check
/// used by tests and debug assertions).
pub fn is_sorted_desc(dois: impl IntoIterator<Item = Doi>) -> bool {
    let mut prev: Option<Doi> = None;
    for d in dois {
        if let Some(p) = prev {
            if d > p {
                return false;
            }
        }
        prev = Some(d);
    }
    true
}

#[allow(unused)]
fn _assert_object_safe(_: &dyn GraphAccess) {}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_storage::{ColumnDef, DataType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c.create_table(
            TableSchema::new(
                "GENRE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
            )
            .with_foreign_key(&["mid"], "MOVIE", &["mid"]),
        )
        .unwrap();
        c
    }

    fn profile() -> Profile {
        let mut p = Profile::new("julie");
        p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "thriller", 0.7).unwrap();
        p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        p.add_join("GENRE", "mid", "MOVIE", "mid", 1.0).unwrap();
        p
    }

    #[test]
    fn build_and_adjacency() {
        let g = InMemoryGraph::build(&profile(), &catalog()).unwrap();
        let joins = g.joins_from("movie");
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].to.table, "GENRE");
        // GENRE.mid is not a key of GENRE → to-many.
        assert_eq!(joins[0].cardinality, Cardinality::ToMany);
        // MOVIE.mid is the primary key → to-one.
        let back = g.joins_from("GENRE");
        assert_eq!(back[0].cardinality, Cardinality::ToOne);
        let sels = g.selections_of("GENRE");
        assert_eq!(sels.len(), 2);
        assert!(is_sorted_desc(sels.iter().map(|s| s.doi)));
    }

    #[test]
    fn adjacency_sorted_desc() {
        let mut p = profile();
        p.add_selection("GENRE", "genre", "adventure", 0.95).unwrap();
        let g = InMemoryGraph::build(&p, &catalog()).unwrap();
        let sels = g.selections_of("GENRE");
        assert_eq!(sels[0].value, Value::str("adventure"));
        assert!(is_sorted_desc(sels.iter().map(|s| s.doi)));
    }

    #[test]
    fn access_counting() {
        let g = InMemoryGraph::build(&profile(), &catalog()).unwrap();
        g.joins_from("MOVIE");
        g.selections_of("GENRE");
        assert_eq!(g.access_count(), 2);
        g.reset_access_count();
        assert_eq!(g.access_count(), 0);
    }

    #[test]
    fn invalid_profile_rejected() {
        let mut p = Profile::new("x");
        p.add_selection("NOPE", "c", "v", 0.5).unwrap();
        assert!(InMemoryGraph::build(&p, &catalog()).is_err());
    }

    #[test]
    fn stored_graph_roundtrip() {
        let mut db = Database::new(catalog());
        StoredProfileGraph::store(&mut db, &profile()).unwrap();
        let g = StoredProfileGraph::open(&db, "julie");
        let sels = g.selections_of("GENRE");
        assert_eq!(sels.len(), 2);
        assert_eq!(sels[0].value, Value::str("comedy"));
        assert_eq!(sels[0].doi.value(), 0.9);
        assert!(is_sorted_desc(sels.iter().map(|s| s.doi)));
        let joins = g.joins_from("MOVIE");
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].cardinality, Cardinality::ToMany);
        assert!(g.access_count() >= 2);
        // Unknown user sees an empty graph.
        let other = StoredProfileGraph::open(&db, "rob");
        assert!(other.selections_of("GENRE").is_empty());
    }

    #[test]
    fn re_storing_a_profile_is_an_upsert() {
        let mut db = Database::new(catalog());
        StoredProfileGraph::store(&mut db, &profile()).unwrap();
        // Refresh with an updated degree: no duplicates, new degree wins.
        let mut updated = profile();
        updated.add_selection("GENRE", "genre", "comedy", 0.4).unwrap();
        StoredProfileGraph::store(&mut db, &updated).unwrap();
        let g = StoredProfileGraph::open(&db, "julie");
        let sels = g.selections_of("GENRE");
        assert_eq!(sels.len(), 2, "no duplicated rows after re-store");
        let comedy = sels.iter().find(|s| s.value == Value::str("comedy")).unwrap();
        assert_eq!(comedy.doi.value(), 0.4);
        // Other users' rows untouched.
        let mut other = Profile::new("rob");
        other.add_selection("GENRE", "genre", "sci-fi", 0.9).unwrap();
        StoredProfileGraph::store(&mut db, &other).unwrap();
        StoredProfileGraph::store(&mut db, &updated).unwrap();
        let rob = StoredProfileGraph::open(&db, "rob");
        assert_eq!(rob.selections_of("GENRE").len(), 1);
    }

    #[test]
    fn access_penalty_slows_fetches() {
        let mut db = Database::new(catalog());
        StoredProfileGraph::store(&mut db, &profile()).unwrap();
        let slow = StoredProfileGraph::open(&db, "julie")
            .with_access_penalty(std::time::Duration::from_millis(2));
        let start = std::time::Instant::now();
        slow.selections_of("GENRE");
        slow.joins_from("MOVIE");
        assert!(start.elapsed() >= std::time::Duration::from_millis(4));
        assert_eq!(slow.access_count(), 2);
    }

    #[test]
    fn stored_graph_quoting() {
        let mut db = Database::new(catalog());
        let mut p = Profile::new("o'neil");
        p.add_selection("GENRE", "genre", "sci'fi", 0.5).unwrap();
        StoredProfileGraph::store(&mut db, &p).unwrap();
        let g = StoredProfileGraph::open(&db, "o'neil");
        let sels = g.selections_of("GENRE");
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].value, Value::str("sci'fi"));
    }
}
