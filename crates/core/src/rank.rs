//! Result ranking helpers and top-N delivery.
//!
//! The MQ rewrite already ranks inside the database via the
//! `DEGREE_OF_CONJUNCTION` aggregate; this module offers the client-side
//! counterparts: estimating the degree of interest of a combination of
//! satisfied preferences (§3.3) and delivering only the top-N results (the
//! paper's future-work item). Top-N delivery routes through the planner's
//! per-query strategy choice ([`crate::strategy::choose`]) — a ranked
//! `LIMIT n` is exactly where the native rank operator's early termination
//! pays off, but the cost model decides per query.

use crate::doi::{conjunction_degree, Doi};
use crate::error::Result;
use crate::personalize::Personalized;
use crate::strategy::StrategyChoice;
use pqp_engine::Database;
use pqp_sql::ast::Query;

/// Estimated degree of interest of a result satisfying the given
/// preferences: the conjunction combination `1 − ∏(1 − dᵢ)`.
pub fn estimate_interest(satisfied: &[Doi]) -> Doi {
    conjunction_degree(satisfied)
}

/// The cheapest execution delivering the `n` most interesting results:
/// ranking is forced on, then the strategy layer picks between the ranked
/// MQ rewrite and the native rank operator by estimated cost.
pub fn top_n(db: &Database, p: &Personalized, n: u64) -> Result<StrategyChoice> {
    let mut ranked = p.clone();
    ranked.rank = true;
    crate::strategy::choose(db, &ranked, Some(n))
}

/// The ranked MQ query truncated to the `n` most interesting results.
///
/// This is the SQL-only form, kept for callers that need a query string
/// (wire clients, logs); [`top_n`] is the planner-routed entry point that
/// may pick the native rank operator instead.
pub fn top_n_query(p: &Personalized, n: u64) -> Result<Query> {
    let mut ranked = p.clone();
    ranked.rank = true;
    let mut q = ranked.mq()?;
    q.limit = Some(n);
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: f64) -> Doi {
        Doi::new(x).unwrap()
    }

    #[test]
    fn interest_is_monotone_in_satisfied_set() {
        // Satisfying strictly more preferences can only increase interest —
        // the intuition behind the paper's subsumption theorem.
        let base = estimate_interest(&[d(0.7)]);
        let more = estimate_interest(&[d(0.7), d(0.5)]);
        assert!(more >= base);
    }

    #[test]
    fn interest_of_nothing_is_zero() {
        assert_eq!(estimate_interest(&[]), Doi::ZERO);
    }

    #[test]
    fn paper_example() {
        let i = estimate_interest(&[d(0.7), d(0.81)]);
        assert!((i.value() - 0.943).abs() < 1e-12);
    }
}
