//! Result ranking helpers and top-N delivery.
//!
//! The MQ rewrite already ranks inside the database via the
//! `DEGREE_OF_CONJUNCTION` aggregate; this module offers the client-side
//! counterparts: estimating the degree of interest of a combination of
//! satisfied preferences (§3.3) and delivering only the top-N results (the
//! paper's future-work item, implemented here via `LIMIT` on the ranked MQ
//! query).

use crate::doi::{conjunction_degree, Doi};
use crate::error::Result;
use crate::personalize::Personalized;
use pqp_sql::ast::Query;

/// Estimated degree of interest of a result satisfying the given
/// preferences: the conjunction combination `1 − ∏(1 − dᵢ)`.
pub fn estimate_interest(satisfied: &[Doi]) -> Doi {
    conjunction_degree(satisfied)
}

/// The ranked MQ query truncated to the `n` most interesting results.
pub fn top_n_query(p: &Personalized, n: u64) -> Result<Query> {
    let mut ranked = p.clone();
    ranked.rank = true;
    let mut q = ranked.mq()?;
    q.limit = Some(n);
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: f64) -> Doi {
        Doi::new(x).unwrap()
    }

    #[test]
    fn interest_is_monotone_in_satisfied_set() {
        // Satisfying strictly more preferences can only increase interest —
        // the intuition behind the paper's subsumption theorem.
        let base = estimate_interest(&[d(0.7)]);
        let more = estimate_interest(&[d(0.7), d(0.5)]);
        assert!(more >= base);
    }

    #[test]
    fn interest_of_nothing_is_zero() {
        assert_eq!(estimate_interest(&[]), Doi::ZERO);
    }

    #[test]
    fn paper_example() {
        let i = estimate_interest(&[d(0.7), d(0.81)]);
        assert!((i.value() - 0.943).abs() < 1e-12);
    }
}
