//! Negative preferences — the first of the paper's §8 future-work items.
//!
//! A *negative* preference stores a degree of **disinterest** in `[0, 1]`
//! for an atomic selection: 1 means "never show me this" (hard exclusion),
//! smaller values demote matching results in the ranking. Negative
//! preferences compose with the positive machinery:
//!
//! - they live in the same [`Profile`] (a separate
//!   section, so they never enter the positive personalization graph);
//! - *relevance to a query* is decided exactly like for positive
//!   preferences: a negative selection matters iff a transitive path from
//!   the query graph reaches it, reusing the §5 selection algorithm over a
//!   graph whose join edges come from the profile and whose selection edges
//!   are the negatives;
//! - integration extends the MQ rewrite: positive partials carry
//!   `(pos_doi, NULL)`, negative partials `(NULL, neg_doi)`, and a bare
//!   partial `(NULL, 0)` keeps every initial row grouped. The outer query
//!   then filters with `COUNT(pos_doi) ≥ L` (non-null count — only real
//!   positive matches) and ranks by
//!
//!   ```text
//!   interest = DEGREE_OF_CONJUNCTION(pos_doi) · (1 − DEGREE_OF_CONJUNCTION(neg_doi))
//!   ```
//!
//!   so satisfying negatives multiplies interest by `∏(1 − dⱼ)` — a hard
//!   negative (dⱼ = 1) drives it to 0 and the `HAVING` clause excludes the
//!   row entirely.

use crate::criteria::InterestCriterion;
use crate::doi::Doi;
use crate::error::{PrefError, Result};
use crate::graph::InMemoryGraph;
use crate::integrate::{MatchSpec, DOI_COLUMN, INTEREST_COLUMN};
use crate::path::PreferencePath;
use crate::profile::Profile;
use crate::query_graph::QueryGraph;
use crate::select::select_preferences;
use pqp_sql::ast::{Expr, Query, Select, SelectItem};
use pqp_sql::builder as b;
use pqp_storage::{Catalog, Value};

/// Column alias of the negative degree column in the union.
pub const NEG_DOI_COLUMN: &str = "pqp_neg_doi";

/// Build the *negative* personalization graph of a profile: the profile's
/// join preferences plus its negative selections.
pub fn negative_graph(profile: &Profile, catalog: &Catalog) -> Result<InMemoryGraph> {
    let mut shadow = Profile::new(format!("{}(negative)", profile.user));
    for j in profile.joins() {
        if let crate::pref::AtomicPreference::Join { from, to, doi } = j {
            shadow.add_join(&from.table, &from.column, &to.table, &to.column, doi.value())?;
        }
    }
    for n in profile.negatives() {
        if let crate::pref::AtomicPreference::Selection { attr, value, doi } = n {
            shadow.add_selection(&attr.table, &attr.column, value.clone(), doi.value())?;
        }
    }
    InMemoryGraph::build(&shadow, catalog)
}

/// Select the negative preferences relevant to a query (top-`k` by degree
/// of disinterest), reusing the §5 algorithm.
pub fn select_negatives(
    query: &Query,
    profile: &Profile,
    catalog: &Catalog,
    k: usize,
) -> Result<Vec<PreferencePath>> {
    if profile.negatives().next().is_none() || k == 0 {
        return Ok(Vec::new());
    }
    let select = query
        .as_select()
        .ok_or_else(|| PrefError::UnsupportedQuery("plain SELECT required".into()))?;
    let qg = QueryGraph::from_select(select, catalog)?;
    let graph = negative_graph(profile, catalog)?;
    let mut selected = select_preferences(&qg, &graph, &InterestCriterion::TopK(k)).selected;
    // A stored disinterest of exactly 1 is absolute ("never show me this"):
    // it must not attenuate through the join path, or a one-join aversion
    // could never exclude anything. Soft negatives attenuate per §3.2.
    for p in &mut selected {
        if p.selection.as_ref().is_some_and(|s| s.doi == Doi::ONE) {
            p.doi = Doi::ONE;
        }
    }
    Ok(selected)
}

/// MQ integration with negative preferences.
///
/// `positive` are the selected positive paths (decreasing degree, the first
/// `m` mandatory), `negative` the selected negative paths. The result is
/// always ranked (the interest expression is where negatives act).
pub fn integrate_mq_with_negatives(
    select: &Select,
    positive: &[PreferencePath],
    negative: &[PreferencePath],
    m: usize,
    spec: MatchSpec,
) -> Result<Query> {
    // Start from the plain MQ over the positives with the bare partial
    // forced (L = 0 keeps every initial row in play), then splice in the
    // negative column and partials, and rebuild the outer query.
    let base = crate::integrate::integrate_mq(select, positive, m, MatchSpec::AtLeast(0), false)?;
    let Some(outer) = base.as_select() else { unreachable!("MQ output is a select") };
    let pqp_sql::TableFactor::Derived { query: union_q, alias } = &outer.from[0] else {
        unreachable!("MQ output reads a derived table")
    };

    // Collect the positive partials, extend each with `NULL AS neg_doi`.
    let mut partials: Vec<Select> = Vec::new();
    collect_selects(&union_q.body, &mut partials);
    for p in &mut partials {
        p.projection.push(b::item_as(Expr::Literal(Value::Null), NEG_DOI_COLUMN));
    }
    // Bare partial carries (NULL, 0.0): it anchors DEGREE(neg_doi) at 0 for
    // rows matching no negative. (It is the first partial — integrate_mq
    // emits it first when L = 0.)
    if let Some(bare) = partials.first_mut() {
        let last = bare.projection.len() - 1;
        bare.projection[last] = b::item_as(Expr::Literal(Value::Float(0.0)), NEG_DOI_COLUMN);
    }

    // Negative partials: initial query + negative path condition,
    // projecting (NULL, disinterest).
    let proj_len = match QueryGraph::plain_projection(select) {
        Some(p) => p.len(),
        None => {
            return Err(PrefError::UnsupportedQuery(
                "MQ integration requires a projection of plain columns".into(),
            ))
        }
    };
    for path in negative {
        let single = crate::integrate::integrate_mq(
            select,
            std::slice::from_ref(path),
            0,
            MatchSpec::AtLeast(1),
            false,
        )?;
        let Some(souter) = single.as_select() else { unreachable!() };
        let pqp_sql::TableFactor::Derived { query: sunion, .. } = &souter.from[0] else {
            unreachable!()
        };
        let mut sparts = Vec::new();
        collect_selects(&sunion.body, &mut sparts);
        let mut part = sparts.pop().expect("one partial per preference");
        // Its projection is (cols..., doi): move the degree to the negative
        // column.
        let last = part.projection.len() - 1;
        part.projection[last] = b::item_as(Expr::Literal(Value::Null), DOI_COLUMN);
        part.projection
            .push(b::item_as(Expr::Literal(Value::Float(path.doi.value())), NEG_DOI_COLUMN));
        partials.push(part);
    }

    // Rebuild the outer query.
    let union = b::union_all(partials).expect("at least the bare partial");
    let temp = b::derived(Query { body: union, order_by: Vec::new(), limit: None }, alias.clone());

    let interest_expr = b::binary(
        b::func("DEGREE_OF_CONJUNCTION", vec![b::bare_col(DOI_COLUMN)]),
        pqp_sql::BinaryOp::Mul,
        b::binary(
            b::lit(1.0f64),
            pqp_sql::BinaryOp::Minus,
            b::func("DEGREE_OF_CONJUNCTION", vec![b::bare_col(NEG_DOI_COLUMN)]),
        ),
    );

    let mut projection: Vec<SelectItem> = outer.projection.iter().take(proj_len).cloned().collect();
    projection.push(b::item_as(interest_expr.clone(), INTEREST_COLUMN));

    let positive_count = b::func("COUNT", vec![b::bare_col(DOI_COLUMN)]);
    let not_excluded =
        b::lt(b::func("DEGREE_OF_CONJUNCTION", vec![b::bare_col(NEG_DOI_COLUMN)]), b::lit(1.0f64));
    let having = match spec {
        MatchSpec::AtLeast(l) => {
            let mut h = not_excluded;
            if l > 0 {
                h = b::and(b::gte(positive_count, b::lit(l as i64)), h);
            }
            Some(h)
        }
        MatchSpec::MinDegree(d) => Some(b::gt(interest_expr, b::lit(d))),
    };

    let outer = Select {
        distinct: false,
        projection,
        from: vec![temp],
        selection: None,
        group_by: outer.group_by.clone(),
        having,
    };
    Ok(Query {
        body: pqp_sql::SetExpr::Select(Box::new(outer)),
        order_by: vec![b::order_by(b::bare_col(INTEREST_COLUMN), true)],
        limit: None,
    })
}

fn collect_selects(s: &pqp_sql::SetExpr, out: &mut Vec<Select>) {
    match s {
        pqp_sql::SetExpr::Select(sel) => out.push((**sel).clone()),
        pqp_sql::SetExpr::Union { left, right, .. } => {
            collect_selects(left, out);
            collect_selects(right, out);
        }
    }
}
