//! Per-query execution-strategy choice: SQ vs MQ vs the native rank
//! operator.
//!
//! The paper compares its two SQL integrations (SQ and MQ) and observes
//! that neither dominates: SQ degrades combinatorially with `C(K−M, L)`
//! while MQ pays one partial query per optional preference. The native
//! rank operator ([`pqp_engine::topk`]) adds a third execution shape that
//! avoids both blow-ups but pays witness probes per preference. This
//! module picks between them **per query** with the engine's cost
//! estimator: every candidate is fully built and planned, then the
//! cheapest plan (by [`pqp_engine::Estimator::cost`]) wins.
//!
//! Candidate sets respect expressiveness:
//!
//! - SQ cannot rank, cannot apply a minimum-degree threshold and cannot
//!   honor a top-N limit — it only competes for plain matching queries;
//! - MQ and native rank compete everywhere; a native-unsupported shape
//!   (see [`crate::integrate::integrate_native`]) simply drops out.
//!
//! Ties keep MQ (the paper's default), making the choice deterministic.

use crate::error::{PrefError, Result};
use crate::integrate::MatchSpec;
use crate::personalize::{Personalized, Rewrite};
use pqp_engine::plan::Plan;
use pqp_engine::topk::TopKSpec;
use pqp_engine::{Database, Estimator};
use pqp_sql::ast::Query;

/// A fully-built execution of a personalized query: either a SQL rewrite
/// or a native rank specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Execution {
    /// Execute a SQL rewrite (original / SQ / MQ).
    Sql(Query),
    /// Execute through the engine's native rank operator.
    Native(TopKSpec),
}

/// The outcome of strategy resolution: the winning rewrite, its built
/// execution and plan, and the estimated costs of every candidate that
/// could be built (including the winner) for EXPLAIN output.
#[derive(Debug, Clone)]
pub struct StrategyChoice {
    /// The resolved rewrite — never [`Rewrite::Auto`]; an explicitly
    /// requested [`Rewrite::NativeRank`] that the query's shape does not
    /// support resolves to [`Rewrite::Mq`] (reported honestly here).
    pub rewrite: Rewrite,
    /// The built execution.
    pub execution: Execution,
    /// Its plan (reusable; cacheable by the serving layer).
    pub plan: Plan,
    /// The estimated cost of `plan`.
    pub cost: f64,
    /// `(candidate, estimated cost)` for every buildable candidate, in
    /// evaluation order.
    pub alternatives: Vec<(Rewrite, f64)>,
}

impl StrategyChoice {
    /// One-line summary for EXPLAIN output: the chosen strategy, its
    /// estimated cost, and the costs of the alternatives.
    pub fn summary(&self) -> String {
        let alts: Vec<String> =
            self.alternatives.iter().map(|(rw, c)| format!("{}={:.0}", rw.label(), c)).collect();
        format!(
            "strategy: {} (est_cost={:.0}; candidates: {})",
            self.rewrite,
            self.cost,
            alts.join(", ")
        )
    }
}

/// Build the execution for a rewrite, resolving [`Rewrite::Auto`] through
/// [`choose`] and falling back from an unsupported explicit
/// [`Rewrite::NativeRank`] to MQ.
///
/// `limit` is a ranked top-N cut (`None` for the full result); it is only
/// meaningful when `p.rank` is set and is applied to the built execution
/// (SQL `LIMIT` or the operator's limit).
pub fn build_execution(
    db: &Database,
    p: &Personalized,
    rewrite: Rewrite,
    limit: Option<u64>,
) -> Result<StrategyChoice> {
    match rewrite {
        Rewrite::Auto => choose(db, p, limit),
        Rewrite::NativeRank => match build_one(db, p, Rewrite::NativeRank, limit) {
            Ok(built) => Ok(resolved(db, Rewrite::NativeRank, built)),
            Err(PrefError::UnsupportedQuery(_)) => {
                let built = build_one(db, p, Rewrite::Mq, limit)?;
                Ok(resolved(db, Rewrite::Mq, built))
            }
            Err(e) => Err(e),
        },
        other => {
            let built = build_one(db, p, other, limit)?;
            Ok(resolved(db, other, built))
        }
    }
}

/// Pick the cheapest buildable candidate for this personalized query.
pub fn choose(db: &Database, p: &Personalized, limit: Option<u64>) -> Result<StrategyChoice> {
    let _span = pqp_obs::span("strategy.choose");
    // MQ first: ties keep it. SQ only competes where it is expressive
    // enough (no ranking, no degree threshold, no top-N cut).
    let mut candidates = vec![Rewrite::Mq];
    if !p.rank && limit.is_none() && matches!(p.matching, MatchSpec::AtLeast(_)) {
        candidates.push(Rewrite::Sq);
    }
    candidates.push(Rewrite::NativeRank);

    let mut best: Option<StrategyChoice> = None;
    let mut alternatives: Vec<(Rewrite, f64)> = Vec::new();
    let mut last_err: Option<PrefError> = None;
    for rw in candidates {
        let (execution, plan) = match build_one(db, p, rw, limit) {
            Ok(built) => built,
            // Shapes a candidate cannot express drop out of the race.
            Err(e @ (PrefError::UnsupportedQuery(_) | PrefError::TooManyCombinations { .. })) => {
                last_err = Some(e);
                continue;
            }
            Err(e) => return Err(e),
        };
        let cost = Estimator::new(db.catalog()).cost(&plan);
        alternatives.push((rw, cost));
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(StrategyChoice {
                rewrite: rw,
                execution,
                plan,
                cost,
                alternatives: Vec::new(),
            });
        }
    }
    let mut choice = best.ok_or_else(|| {
        last_err.unwrap_or_else(|| PrefError::Internal("no strategy candidate".into()))
    })?;
    choice.alternatives = alternatives;
    pqp_obs::record("strategy", choice.rewrite.label());
    Ok(choice)
}

/// Build one candidate's execution and plan.
fn build_one(
    db: &Database,
    p: &Personalized,
    rw: Rewrite,
    limit: Option<u64>,
) -> Result<(Execution, Plan)> {
    match rw {
        Rewrite::NativeRank => {
            let mut spec = p.native()?;
            spec.limit = limit;
            let plan = db.plan_topk(&spec)?;
            Ok((Execution::Native(spec), plan))
        }
        Rewrite::Auto => Err(PrefError::Internal("Auto is resolved before build_one".into())),
        other => {
            let mut q = p.rewritten(other)?;
            if limit.is_some() {
                q.limit = limit;
            }
            let plan = db.plan(&q)?;
            Ok((Execution::Sql(q), plan))
        }
    }
}

/// Wrap an explicitly-requested rewrite's build as a [`StrategyChoice`].
fn resolved(db: &Database, rw: Rewrite, (execution, plan): (Execution, Plan)) -> StrategyChoice {
    let cost = Estimator::new(db.catalog()).cost(&plan);
    StrategyChoice { rewrite: rw, execution, plan, cost, alternatives: vec![(rw, cost)] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::InMemoryGraph;
    use crate::personalize::{personalize, PersonalizeOptions};
    use crate::profile::Profile;
    use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

    fn movie_db() -> Database {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c.create_table(TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        ))
        .unwrap();
        {
            let t = c.table("MOVIE").unwrap();
            let mut t = t.write();
            for (mid, title) in
                [(1, "Amelie"), (2, "Brazil"), (3, "Casino"), (4, "Dune"), (5, "Elf")]
            {
                t.insert(vec![Value::Int(mid), Value::str(title)]).unwrap();
            }
        }
        {
            let t = c.table("GENRE").unwrap();
            let mut t = t.write();
            for (mid, g) in [
                (1, "comedy"),
                (1, "romance"),
                (2, "comedy"),
                (2, "scifi"),
                (3, "drama"),
                (4, "scifi"),
                (5, "comedy"),
            ] {
                t.insert(vec![Value::Int(mid), Value::str(g)]).unwrap();
            }
        }
        Database::new(c)
    }

    fn profile() -> Profile {
        let mut p = Profile::new("u");
        p.add_join("MOVIE", "mid", "GENRE", "mid", 1.0).unwrap();
        p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "scifi", 0.7).unwrap();
        p.add_selection("GENRE", "genre", "drama", 0.5).unwrap();
        p
    }

    fn personalized(db: &Database, rank: bool) -> Personalized {
        let g = InMemoryGraph::build(&profile(), db.catalog()).unwrap();
        let q = pqp_sql::parse_query("select MV.title from MOVIE MV").unwrap();
        let mut opts = PersonalizeOptions::builder().k(3).l(1).build();
        opts.rank = rank;
        personalize(&q, &g, db.catalog(), opts).unwrap()
    }

    /// Canonical order: interest descending (NULL last), title ascending.
    fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| {
            let key = |r: &Vec<Value>| match r[1] {
                Value::Float(f) => (0, -f),
                _ => (1, 0.0),
            };
            key(a).partial_cmp(&key(b)).unwrap().then_with(|| a[0].cmp(&b[0]))
        });
        rows
    }

    #[test]
    fn native_matches_ranked_mq() {
        let db = movie_db();
        let p = personalized(&db, true);
        let native = build_execution(&db, &p, Rewrite::NativeRank, None).unwrap();
        assert_eq!(native.rewrite, Rewrite::NativeRank);
        let got = db.run_plan(&native.plan).unwrap();
        assert_eq!(got.columns, vec!["title", "interest"]);
        let mq = db.run_query(&p.mq().unwrap()).unwrap();
        assert_eq!(canonical(got.rows), canonical(mq.rows));
    }

    #[test]
    fn native_top_n_truncates_after_ranking() {
        let db = movie_db();
        let p = personalized(&db, true);
        let choice = crate::rank::top_n(&db, &p, 2).unwrap();
        let got = db.run_plan(&choice.plan).unwrap();
        assert_eq!(got.rows.len(), 2);
        // The full ranked MQ result, canonically cut to 2, must agree.
        let mq = canonical(db.run_query(&p.mq().unwrap()).unwrap().rows);
        assert_eq!(canonical(got.rows), mq[..2].to_vec());
    }

    #[test]
    fn auto_resolves_and_reports_candidates() {
        let db = movie_db();
        let p = personalized(&db, false);
        let choice = choose(&db, &p, None).unwrap();
        assert_ne!(choice.rewrite, Rewrite::Auto);
        // Unranked: SQ, MQ and native all compete.
        assert_eq!(choice.alternatives.len(), 3, "{:?}", choice.alternatives);
        assert!(choice.alternatives.iter().all(|(_, c)| *c >= choice.cost));
        assert!(choice.summary().contains("strategy: "));
        // Ranked: SQ drops out.
        let ranked = choose(&db, &personalized(&db, true), None).unwrap();
        assert_eq!(ranked.alternatives.len(), 2);
    }

    #[test]
    fn explicit_native_falls_back_to_mq_when_unsupported() {
        let db = movie_db();
        let mut p = personalized(&db, true);
        // Force an unsupported shape: a path with no condition at all.
        p.paths.push(crate::path::PreferencePath::anchor("MV", "MOVIE"));
        let choice = build_execution(&db, &p, Rewrite::NativeRank, None).unwrap();
        assert_eq!(choice.rewrite, Rewrite::Mq);
        assert!(matches!(choice.execution, Execution::Sql(_)));
    }
}
