//! User profiles: named collections of atomic preferences (§3.1), with
//! schema validation and JSON persistence.

use crate::doi::Doi;
use crate::error::{PrefError, Result};
use crate::pref::{AtomicPreference, AttrRef};
use pqp_obs::json::Json;
use pqp_storage::{Catalog, Value};
use std::fmt;

/// A user profile: the stored atomic preferences of one user.
///
/// Zero-valued degrees are never stored (§3.1); adding a preference with the
/// same condition replaces its degree (profiles evolve over time, §3.1).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    pub user: String,
    preferences: Vec<AtomicPreference>,
    /// Negative preferences (degrees of *disinterest*; see
    /// [`crate::negative`]). Kept separate so they never enter the positive
    /// personalization graph. Omitted from JSON when empty.
    negatives: Vec<AtomicPreference>,
    /// Mutation epoch: bumped on every successful mutating call (including
    /// degree-identical replacement), so caches keyed on profile contents can
    /// invalidate without diffing preference lists. Not part of equality and
    /// not persisted.
    revision: u64,
}

/// Equality ignores [`Profile::revision`]: two profiles are equal iff they
/// store the same preferences for the same user, however they got there.
impl PartialEq for Profile {
    fn eq(&self, other: &Profile) -> bool {
        self.user == other.user
            && self.preferences == other.preferences
            && self.negatives == other.negatives
    }
}

impl Profile {
    /// An empty profile for a named user.
    pub fn new(user: impl Into<String>) -> Profile {
        Profile { user: user.into(), preferences: Vec::new(), negatives: Vec::new(), revision: 0 }
    }

    /// The mutation epoch: how many mutating calls this profile value has
    /// seen. Cloning carries the revision along; deserialization starts at 0.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Add (or update) a selection preference `TABLE.column = value`.
    pub fn add_selection(
        &mut self,
        table: &str,
        column: &str,
        value: impl Into<Value>,
        doi: f64,
    ) -> Result<&mut Self> {
        let doi = Doi::new(doi)?;
        let attr = AttrRef::new(table, column);
        let value = value.into();
        self.preferences.retain(|p| match p {
            AtomicPreference::Selection { attr: a, value: v, .. } => {
                !(a.same_as(&attr) && *v == value)
            }
            _ => true,
        });
        if doi > Doi::ZERO {
            self.preferences.push(AtomicPreference::Selection { attr, value, doi });
        }
        self.revision += 1;
        Ok(self)
    }

    /// Add (or update) a *directed* join preference
    /// `FROM.col = TO.col` (the FROM side is the relation already in the
    /// query).
    pub fn add_join(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
        doi: f64,
    ) -> Result<&mut Self> {
        let doi = Doi::new(doi)?;
        let from = AttrRef::new(from_table, from_column);
        let to = AttrRef::new(to_table, to_column);
        self.preferences.retain(|p| match p {
            AtomicPreference::Join { from: f, to: t, .. } => !(f.same_as(&from) && t.same_as(&to)),
            _ => true,
        });
        if doi > Doi::ZERO {
            self.preferences.push(AtomicPreference::Join { from, to, doi });
        }
        self.revision += 1;
        Ok(self)
    }

    /// Add both directions of a join with the same degree.
    pub fn add_join_both(
        &mut self,
        a_table: &str,
        a_column: &str,
        b_table: &str,
        b_column: &str,
        doi: f64,
    ) -> Result<&mut Self> {
        self.add_join(a_table, a_column, b_table, b_column, doi)?;
        self.add_join(b_table, b_column, a_table, a_column, doi)
    }

    /// Add (or update) a **negative** selection preference: `disinterest`
    /// is a degree of disinterest in `[0, 1]`; 1 excludes matching results
    /// outright, smaller values demote them in the ranking (see
    /// [`crate::negative`]).
    pub fn add_negative_selection(
        &mut self,
        table: &str,
        column: &str,
        value: impl Into<Value>,
        disinterest: f64,
    ) -> Result<&mut Self> {
        let doi = Doi::new(disinterest)?;
        let attr = AttrRef::new(table, column);
        let value = value.into();
        self.negatives.retain(|p| match p {
            AtomicPreference::Selection { attr: a, value: v, .. } => {
                !(a.same_as(&attr) && *v == value)
            }
            _ => true,
        });
        if doi > Doi::ZERO {
            self.negatives.push(AtomicPreference::Selection { attr, value, doi });
        }
        self.revision += 1;
        Ok(self)
    }

    /// Stored negative preferences.
    pub fn negatives(&self) -> impl Iterator<Item = &AtomicPreference> {
        self.negatives.iter()
    }

    /// All stored preferences.
    pub fn preferences(&self) -> &[AtomicPreference] {
        &self.preferences
    }

    /// Stored selection preferences.
    pub fn selections(&self) -> impl Iterator<Item = &AtomicPreference> {
        self.preferences.iter().filter(|p| p.is_selection())
    }

    /// Stored join preferences.
    pub fn joins(&self) -> impl Iterator<Item = &AtomicPreference> {
        self.preferences.iter().filter(|p| !p.is_selection())
    }

    /// The paper's notion of profile size: the number of atomic selections.
    pub fn size(&self) -> usize {
        self.selections().count()
    }

    /// Validate every preference against a schema catalog: tables and
    /// columns must exist, and selection values must conform to column types.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        let check_attr = |a: &AttrRef| -> Result<()> {
            let schema = catalog.schema_of(&a.table).map_err(|_| PrefError::UnknownAttribute {
                table: a.table.clone(),
                column: a.column.clone(),
            })?;
            if schema.column_index(&a.column).is_none() {
                return Err(PrefError::UnknownAttribute {
                    table: a.table.clone(),
                    column: a.column.clone(),
                });
            }
            Ok(())
        };
        for p in self.preferences.iter().chain(self.negatives.iter()) {
            match p {
                AtomicPreference::Selection { attr, .. } => check_attr(attr)?,
                AtomicPreference::Join { from, to, .. } => {
                    check_attr(from)?;
                    check_attr(to)?;
                }
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON.
    ///
    /// The wire format is stable across versions: preferences carry a
    /// `"kind"` tag (`"selection"` / `"join"`), values use a
    /// `{"Int": 7}`-style tagged encoding (`Value::Null` is the bare string
    /// `"Null"`), and the `negatives` array is omitted when empty.
    pub fn to_json(&self) -> String {
        let prefs = Json::Arr(self.preferences.iter().map(pref_to_json).collect());
        let mut j = Json::obj().set("user", self.user.as_str()).set("preferences", prefs);
        if !self.negatives.is_empty() {
            j = j.set("negatives", Json::Arr(self.negatives.iter().map(pref_to_json).collect()));
        }
        j.pretty()
    }

    /// Deserialize from JSON. Degrees are re-validated through [`Doi::new`],
    /// so an out-of-range `doi` in the document is rejected.
    pub fn from_json(s: &str) -> Result<Profile> {
        let j = Json::parse(s).map_err(|e| json_err(e.to_string()))?;
        let user = j
            .get("user")
            .and_then(Json::as_str)
            .ok_or_else(|| json_err("missing `user` string"))?
            .to_string();
        let parse_list = |key: &str, required: bool| -> Result<Vec<AtomicPreference>> {
            match j.get(key) {
                None if !required => Ok(Vec::new()),
                None => Err(json_err(format!("missing `{key}` array"))),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| json_err(format!("`{key}` must be an array")))?
                    .iter()
                    .map(pref_from_json)
                    .collect(),
            }
        };
        let preferences = parse_list("preferences", true)?;
        let negatives = parse_list("negatives", false)?;
        Ok(Profile { user, preferences, negatives, revision: 0 })
    }
}

fn json_err(m: impl fmt::Display) -> PrefError {
    PrefError::Engine(format!("profile JSON: {m}"))
}

fn attr_to_json(a: &AttrRef) -> Json {
    Json::obj().set("table", a.table.as_str()).set("column", a.column.as_str())
}

fn attr_from_json(j: &Json) -> Result<AttrRef> {
    let field = |k: &str| {
        j.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| json_err(format!("attribute missing `{k}`")))
    };
    Ok(AttrRef { table: field("table")?, column: field("column")? })
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Str("Null".to_string()),
        Value::Bool(b) => Json::obj().set("Bool", *b),
        Value::Int(i) => Json::obj().set("Int", *i),
        Value::Float(f) => Json::obj().set("Float", *f),
        Value::Str(s) => Json::obj().set("Str", s.as_str()),
    }
}

fn value_from_json(j: &Json) -> Result<Value> {
    if let Some("Null") = j.as_str() {
        return Ok(Value::Null);
    }
    let bad = || json_err(format!("invalid value `{j}`"));
    match j {
        Json::Obj(pairs) if pairs.len() == 1 => {
            let (tag, inner) = &pairs[0];
            match tag.as_str() {
                "Bool" => inner.as_bool().map(Value::Bool).ok_or_else(bad),
                "Int" => inner.as_i64().map(Value::Int).ok_or_else(bad),
                "Float" => inner.as_f64().map(Value::Float).ok_or_else(bad),
                "Str" => inner.as_str().map(Value::str).ok_or_else(bad),
                _ => Err(bad()),
            }
        }
        _ => Err(bad()),
    }
}

fn pref_to_json(p: &AtomicPreference) -> Json {
    match p {
        AtomicPreference::Selection { attr, value, doi } => Json::obj()
            .set("kind", "selection")
            .set("attr", attr_to_json(attr))
            .set("value", value_to_json(value))
            .set("doi", doi.value()),
        AtomicPreference::Join { from, to, doi } => Json::obj()
            .set("kind", "join")
            .set("from", attr_to_json(from))
            .set("to", attr_to_json(to))
            .set("doi", doi.value()),
    }
}

fn pref_from_json(j: &Json) -> Result<AtomicPreference> {
    let doi = j
        .get("doi")
        .and_then(Json::as_f64)
        .ok_or_else(|| json_err("preference missing numeric `doi`"))
        .and_then(Doi::new)?;
    let attr = |k: &str| {
        j.get(k)
            .ok_or_else(|| json_err(format!("preference missing `{k}`")))
            .and_then(attr_from_json)
    };
    match j.get("kind").and_then(Json::as_str) {
        Some("selection") => {
            let value = j
                .get("value")
                .ok_or_else(|| json_err("selection missing `value`"))
                .and_then(value_from_json)?;
            Ok(AtomicPreference::Selection { attr: attr("attr")?, value, doi })
        }
        Some("join") => Ok(AtomicPreference::Join { from: attr("from")?, to: attr("to")?, doi }),
        _ => Err(json_err("preference missing `kind` (`selection` or `join`)")),
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile `{}`:", self.user)?;
        for p in &self.preferences {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_storage::{ColumnDef, DataType, TableSchema};

    fn mini_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        ))
        .unwrap();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c
    }

    fn julie() -> Profile {
        let mut p = Profile::new("julie");
        p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "thriller", 0.7).unwrap();
        p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        p
    }

    #[test]
    fn size_counts_selections_only() {
        assert_eq!(julie().size(), 2);
        assert_eq!(julie().preferences().len(), 3);
    }

    #[test]
    fn re_adding_replaces_degree() {
        let mut p = julie();
        p.add_selection("GENRE", "genre", "comedy", 0.5).unwrap();
        assert_eq!(p.size(), 2, "no duplicate entry");
        let doi = p
            .selections()
            .find_map(|s| match s {
                AtomicPreference::Selection { value, doi, .. }
                    if *value == Value::str("comedy") =>
                {
                    Some(*doi)
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(doi.value(), 0.5);
    }

    #[test]
    fn zero_degree_removes() {
        let mut p = julie();
        p.add_selection("GENRE", "genre", "comedy", 0.0).unwrap();
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn invalid_degree_rejected() {
        let mut p = Profile::new("x");
        assert!(p.add_selection("T", "c", "v", 1.5).is_err());
        assert!(p.add_join("A", "x", "B", "y", -0.1).is_err());
    }

    #[test]
    fn directed_joins_are_distinct() {
        let mut p = Profile::new("x");
        p.add_join("MOVIE", "mid", "PLAY", "mid", 0.8).unwrap();
        p.add_join("PLAY", "mid", "MOVIE", "mid", 1.0).unwrap();
        assert_eq!(p.joins().count(), 2, "two directions stored separately");
    }

    #[test]
    fn validation_against_catalog() {
        let c = mini_catalog();
        assert!(julie().validate(&c).is_ok());
        let mut bad = Profile::new("bad");
        bad.add_selection("NOPE", "x", "v", 0.5).unwrap();
        assert!(matches!(bad.validate(&c), Err(PrefError::UnknownAttribute { .. })));
        let mut bad2 = Profile::new("bad2");
        bad2.add_join("MOVIE", "nope", "GENRE", "mid", 0.5).unwrap();
        assert!(bad2.validate(&c).is_err());
    }

    #[test]
    fn revision_bumps_on_every_mutation_but_not_equality() {
        let mut p = Profile::new("x");
        assert_eq!(p.revision(), 0);
        p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        assert_eq!(p.revision(), 2);
        // Degree replacement is a mutation too.
        p.add_selection("GENRE", "genre", "comedy", 0.5).unwrap();
        assert_eq!(p.revision(), 3);
        // A failed mutation does not bump.
        assert!(p.add_selection("GENRE", "genre", "x", 2.0).is_err());
        assert_eq!(p.revision(), 3);
        // Equality ignores the revision.
        let mut q = Profile::new("x");
        q.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        q.add_selection("GENRE", "genre", "comedy", 0.5).unwrap();
        assert_ne!(p.revision(), q.revision());
        assert_eq!(p, q);
    }

    #[test]
    fn json_roundtrip() {
        let p = julie();
        let j = p.to_json();
        let back = Profile::from_json(&j).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn json_rejects_invalid_degree() {
        let j = r#"{"user":"x","preferences":[
            {"kind":"selection","attr":{"table":"T","column":"c"},"value":{"Str":"v"},"doi":7.0}
        ]}"#;
        assert!(Profile::from_json(j).is_err());
    }

    #[test]
    fn display_matches_paper_style() {
        let p = julie();
        let text = p.to_string();
        assert!(text.contains("[ GENRE.genre='comedy', 0.9 ]"), "got:\n{text}");
        assert!(text.contains("[ MOVIE.mid=GENRE.mid, 0.9 ]"), "got:\n{text}");
    }
}
