//! User profiles: named collections of atomic preferences (§3.1), with
//! schema validation and JSON persistence.

use crate::doi::Doi;
use crate::error::{PrefError, Result};
use crate::pref::{AtomicPreference, AttrRef};
use pqp_storage::{Catalog, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A user profile: the stored atomic preferences of one user.
///
/// Zero-valued degrees are never stored (§3.1); adding a preference with the
/// same condition replaces its degree (profiles evolve over time, §3.1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    pub user: String,
    preferences: Vec<AtomicPreference>,
    /// Negative preferences (degrees of *disinterest*; see
    /// [`crate::negative`]). Kept separate so they never enter the positive
    /// personalization graph.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    negatives: Vec<AtomicPreference>,
}

impl Profile {
    /// An empty profile for a named user.
    pub fn new(user: impl Into<String>) -> Profile {
        Profile { user: user.into(), preferences: Vec::new(), negatives: Vec::new() }
    }

    /// Add (or update) a selection preference `TABLE.column = value`.
    pub fn add_selection(
        &mut self,
        table: &str,
        column: &str,
        value: impl Into<Value>,
        doi: f64,
    ) -> Result<&mut Self> {
        let doi = Doi::new(doi)?;
        let attr = AttrRef::new(table, column);
        let value = value.into();
        self.preferences.retain(|p| match p {
            AtomicPreference::Selection { attr: a, value: v, .. } => {
                !(a.same_as(&attr) && *v == value)
            }
            _ => true,
        });
        if doi > Doi::ZERO {
            self.preferences.push(AtomicPreference::Selection { attr, value, doi });
        }
        Ok(self)
    }

    /// Add (or update) a *directed* join preference
    /// `FROM.col = TO.col` (the FROM side is the relation already in the
    /// query).
    pub fn add_join(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
        doi: f64,
    ) -> Result<&mut Self> {
        let doi = Doi::new(doi)?;
        let from = AttrRef::new(from_table, from_column);
        let to = AttrRef::new(to_table, to_column);
        self.preferences.retain(|p| match p {
            AtomicPreference::Join { from: f, to: t, .. } => {
                !(f.same_as(&from) && t.same_as(&to))
            }
            _ => true,
        });
        if doi > Doi::ZERO {
            self.preferences.push(AtomicPreference::Join { from, to, doi });
        }
        Ok(self)
    }

    /// Add both directions of a join with the same degree.
    pub fn add_join_both(
        &mut self,
        a_table: &str,
        a_column: &str,
        b_table: &str,
        b_column: &str,
        doi: f64,
    ) -> Result<&mut Self> {
        self.add_join(a_table, a_column, b_table, b_column, doi)?;
        self.add_join(b_table, b_column, a_table, a_column, doi)
    }

    /// Add (or update) a **negative** selection preference: `disinterest`
    /// is a degree of disinterest in `[0, 1]`; 1 excludes matching results
    /// outright, smaller values demote them in the ranking (see
    /// [`crate::negative`]).
    pub fn add_negative_selection(
        &mut self,
        table: &str,
        column: &str,
        value: impl Into<Value>,
        disinterest: f64,
    ) -> Result<&mut Self> {
        let doi = Doi::new(disinterest)?;
        let attr = AttrRef::new(table, column);
        let value = value.into();
        self.negatives.retain(|p| match p {
            AtomicPreference::Selection { attr: a, value: v, .. } => {
                !(a.same_as(&attr) && *v == value)
            }
            _ => true,
        });
        if doi > Doi::ZERO {
            self.negatives.push(AtomicPreference::Selection { attr, value, doi });
        }
        Ok(self)
    }

    /// Stored negative preferences.
    pub fn negatives(&self) -> impl Iterator<Item = &AtomicPreference> {
        self.negatives.iter()
    }

    /// All stored preferences.
    pub fn preferences(&self) -> &[AtomicPreference] {
        &self.preferences
    }

    /// Stored selection preferences.
    pub fn selections(&self) -> impl Iterator<Item = &AtomicPreference> {
        self.preferences.iter().filter(|p| p.is_selection())
    }

    /// Stored join preferences.
    pub fn joins(&self) -> impl Iterator<Item = &AtomicPreference> {
        self.preferences.iter().filter(|p| !p.is_selection())
    }

    /// The paper's notion of profile size: the number of atomic selections.
    pub fn size(&self) -> usize {
        self.selections().count()
    }

    /// Validate every preference against a schema catalog: tables and
    /// columns must exist, and selection values must conform to column types.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        let check_attr = |a: &AttrRef| -> Result<()> {
            let schema = catalog.schema_of(&a.table).map_err(|_| PrefError::UnknownAttribute {
                table: a.table.clone(),
                column: a.column.clone(),
            })?;
            if schema.column_index(&a.column).is_none() {
                return Err(PrefError::UnknownAttribute {
                    table: a.table.clone(),
                    column: a.column.clone(),
                });
            }
            Ok(())
        };
        for p in self.preferences.iter().chain(self.negatives.iter()) {
            match p {
                AtomicPreference::Selection { attr, .. } => check_attr(attr)?,
                AtomicPreference::Join { from, to, .. } => {
                    check_attr(from)?;
                    check_attr(to)?;
                }
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialization cannot fail")
    }

    /// Deserialize from JSON (degrees are re-validated by `Doi`'s serde
    /// impl).
    pub fn from_json(s: &str) -> Result<Profile> {
        serde_json::from_str(s).map_err(|e| PrefError::Engine(format!("profile JSON: {e}")))
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile `{}`:", self.user)?;
        for p in &self.preferences {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_storage::{ColumnDef, DataType, TableSchema};

    fn mini_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "GENRE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
            ),
        )
        .unwrap();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c
    }

    fn julie() -> Profile {
        let mut p = Profile::new("julie");
        p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "thriller", 0.7).unwrap();
        p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        p
    }

    #[test]
    fn size_counts_selections_only() {
        assert_eq!(julie().size(), 2);
        assert_eq!(julie().preferences().len(), 3);
    }

    #[test]
    fn re_adding_replaces_degree() {
        let mut p = julie();
        p.add_selection("GENRE", "genre", "comedy", 0.5).unwrap();
        assert_eq!(p.size(), 2, "no duplicate entry");
        let doi = p
            .selections()
            .find_map(|s| match s {
                AtomicPreference::Selection { value, doi, .. } if *value == Value::str("comedy") => {
                    Some(*doi)
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(doi.value(), 0.5);
    }

    #[test]
    fn zero_degree_removes() {
        let mut p = julie();
        p.add_selection("GENRE", "genre", "comedy", 0.0).unwrap();
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn invalid_degree_rejected() {
        let mut p = Profile::new("x");
        assert!(p.add_selection("T", "c", "v", 1.5).is_err());
        assert!(p.add_join("A", "x", "B", "y", -0.1).is_err());
    }

    #[test]
    fn directed_joins_are_distinct() {
        let mut p = Profile::new("x");
        p.add_join("MOVIE", "mid", "PLAY", "mid", 0.8).unwrap();
        p.add_join("PLAY", "mid", "MOVIE", "mid", 1.0).unwrap();
        assert_eq!(p.joins().count(), 2, "two directions stored separately");
    }

    #[test]
    fn validation_against_catalog() {
        let c = mini_catalog();
        assert!(julie().validate(&c).is_ok());
        let mut bad = Profile::new("bad");
        bad.add_selection("NOPE", "x", "v", 0.5).unwrap();
        assert!(matches!(bad.validate(&c), Err(PrefError::UnknownAttribute { .. })));
        let mut bad2 = Profile::new("bad2");
        bad2.add_join("MOVIE", "nope", "GENRE", "mid", 0.5).unwrap();
        assert!(bad2.validate(&c).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let p = julie();
        let j = p.to_json();
        let back = Profile::from_json(&j).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn json_rejects_invalid_degree() {
        let j = r#"{"user":"x","preferences":[
            {"kind":"selection","attr":{"table":"T","column":"c"},"value":{"Str":"v"},"doi":7.0}
        ]}"#;
        assert!(Profile::from_json(j).is_err());
    }

    #[test]
    fn display_matches_paper_style() {
        let p = julie();
        let text = p.to_string();
        assert!(text.contains("[ GENRE.genre='comedy', 0.9 ]"), "got:\n{text}");
        assert!(text.contains("[ MOVIE.mid=GENRE.mid, 0.9 ]"), "got:\n{text}");
    }
}
