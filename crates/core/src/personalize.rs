//! The end-to-end personalization facade (§4): preference selection +
//! preference integration, with the K/M/L parameterization.

use crate::criteria::InterestCriterion;
use crate::doi::Doi;
use crate::error::{PrefError, Result};
use crate::graph::GraphAccess;
use crate::integrate::{integrate_mq, integrate_sq, MatchSpec};
use crate::path::PreferencePath;
use crate::query_graph::QueryGraph;
use crate::select::{select_preferences_ctx, SelectStats};
use pqp_obs::QueryCtx;
use pqp_sql::ast::{Query, Select};
use pqp_storage::Catalog;
use std::fmt;
use std::str::FromStr;

/// Which rewrite of a personalized query to execute.
///
/// `Original` runs the query unpersonalized; `Sq` and `Mq` are the paper's
/// single-query and multiple-queries integrations (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rewrite {
    /// The original (unpersonalized) query.
    Original,
    /// The single-query (SQ) integration.
    Sq,
    /// The multiple-queries (MQ) integration.
    Mq,
    /// The native rank operator: mandatory preferences integrated as
    /// conditions, optional ones evaluated inside the executor
    /// (`pqp_engine::topk`). Not expressible as a SQL string — execute via
    /// [`crate::strategy::build_execution`].
    NativeRank,
    /// Pick the cheapest of SQ / MQ / native rank per query with the cost
    /// estimator ([`crate::strategy::choose`]).
    Auto,
}

impl Rewrite {
    /// All *SQL-producing* rewrites, in pipeline order (the experiment
    /// harnesses sweep these; `NativeRank`/`Auto` execute through
    /// [`crate::strategy`]).
    pub const ALL: [Rewrite; 3] = [Rewrite::Original, Rewrite::Sq, Rewrite::Mq];

    /// The label used in reports, CSVs and JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            Rewrite::Original => "original",
            Rewrite::Sq => "SQ",
            Rewrite::Mq => "MQ",
            Rewrite::NativeRank => "native",
            Rewrite::Auto => "auto",
        }
    }
}

impl fmt::Display for Rewrite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Rewrite {
    type Err = PrefError;

    /// Parse a rewrite label, case-insensitively (`"original"`, `"sq"`,
    /// `"mq"`, `"native"`, `"auto"`).
    fn from_str(s: &str) -> Result<Rewrite> {
        match s.to_ascii_lowercase().as_str() {
            "original" => Ok(Rewrite::Original),
            "sq" => Ok(Rewrite::Sq),
            "mq" => Ok(Rewrite::Mq),
            "native" | "nativerank" | "native_rank" => Ok(Rewrite::NativeRank),
            "auto" => Ok(Rewrite::Auto),
            other => Err(PrefError::InvalidParams(format!(
                "unknown rewrite `{other}` (expected `original`, `SQ`, `MQ`, `native` or `auto`)"
            ))),
        }
    }
}

/// How the mandatory preferences `M` are chosen (§4: explicitly, or by a
/// degree rule such as "degree 1 preferences are mandatory").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MandatorySpec {
    /// No mandatory preferences (the paper's experiments use M = 0).
    None,
    /// The top `m` selected preferences are mandatory.
    Count(usize),
    /// Preferences with degree ≥ this threshold are mandatory.
    DegreeAtLeast(f64),
}

/// Full personalization options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonalizeOptions {
    /// Interest criterion selecting the top-K preferences.
    pub criterion: InterestCriterion,
    /// How many of them are mandatory.
    pub mandatory: MandatorySpec,
    /// The at-least-L (or minimum-degree) requirement on the rest.
    pub matching: MatchSpec,
    /// Rank results by estimated degree of interest (MQ only).
    pub rank: bool,
}

impl PersonalizeOptions {
    /// Start building options. Defaults: no selection limit
    /// (`TopK(usize::MAX)`), no mandatory preferences, `L = 0`, no ranking.
    ///
    /// ```
    /// use pqp_core::{InterestCriterion, PersonalizeOptions};
    /// let opts = PersonalizeOptions::builder().k(3).l(1).build();
    /// assert_eq!(opts.criterion, InterestCriterion::TopK(3));
    /// ```
    pub fn builder() -> PersonalizeOptionsBuilder {
        PersonalizeOptionsBuilder {
            criterion: InterestCriterion::TopK(usize::MAX),
            mandatory: MandatorySpec::None,
            matching: MatchSpec::AtLeast(0),
            rank: false,
        }
    }

    /// Enable ranking.
    pub fn ranked(mut self) -> PersonalizeOptions {
        self.rank = true;
        self
    }
}

/// Builder for [`PersonalizeOptions`] (see
/// [`PersonalizeOptions::builder`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonalizeOptionsBuilder {
    criterion: InterestCriterion,
    mandatory: MandatorySpec,
    matching: MatchSpec,
    rank: bool,
}

impl PersonalizeOptionsBuilder {
    /// Select at most `k` preferences (sets the criterion to
    /// [`InterestCriterion::TopK`]).
    pub fn k(mut self, k: usize) -> Self {
        self.criterion = InterestCriterion::TopK(k);
        self
    }

    /// Make the top `m` selected preferences mandatory (`m = 0` means none).
    pub fn m(mut self, m: usize) -> Self {
        self.mandatory = if m == 0 { MandatorySpec::None } else { MandatorySpec::Count(m) };
        self
    }

    /// Require every result row to satisfy at least `l` of the optional
    /// preferences.
    pub fn l(mut self, l: usize) -> Self {
        self.matching = MatchSpec::AtLeast(l);
        self
    }

    /// Set the interest criterion directly (overrides [`Self::k`]).
    pub fn criterion(mut self, criterion: InterestCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Set the mandatory-preference rule directly (overrides [`Self::m`]).
    pub fn mandatory(mut self, mandatory: MandatorySpec) -> Self {
        self.mandatory = mandatory;
        self
    }

    /// Set the match requirement directly (overrides [`Self::l`]).
    pub fn matching(mut self, matching: MatchSpec) -> Self {
        self.matching = matching;
        self
    }

    /// Rank results by estimated degree of interest (MQ only).
    pub fn ranked(mut self) -> Self {
        self.rank = true;
        self
    }

    /// Finish building.
    pub fn build(self) -> PersonalizeOptions {
        PersonalizeOptions {
            criterion: self.criterion,
            mandatory: self.mandatory,
            matching: self.matching,
            rank: self.rank,
        }
    }
}

/// The outcome of preference selection, ready for integration.
///
/// Integration is deliberately separate (and lazy): the experiments measure
/// selection time, SQ integration time and MQ integration time
/// independently.
#[derive(Debug, Clone)]
pub struct Personalized {
    select: Select,
    /// Selected preferences, decreasing degree.
    pub paths: Vec<PreferencePath>,
    /// Number of mandatory preferences (a prefix of `paths`).
    pub m: usize,
    /// The match requirement, clamped to `K − M`.
    pub matching: MatchSpec,
    /// Ranking flag.
    pub rank: bool,
    /// Selection statistics.
    pub stats: SelectStats,
}

impl Personalized {
    /// K: the number of selected preferences.
    pub fn k(&self) -> usize {
        self.paths.len()
    }

    /// The degrees of the selected preferences, decreasing.
    pub fn degrees(&self) -> Vec<Doi> {
        self.paths.iter().map(|p| p.doi).collect()
    }

    /// Build the SQ (single-query) personalized query.
    pub fn sq(&self) -> Result<Query> {
        integrate_sq(&self.select, &self.paths, self.m, self.matching)
    }

    /// Build the MQ (multiple-queries) personalized query.
    pub fn mq(&self) -> Result<Query> {
        integrate_mq(&self.select, &self.paths, self.m, self.matching, self.rank)
    }

    /// The original (unpersonalized) query.
    pub fn original(&self) -> Query {
        Query::from_select(self.select.clone())
    }

    /// Build the native-rank specification ([`pqp_engine::topk::TopKSpec`])
    /// for the engine's `Plan::TopK` operator. Errors with
    /// [`PrefError::UnsupportedQuery`] on shapes only MQ can express.
    pub fn native(&self) -> Result<pqp_engine::topk::TopKSpec> {
        crate::integrate::integrate_native(
            &self.select,
            &self.paths,
            self.m,
            self.matching,
            self.rank,
        )
    }

    /// Build the query for the given [`Rewrite`].
    ///
    /// [`Rewrite::NativeRank`] and [`Rewrite::Auto`] have no SQL form —
    /// they execute through [`crate::strategy::build_execution`] /
    /// [`crate::strategy::choose`] — so they are errors here.
    pub fn rewritten(&self, rewrite: Rewrite) -> Result<Query> {
        match rewrite {
            Rewrite::Original => Ok(self.original()),
            Rewrite::Sq => self.sq(),
            Rewrite::Mq => self.mq(),
            Rewrite::NativeRank | Rewrite::Auto => Err(PrefError::InvalidParams(format!(
                "rewrite `{rewrite}` is not a SQL rewrite — execute it via pqp_core::strategy"
            ))),
        }
    }
}

/// Run preference selection for `query` against a user's personalization
/// graph and prepare integration.
///
/// `query` must be a conjunctive SPJ select (the paper's scope). The
/// requested `L` is clamped to `K − M` when the profile yields fewer
/// preferences than asked for (the experiments sweep L independently of how
/// many preferences each profile/query pair produces).
pub fn personalize(
    query: &Query,
    graph: &impl GraphAccess,
    catalog: &Catalog,
    opts: PersonalizeOptions,
) -> Result<Personalized> {
    let _span = pqp_obs::span("personalize");
    let select = query
        .as_select()
        .ok_or_else(|| {
            crate::error::PrefError::UnsupportedQuery("only plain SELECT blocks".into())
        })?
        .clone();
    let qg = QueryGraph::from_select(&select, catalog)?;
    personalize_with_graph(select, &qg, graph, opts, &QueryCtx::unlimited())
}

/// [`personalize`] for an already-parsed SELECT with a pre-built
/// [`QueryGraph`] — the serving layer's fast path: the parse and the query
/// graph are user-independent, so a prepared-query cache can reuse them
/// across users while the per-user selection still runs fresh.
pub fn personalize_prepared(
    select: &Select,
    qg: &QueryGraph,
    graph: &impl GraphAccess,
    opts: PersonalizeOptions,
) -> Result<Personalized> {
    let _span = pqp_obs::span("personalize");
    personalize_with_graph(select.clone(), qg, graph, opts, &QueryCtx::unlimited())
}

/// [`personalize_prepared`] under a query-governor context: preference
/// selection checkpoints the context's budget every best-first round, so a
/// deadline or cancellation cuts personalization off with
/// [`PrefError::Budget`] — the serving layer uses this to degrade
/// gracefully instead of letting the personalization phase eat the whole
/// query budget.
pub fn personalize_prepared_ctx(
    select: &Select,
    qg: &QueryGraph,
    graph: &impl GraphAccess,
    opts: PersonalizeOptions,
    ctx: &QueryCtx,
) -> Result<Personalized> {
    let _span = pqp_obs::span("personalize");
    personalize_with_graph(select.clone(), qg, graph, opts, ctx)
}

fn personalize_with_graph(
    select: Select,
    qg: &QueryGraph,
    graph: &impl GraphAccess,
    opts: PersonalizeOptions,
    ctx: &QueryCtx,
) -> Result<Personalized> {
    let outcome =
        select_preferences_ctx(qg, graph, &opts.criterion, &crate::doi::PaperCombinator, ctx)?;
    let paths = outcome.selected;
    let k = paths.len();
    pqp_obs::record("k", k);

    let m = match opts.mandatory {
        MandatorySpec::None => 0,
        MandatorySpec::Count(m) => m.min(k),
        MandatorySpec::DegreeAtLeast(d) => paths.iter().take_while(|p| p.doi.value() >= d).count(),
    };
    let matching = match opts.matching {
        MatchSpec::AtLeast(l) => MatchSpec::AtLeast(l.min(k - m)),
        other => other,
    };

    Ok(Personalized { select, paths, m, matching, rank: opts.rank, stats: outcome.stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::InMemoryGraph;
    use crate::profile::Profile;
    use pqp_storage::{ColumnDef, DataType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c.create_table(TableSchema::new(
            "PLAY",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("date", DataType::Str),
            ],
        ))
        .unwrap();
        c.create_table(TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    fn profile() -> Profile {
        let mut p = Profile::new("u");
        p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "thriller", 0.7).unwrap();
        p.add_selection("GENRE", "genre", "drama", 1.0).unwrap();
        p
    }

    fn query() -> Query {
        pqp_sql::parse_query(
            "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid and PL.date = 'd1'",
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_selection_then_both_rewrites() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let p =
            personalize(&query(), &g, &c, PersonalizeOptions::builder().k(3).l(2).build()).unwrap();
        assert_eq!(p.k(), 3);
        assert_eq!(p.m, 0);
        let sq = p.sq().unwrap();
        let mq = p.mq().unwrap();
        pqp_sql::parse_query(&sq.to_string()).unwrap();
        pqp_sql::parse_query(&mq.to_string()).unwrap();
    }

    #[test]
    fn l_is_clamped_to_available_preferences() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let p = personalize(&query(), &g, &c, PersonalizeOptions::builder().k(10).l(8).build())
            .unwrap();
        assert_eq!(p.k(), 3);
        assert_eq!(p.matching, MatchSpec::AtLeast(3));
        assert!(p.sq().is_ok());
    }

    #[test]
    fn mandatory_by_degree() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let opts = PersonalizeOptions {
            criterion: InterestCriterion::TopK(3),
            mandatory: MandatorySpec::DegreeAtLeast(0.9),
            matching: MatchSpec::AtLeast(1),
            rank: false,
        };
        let p = personalize(&query(), &g, &c, opts).unwrap();
        // drama = 1.0*0.9 = 0.9 → mandatory; comedy 0.81, thriller 0.63 optional.
        assert_eq!(p.m, 1);
    }

    #[test]
    fn ranked_option_flows_to_mq() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let p =
            personalize(&query(), &g, &c, PersonalizeOptions::builder().k(2).l(1).build().ranked())
                .unwrap();
        assert!(p.mq().unwrap().to_string().contains("ORDER BY interest DESC"));
    }

    #[test]
    fn empty_profile_yields_original_semantics() {
        let c = catalog();
        let g = InMemoryGraph::build(&Profile::new("nobody"), &c).unwrap();
        let p =
            personalize(&query(), &g, &c, PersonalizeOptions::builder().k(5).l(2).build()).unwrap();
        assert_eq!(p.k(), 0);
        assert_eq!(p.matching, MatchSpec::AtLeast(0));
        // SQ degenerates to the initial query plus DISTINCT.
        let sq = p.sq().unwrap();
        let s = sq.as_select().unwrap();
        assert_eq!(s.from.len(), 2);
    }

    #[test]
    fn builder_composes_every_knob() {
        let new = PersonalizeOptions::builder().k(3).l(2).build();
        assert_eq!(new.criterion, InterestCriterion::TopK(3));
        assert_eq!(new.matching, MatchSpec::AtLeast(2));
        let full = PersonalizeOptions::builder().k(5).m(2).l(1).ranked().build();
        assert_eq!(full.criterion, InterestCriterion::TopK(5));
        assert_eq!(full.mandatory, MandatorySpec::Count(2));
        assert_eq!(full.matching, MatchSpec::AtLeast(1));
        assert!(full.rank);
        // m(0) means no mandatory preferences.
        assert_eq!(PersonalizeOptions::builder().m(0).build().mandatory, MandatorySpec::None);
        // Direct setters override the shorthands.
        let direct = PersonalizeOptions::builder()
            .k(9)
            .criterion(InterestCriterion::MinDegree(0.4))
            .matching(MatchSpec::MinDegree(0.2))
            .mandatory(MandatorySpec::DegreeAtLeast(0.9))
            .build();
        assert_eq!(direct.criterion, InterestCriterion::MinDegree(0.4));
        assert_eq!(direct.matching, MatchSpec::MinDegree(0.2));
        assert_eq!(direct.mandatory, MandatorySpec::DegreeAtLeast(0.9));
    }

    #[test]
    fn rewrite_labels_roundtrip() {
        for rw in Rewrite::ALL {
            assert_eq!(rw.label().parse::<Rewrite>().unwrap(), rw);
            assert_eq!(rw.to_string(), rw.label());
        }
        assert_eq!("mq".parse::<Rewrite>().unwrap(), Rewrite::Mq);
        assert_eq!("Original".parse::<Rewrite>().unwrap(), Rewrite::Original);
        assert!(matches!("nope".parse::<Rewrite>(), Err(PrefError::InvalidParams(_))));
    }

    #[test]
    fn rewritten_dispatches_to_all_three() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let p =
            personalize(&query(), &g, &c, PersonalizeOptions::builder().k(2).l(1).build()).unwrap();
        assert_eq!(p.rewritten(Rewrite::Original).unwrap().to_string(), p.original().to_string());
        assert_eq!(p.rewritten(Rewrite::Sq).unwrap().to_string(), p.sq().unwrap().to_string());
        assert_eq!(p.rewritten(Rewrite::Mq).unwrap().to_string(), p.mq().unwrap().to_string());
    }

    #[test]
    fn prepared_path_matches_unprepared() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let q = query();
        let opts = PersonalizeOptions::builder().k(3).l(2).build();
        let direct = personalize(&q, &g, &c, opts).unwrap();
        let select = q.as_select().unwrap();
        let qg = QueryGraph::from_select(select, &c).unwrap();
        let prepared = personalize_prepared(select, &qg, &g, opts).unwrap();
        assert_eq!(prepared.paths, direct.paths);
        assert_eq!(prepared.m, direct.m);
        assert_eq!(prepared.mq().unwrap().to_string(), direct.mq().unwrap().to_string());
    }

    #[test]
    fn union_query_rejected() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let q = pqp_sql::parse_query(
            "(select MV.title from MOVIE MV) union (select MV.title from MOVIE MV)",
        )
        .unwrap();
        assert!(personalize(&q, &g, &c, PersonalizeOptions::builder().k(3).l(1).build()).is_err());
    }
}
