//! The end-to-end personalization facade (§4): preference selection +
//! preference integration, with the K/M/L parameterization.

use crate::criteria::InterestCriterion;
use crate::doi::Doi;
use crate::error::Result;
use crate::graph::GraphAccess;
use crate::integrate::{integrate_mq, integrate_sq, MatchSpec};
use crate::path::PreferencePath;
use crate::query_graph::QueryGraph;
use crate::select::{select_preferences, SelectStats};
use pqp_sql::ast::{Query, Select};
use pqp_storage::Catalog;

/// How the mandatory preferences `M` are chosen (§4: explicitly, or by a
/// degree rule such as "degree 1 preferences are mandatory").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MandatorySpec {
    /// No mandatory preferences (the paper's experiments use M = 0).
    None,
    /// The top `m` selected preferences are mandatory.
    Count(usize),
    /// Preferences with degree ≥ this threshold are mandatory.
    DegreeAtLeast(f64),
}

/// Full personalization options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersonalizeOptions {
    /// Interest criterion selecting the top-K preferences.
    pub criterion: InterestCriterion,
    /// How many of them are mandatory.
    pub mandatory: MandatorySpec,
    /// The at-least-L (or minimum-degree) requirement on the rest.
    pub matching: MatchSpec,
    /// Rank results by estimated degree of interest (MQ only).
    pub rank: bool,
}

impl PersonalizeOptions {
    /// The paper's default experimental setup: top-K, M = 0, L as given.
    pub fn top_k(k: usize, l: usize) -> PersonalizeOptions {
        PersonalizeOptions {
            criterion: InterestCriterion::TopK(k),
            mandatory: MandatorySpec::None,
            matching: MatchSpec::AtLeast(l),
            rank: false,
        }
    }

    /// Enable ranking.
    pub fn ranked(mut self) -> PersonalizeOptions {
        self.rank = true;
        self
    }
}

/// The outcome of preference selection, ready for integration.
///
/// Integration is deliberately separate (and lazy): the experiments measure
/// selection time, SQ integration time and MQ integration time
/// independently.
#[derive(Debug, Clone)]
pub struct Personalized {
    select: Select,
    /// Selected preferences, decreasing degree.
    pub paths: Vec<PreferencePath>,
    /// Number of mandatory preferences (a prefix of `paths`).
    pub m: usize,
    /// The match requirement, clamped to `K − M`.
    pub matching: MatchSpec,
    /// Ranking flag.
    pub rank: bool,
    /// Selection statistics.
    pub stats: SelectStats,
}

impl Personalized {
    /// K: the number of selected preferences.
    pub fn k(&self) -> usize {
        self.paths.len()
    }

    /// The degrees of the selected preferences, decreasing.
    pub fn degrees(&self) -> Vec<Doi> {
        self.paths.iter().map(|p| p.doi).collect()
    }

    /// Build the SQ (single-query) personalized query.
    pub fn sq(&self) -> Result<Query> {
        integrate_sq(&self.select, &self.paths, self.m, self.matching)
    }

    /// Build the MQ (multiple-queries) personalized query.
    pub fn mq(&self) -> Result<Query> {
        integrate_mq(&self.select, &self.paths, self.m, self.matching, self.rank)
    }

    /// The original (unpersonalized) query.
    pub fn original(&self) -> Query {
        Query::from_select(self.select.clone())
    }
}

/// Run preference selection for `query` against a user's personalization
/// graph and prepare integration.
///
/// `query` must be a conjunctive SPJ select (the paper's scope). The
/// requested `L` is clamped to `K − M` when the profile yields fewer
/// preferences than asked for (the experiments sweep L independently of how
/// many preferences each profile/query pair produces).
pub fn personalize(
    query: &Query,
    graph: &impl GraphAccess,
    catalog: &Catalog,
    opts: PersonalizeOptions,
) -> Result<Personalized> {
    let _span = pqp_obs::span("personalize");
    let select = query
        .as_select()
        .ok_or_else(|| {
            crate::error::PrefError::UnsupportedQuery("only plain SELECT blocks".into())
        })?
        .clone();
    let qg = QueryGraph::from_select(&select, catalog)?;
    let outcome = select_preferences(&qg, graph, &opts.criterion);
    let paths = outcome.selected;
    let k = paths.len();
    pqp_obs::record("k", k);

    let m = match opts.mandatory {
        MandatorySpec::None => 0,
        MandatorySpec::Count(m) => m.min(k),
        MandatorySpec::DegreeAtLeast(d) => paths.iter().take_while(|p| p.doi.value() >= d).count(),
    };
    let matching = match opts.matching {
        MatchSpec::AtLeast(l) => MatchSpec::AtLeast(l.min(k - m)),
        other => other,
    };

    Ok(Personalized { select, paths, m, matching, rank: opts.rank, stats: outcome.stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::InMemoryGraph;
    use crate::profile::Profile;
    use pqp_storage::{ColumnDef, DataType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c.create_table(TableSchema::new(
            "PLAY",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("date", DataType::Str),
            ],
        ))
        .unwrap();
        c.create_table(TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        ))
        .unwrap();
        c
    }

    fn profile() -> Profile {
        let mut p = Profile::new("u");
        p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "thriller", 0.7).unwrap();
        p.add_selection("GENRE", "genre", "drama", 1.0).unwrap();
        p
    }

    fn query() -> Query {
        pqp_sql::parse_query(
            "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid and PL.date = 'd1'",
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_selection_then_both_rewrites() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let p = personalize(&query(), &g, &c, PersonalizeOptions::top_k(3, 2)).unwrap();
        assert_eq!(p.k(), 3);
        assert_eq!(p.m, 0);
        let sq = p.sq().unwrap();
        let mq = p.mq().unwrap();
        pqp_sql::parse_query(&sq.to_string()).unwrap();
        pqp_sql::parse_query(&mq.to_string()).unwrap();
    }

    #[test]
    fn l_is_clamped_to_available_preferences() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let p = personalize(&query(), &g, &c, PersonalizeOptions::top_k(10, 8)).unwrap();
        assert_eq!(p.k(), 3);
        assert_eq!(p.matching, MatchSpec::AtLeast(3));
        assert!(p.sq().is_ok());
    }

    #[test]
    fn mandatory_by_degree() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let opts = PersonalizeOptions {
            criterion: InterestCriterion::TopK(3),
            mandatory: MandatorySpec::DegreeAtLeast(0.9),
            matching: MatchSpec::AtLeast(1),
            rank: false,
        };
        let p = personalize(&query(), &g, &c, opts).unwrap();
        // drama = 1.0*0.9 = 0.9 → mandatory; comedy 0.81, thriller 0.63 optional.
        assert_eq!(p.m, 1);
    }

    #[test]
    fn ranked_option_flows_to_mq() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let p = personalize(&query(), &g, &c, PersonalizeOptions::top_k(2, 1).ranked()).unwrap();
        assert!(p.mq().unwrap().to_string().contains("ORDER BY interest DESC"));
    }

    #[test]
    fn empty_profile_yields_original_semantics() {
        let c = catalog();
        let g = InMemoryGraph::build(&Profile::new("nobody"), &c).unwrap();
        let p = personalize(&query(), &g, &c, PersonalizeOptions::top_k(5, 2)).unwrap();
        assert_eq!(p.k(), 0);
        assert_eq!(p.matching, MatchSpec::AtLeast(0));
        // SQ degenerates to the initial query plus DISTINCT.
        let sq = p.sq().unwrap();
        let s = sq.as_select().unwrap();
        assert_eq!(s.from.len(), 2);
    }

    #[test]
    fn union_query_rejected() {
        let c = catalog();
        let g = InMemoryGraph::build(&profile(), &c).unwrap();
        let q = pqp_sql::parse_query(
            "(select MV.title from MOVIE MV) union (select MV.title from MOVIE MV)",
        )
        .unwrap();
        assert!(personalize(&q, &g, &c, PersonalizeOptions::top_k(3, 1)).is_err());
    }
}
