//! Preference integration (§6): producing the personalized query.
//!
//! Two equivalent constructions are implemented:
//!
//! - **SQ** (single query): one complex qualification — the conjunction of
//!   the mandatory conditions with the disjunction of all conflict-free
//!   conjunctions of `L` optional preferences;
//! - **MQ** (multiple queries): one partial query per optional preference,
//!   `UNION ALL`-ed, grouped by the original projection, `HAVING
//!   COUNT(*) ≥ L` — optionally ranked by the `DEGREE_OF_CONJUNCTION`
//!   aggregate and/or filtered by a minimum estimated degree.
//!
//! Conflicting preferences are never conjoined (they would yield an empty
//! result); tuple variables follow the sharing rules of [`crate::vars`].

use crate::conflict::conflicts_between;
use crate::error::{PrefError, Result};
use crate::path::PreferencePath;
use crate::vars::{PathVars, VarAllocator};
use pqp_sql::ast::{Expr, Query, Select, SelectItem, TableFactor};
use pqp_sql::builder as b;
use pqp_storage::Value;

/// Hard cap on the number of conjunctions SQ may enumerate.
pub const SQ_COMBINATION_LIMIT: u128 = 100_000;

/// Column alias used for the degree-of-interest column in MQ partials.
pub const DOI_COLUMN: &str = "pqp_doi";
/// Column alias of the estimated interest in ranked MQ output.
pub const INTEREST_COLUMN: &str = "interest";

/// How the "at least L" requirement is expressed (§6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchSpec {
    /// Every result row must satisfy at least this many of the optional
    /// preferences.
    AtLeast(usize),
    /// Every result row's estimated degree of interest (conjunction of the
    /// degrees of the preferences it satisfies) must exceed this threshold.
    /// Only expressible in the MQ rewrite (the paper makes the same point).
    MinDegree(f64),
}

/// Render the atomic conditions of a path under an allocation: one equality
/// per join hop plus the final selection.
fn path_conditions(path: &PreferencePath, vars: &PathVars) -> Vec<Expr> {
    let mut out = Vec::with_capacity(path.joins.len() + 1);
    let mut current = path.start_var.clone();
    for (j, var) in path.joins.iter().zip(&vars.hop_vars) {
        out.push(b::eq(b::col(current.clone(), &j.from.column), b::col(var.clone(), &j.to.column)));
        current = var.clone();
    }
    if let Some(sel) = &path.selection {
        out.push(b::eq(b::col(current, &sel.attr.column), Expr::Literal(sel.value.clone())));
    }
    out
}

/// FROM factors for the variables a set of conditions introduces.
fn factors_for(paths: &[(&PreferencePath, &PathVars)]) -> Vec<TableFactor> {
    let mut seen: Vec<String> = Vec::new();
    let mut out = Vec::new();
    for (path, vars) in paths {
        for (j, var) in path.joins.iter().zip(&vars.hop_vars) {
            if !seen.iter().any(|v| v.eq_ignore_ascii_case(var)) {
                seen.push(var.clone());
                out.push(b::table(j.to.table.clone(), var.clone()));
            }
        }
    }
    out
}

/// Deduplicating conjunct accumulator (repeated conditions are removed, §6).
struct ConjunctSet {
    exprs: Vec<Expr>,
}

impl ConjunctSet {
    fn new() -> ConjunctSet {
        ConjunctSet { exprs: Vec::new() }
    }

    fn from_selection(selection: &Option<Expr>) -> ConjunctSet {
        let mut s = ConjunctSet::new();
        if let Some(w) = selection {
            for c in w.conjuncts() {
                s.push(c.clone());
            }
        }
        s
    }

    fn contains(&self, e: &Expr) -> bool {
        self.exprs.iter().any(|x| pqp_engine::planner::expr_eq_ci(x, e))
    }

    fn push(&mut self, e: Expr) {
        if !self.contains(&e) {
            self.exprs.push(e);
        }
    }
}

/// Validate and normalize (m, l) against the number of selected preferences.
fn check_params(k: usize, m: usize, spec: MatchSpec) -> Result<usize> {
    if m > k {
        return Err(PrefError::InvalidParams(format!("M = {m} exceeds K = {k}")));
    }
    match spec {
        MatchSpec::AtLeast(l) => {
            if l > k - m {
                return Err(PrefError::InvalidParams(format!("L = {l} exceeds K − M = {}", k - m)));
            }
            Ok(l)
        }
        MatchSpec::MinDegree(d) => {
            if !(0.0..=1.0).contains(&d) {
                return Err(PrefError::InvalidParams(format!("minimum degree {d} not in [0,1]")));
            }
            Ok(0)
        }
    }
}

/// Number of `l`-subsets of `n`, saturating.
fn binomial(n: usize, l: usize) -> u128 {
    if l > n {
        return 0;
    }
    let l = l.min(n - l);
    let mut acc: u128 = 1;
    for i in 0..l {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

/// Build the SQ (single-query) personalization of `select`.
///
/// `paths` must be in decreasing degree order (the output of preference
/// selection); the first `m` are mandatory. `spec` must be
/// [`MatchSpec::AtLeast`] — the degree-threshold variant needs the MQ shape.
pub fn integrate_sq(
    select: &Select,
    paths: &[PreferencePath],
    m: usize,
    spec: MatchSpec,
) -> Result<Query> {
    let _span = pqp_obs::span("integrate.sq");
    pqp_obs::record("paths", paths.len());
    pqp_obs::record("mandatory", m);
    let MatchSpec::AtLeast(l) = spec else {
        return Err(PrefError::InvalidParams(
            "a minimum-degree threshold requires the MQ rewrite".into(),
        ));
    };
    let l = check_params(paths.len(), m, spec).map(|_| l)?;

    let query_vars: Vec<String> =
        select.from.iter().map(|f| f.binding_name().to_string()).collect();
    let mut alloc = VarAllocator::new(query_vars);
    let all_vars = alloc.allocate(paths);

    let initial = ConjunctSet::from_selection(&select.selection);

    // Mandatory part.
    let mut conjuncts = ConjunctSet::new();
    for (p, v) in paths[..m].iter().zip(&all_vars[..m]) {
        for c in path_conditions(p, v) {
            if !initial.contains(&c) {
                conjuncts.push(c);
            }
        }
    }
    let mandatory_exprs = conjuncts.exprs.clone();

    // Optional part: the disjunction of all conflict-free L-subsets.
    let optional: Vec<(&PreferencePath, &PathVars)> =
        paths[m..].iter().zip(&all_vars[m..]).collect();
    let n = optional.len();
    let mut or_branches: Vec<Expr> = Vec::new();
    if l > 0 {
        let combos = binomial(n, l);
        if combos > SQ_COMBINATION_LIMIT {
            return Err(PrefError::TooManyCombinations {
                combinations: combos,
                limit: SQ_COMBINATION_LIMIT,
            });
        }
        // Conflict matrix.
        let mut conflict = vec![vec![false; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if conflicts_between(optional[i].0, optional[j].0) {
                    conflict[i][j] = true;
                    conflict[j][i] = true;
                }
            }
        }
        let mut subset: Vec<usize> = Vec::with_capacity(l);
        enumerate_subsets(n, l, 0, &mut subset, &conflict, &mut |chosen| {
            let mut cs = ConjunctSet::new();
            for &i in chosen {
                let (p, v) = optional[i];
                for c in path_conditions(p, v) {
                    if !initial.contains(&c)
                        && !mandatory_exprs.iter().any(|x| pqp_engine::planner::expr_eq_ci(x, &c))
                    {
                        cs.push(c);
                    }
                }
            }
            if let Some(e) = b::and_all(cs.exprs) {
                or_branches.push(e);
            }
        });
        if or_branches.is_empty() {
            // No conflict-free combination exists: nothing can satisfy L
            // preferences simultaneously.
            or_branches.push(Expr::Literal(Value::Bool(false)));
        }
    }

    // FROM: original factors plus the variables the included conditions
    // actually reference (with L = 0 no optional condition is included, so
    // no optional variable may appear — it would cross-product).
    let mut referenced: Vec<String> = Vec::new();
    for e in mandatory_exprs.iter().chain(or_branches.iter()) {
        e.referenced_qualifiers(&mut referenced);
    }

    // Assemble WHERE.
    let mut where_parts: Vec<Expr> = Vec::new();
    if let Some(w) = &select.selection {
        where_parts.push(w.clone());
    }
    where_parts.extend(mandatory_exprs.iter().cloned());
    if let Some(or_part) = b::or_all(or_branches) {
        where_parts.push(or_part);
    }
    let used: Vec<(&PreferencePath, &PathVars)> = paths.iter().zip(&all_vars).collect();
    let mut from = select.from.clone();
    from.extend(
        factors_for(&used)
            .into_iter()
            .filter(|f| referenced.iter().any(|q| q.eq_ignore_ascii_case(f.binding_name()))),
    );

    Ok(Query::from_select(Select {
        distinct: true,
        projection: select.projection.clone(),
        from,
        selection: b::and_all(where_parts),
        group_by: Vec::new(),
        having: None,
    }))
}

fn enumerate_subsets(
    n: usize,
    l: usize,
    start: usize,
    subset: &mut Vec<usize>,
    conflict: &[Vec<bool>],
    emit: &mut impl FnMut(&[usize]),
) {
    if subset.len() == l {
        emit(subset);
        return;
    }
    for i in start..n {
        if subset.iter().any(|&j| conflict[j][i]) {
            continue; // conjunctions containing conflicting pairs are excluded
        }
        subset.push(i);
        enumerate_subsets(n, l, i + 1, subset, conflict, emit);
        subset.pop();
    }
}

/// Build the MQ (multiple-queries) personalization of `select`.
///
/// `rank` adds the `DEGREE_OF_CONJUNCTION` interest column and orders the
/// result by it (descending) — the paper's ranking option.
pub fn integrate_mq(
    select: &Select,
    paths: &[PreferencePath],
    m: usize,
    spec: MatchSpec,
    rank: bool,
) -> Result<Query> {
    let _span = pqp_obs::span("integrate.mq");
    pqp_obs::record("paths", paths.len());
    pqp_obs::record("mandatory", m);
    check_params(paths.len(), m, spec)?;
    let proj = mq_projection(select)?;

    let query_vars: Vec<String> =
        select.from.iter().map(|f| f.binding_name().to_string()).collect();

    let optional = &paths[m..];
    let mut partials: Vec<Select> = Vec::new();

    // With L = 0 (or a pure degree threshold) rows satisfying only the
    // mandatory part must also appear: emit a preference-free partial whose
    // doi is NULL (ignored by the DEGREE aggregates).
    let include_bare = matches!(spec, MatchSpec::AtLeast(0)) || optional.is_empty();
    if include_bare {
        partials.push(build_partial(select, paths, m, None, &proj, &query_vars));
    }
    for (i, p) in optional.iter().enumerate() {
        partials.push(build_partial(select, paths, m, Some((m + i, p)), &proj, &query_vars));
    }

    pqp_obs::record("partials", partials.len());
    pqp_obs::counter_add("integrate.partials", partials.len() as i64);
    let union = b::union_all(partials).expect("at least one partial");
    let temp = b::derived(Query { body: union, order_by: Vec::new(), limit: None }, "PQP_TEMP");

    // Outer query: group by the projected columns, filter by L or degree,
    // optionally rank.
    let mut projection: Vec<SelectItem> = proj
        .iter()
        .enumerate()
        .map(|(i, (_, display))| b::item_as(b::bare_col(format!("pqp_c{i}")), display.clone()))
        .collect();
    if rank {
        projection.push(b::item_as(
            b::func("DEGREE_OF_CONJUNCTION", vec![b::bare_col(DOI_COLUMN)]),
            INTEREST_COLUMN,
        ));
    }
    let having = match spec {
        MatchSpec::AtLeast(l) => {
            if l <= 1 {
                None // every row of the union satisfies ≥ 1 (or the bare partial covers 0)
            } else {
                Some(b::gte(b::count_star(), b::lit(l as i64)))
            }
        }
        MatchSpec::MinDegree(d) => {
            Some(b::gt(b::func("DEGREE_OF_CONJUNCTION", vec![b::bare_col(DOI_COLUMN)]), b::lit(d)))
        }
    };
    let outer = Select {
        distinct: false,
        projection,
        from: vec![temp],
        selection: None,
        group_by: (0..proj.len()).map(|i| b::bare_col(format!("pqp_c{i}"))).collect(),
        having,
    };
    let order_by =
        if rank { vec![b::order_by(b::bare_col(INTEREST_COLUMN), true)] } else { Vec::new() };
    Ok(Query { body: pqp_sql::SetExpr::Select(Box::new(outer)), order_by, limit: None })
}

/// Build the native-rank personalization of `select`: a
/// [`TopKSpec`](pqp_engine::topk::TopKSpec) for the engine's `Plan::TopK`
/// operator instead of a SQL rewrite.
///
/// The mandatory preferences are integrated as plain conditions into the
/// *base* query (exactly as in a partial MQ query with no optional part);
/// each optional preference becomes a **probe**: the base additionally
/// projects the preference's anchor column, and the preference's own join
/// chain becomes a standalone single-column *witness* query (or a literal,
/// for selection-only paths). The operator then evaluates satisfaction and
/// degrees inside the executor — see `pqp_engine::topk`.
///
/// Returns [`PrefError::UnsupportedQuery`] for shapes whose MQ semantics a
/// standalone witness cannot reproduce, so callers can fall back to MQ:
///
/// - more than [`pqp_engine::topk::MAX_PROBES`] optional preferences;
/// - an optional path that would share tuple variables with a mandatory
///   path under MQ's allocation (a common to-one prefix — the shared
///   variable couples the optional chain to the mandatory one);
/// - a preference path with no condition at all.
pub fn integrate_native(
    select: &Select,
    paths: &[PreferencePath],
    m: usize,
    spec: MatchSpec,
    rank: bool,
) -> Result<pqp_engine::topk::TopKSpec> {
    use pqp_engine::topk::{ProbeSource, ProbeSpec, TopKSpec, MAX_PROBES};

    let _span = pqp_obs::span("integrate.native");
    pqp_obs::record("paths", paths.len());
    pqp_obs::record("mandatory", m);
    check_params(paths.len(), m, spec)?;
    let proj = mq_projection(select)?;
    let optional = &paths[m..];
    if optional.len() > MAX_PROBES {
        return Err(PrefError::UnsupportedQuery(format!(
            "native rank supports at most {MAX_PROBES} optional preferences, got {}",
            optional.len()
        )));
    }

    let query_vars: Vec<String> =
        select.from.iter().map(|f| f.binding_name().to_string()).collect();

    // Var-sharing hazard check: MQ allocates each partial's variables over
    // (mandatory ++ optional) together, sharing common to-one prefixes. A
    // witness query runs the optional chain on its own and cannot observe
    // the shared variable, so such shapes must keep the MQ rewrite.
    for p in optional {
        let mut alloc = VarAllocator::new(query_vars.clone());
        let mut involved: Vec<PreferencePath> = paths[..m].to_vec();
        involved.push(p.clone());
        let vars = alloc.allocate(&involved);
        let (mand_vars, opt_vars) = vars.split_at(m);
        let shared = opt_vars[0].hop_vars.iter().any(|v| {
            mand_vars.iter().any(|mv| mv.hop_vars.iter().any(|x| x.eq_ignore_ascii_case(v)))
        });
        if shared {
            return Err(PrefError::UnsupportedQuery(
                "optional preference shares tuple variables with a mandatory one \
                 (common to-one prefix) — native rank cannot decouple them"
                    .into(),
            ));
        }
    }

    // Base query: the original conditions plus the mandatory integration
    // (the same construction as an optional-free MQ partial), projecting
    // the visible columns followed by one probe column per optional
    // preference.
    let mut alloc = VarAllocator::new(query_vars);
    let mandatory: Vec<PreferencePath> = paths[..m].to_vec();
    let mand_vars = alloc.allocate(&mandatory);

    let initial = ConjunctSet::from_selection(&select.selection);
    let mut conjuncts = ConjunctSet::new();
    for (p, v) in mandatory.iter().zip(&mand_vars) {
        for c in path_conditions(p, v) {
            if !initial.contains(&c) {
                conjuncts.push(c);
            }
        }
    }
    let mut where_parts: Vec<Expr> = Vec::new();
    if let Some(w) = &select.selection {
        where_parts.push(w.clone());
    }
    where_parts.extend(conjuncts.exprs);

    let pairs: Vec<(&PreferencePath, &PathVars)> = mandatory.iter().zip(mand_vars.iter()).collect();
    let mut from = select.from.clone();
    from.extend(factors_for(&pairs));

    let mut projection: Vec<SelectItem> = proj
        .iter()
        .enumerate()
        .map(|(i, (e, _))| b::item_as(e.clone(), format!("pqp_c{i}")))
        .collect();
    let mut probes: Vec<ProbeSpec> = Vec::with_capacity(optional.len());
    for (j, p) in optional.iter().enumerate() {
        let (anchor_col, source) = match p.joins.first() {
            Some(first) => (
                b::col(p.start_var.clone(), &first.from.column),
                ProbeSource::Witness(witness_query(p)),
            ),
            None => {
                let Some(sel) = &p.selection else {
                    return Err(PrefError::UnsupportedQuery(
                        "preference path with no condition cannot be probed".into(),
                    ));
                };
                (
                    b::col(p.start_var.clone(), &sel.attr.column),
                    ProbeSource::Literal(sel.value.clone()),
                )
            }
        };
        projection.push(b::item_as(anchor_col, format!("pqp_p{j}")));
        probes.push(ProbeSpec { doi: p.doi.value(), source });
    }
    pqp_obs::record("probes", probes.len());

    let base = Select {
        distinct: true,
        projection,
        from,
        selection: b::and_all(where_parts),
        group_by: Vec::new(),
        having: None,
    };
    let matching = match spec {
        MatchSpec::AtLeast(l) => pqp_engine::plan::TopKMatching::AtLeast(l),
        MatchSpec::MinDegree(d) => pqp_engine::plan::TopKMatching::MinDegree(d),
    };
    Ok(TopKSpec {
        base: Query::from_select(base),
        columns: proj.into_iter().map(|(_, display)| display).collect(),
        probes,
        matching,
        rank,
        limit: None,
    })
}

/// The standalone witness query of a preference path with at least one
/// join: the path's own chain (hop equalities past the first one, plus the
/// final selection), projecting the DISTINCT values the anchor column must
/// hit.
fn witness_query(p: &PreferencePath) -> Query {
    let mut alloc = VarAllocator::new(Vec::new());
    let vars = alloc.allocate(std::slice::from_ref(p));
    let conds = path_conditions(p, &vars[0]);
    let from = factors_for(&[(p, &vars[0])]);
    let first = &p.joins[0];
    let projection = vec![b::item(b::col(vars[0].hop_vars[0].clone(), &first.to.column))];
    Query::from_select(Select {
        distinct: true,
        projection,
        from,
        // conds[0] is the anchor equality (query var = first hop var); the
        // witness projects the hop side instead of constraining it.
        selection: b::and_all(conds.into_iter().skip(1).collect::<Vec<_>>()),
        group_by: Vec::new(),
        having: None,
    })
}

/// The projected columns of the original query as
/// `(column expr, display name)`; MQ needs plain columns to group by.
fn mq_projection(select: &Select) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in &select.projection {
        match item {
            SelectItem::Expr { expr: e @ Expr::Column { name, .. }, alias } => {
                out.push((e.clone(), alias.clone().unwrap_or_else(|| name.clone())));
            }
            _ => {
                return Err(PrefError::UnsupportedQuery(
                    "MQ integration requires a projection of plain columns".into(),
                ))
            }
        }
    }
    if out.is_empty() {
        return Err(PrefError::UnsupportedQuery("query projects nothing".into()));
    }
    Ok(out)
}

fn build_partial(
    select: &Select,
    paths: &[PreferencePath],
    m: usize,
    optional: Option<(usize, &PreferencePath)>,
    proj: &[(Expr, String)],
    query_vars: &[String],
) -> Select {
    // Variables are allocated per partial query (sharing only matters within
    // one conjunction).
    let mut alloc = VarAllocator::new(query_vars.to_vec());
    let mut involved: Vec<&PreferencePath> = paths[..m].iter().collect();
    if let Some((_, p)) = optional {
        involved.push(p);
    }
    let involved_owned: Vec<PreferencePath> = involved.iter().map(|p| (*p).clone()).collect();
    let vars = alloc.allocate(&involved_owned);

    let initial = ConjunctSet::from_selection(&select.selection);
    let mut conjuncts = ConjunctSet::new();
    for (p, v) in involved_owned.iter().zip(&vars) {
        for c in path_conditions(p, v) {
            if !initial.contains(&c) {
                conjuncts.push(c);
            }
        }
    }

    let mut where_parts: Vec<Expr> = Vec::new();
    if let Some(w) = &select.selection {
        where_parts.push(w.clone());
    }
    where_parts.extend(conjuncts.exprs);

    let pairs: Vec<(&PreferencePath, &PathVars)> = involved_owned.iter().zip(vars.iter()).collect();
    let mut from = select.from.clone();
    from.extend(factors_for(&pairs));

    let mut projection: Vec<SelectItem> = proj
        .iter()
        .enumerate()
        .map(|(i, (e, _))| b::item_as(e.clone(), format!("pqp_c{i}")))
        .collect();
    let doi_lit = match optional {
        Some((_, p)) => Expr::Literal(Value::Float(p.doi.value())),
        None => Expr::Literal(Value::Null),
    };
    projection.push(b::item_as(doi_lit, DOI_COLUMN));

    Select {
        distinct: true,
        projection,
        from,
        selection: b::and_all(where_parts),
        group_by: Vec::new(),
        having: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::{Doi, PaperCombinator};
    use crate::graph::{JoinEdge, SelectionEdge};
    use crate::pref::AttrRef;
    use pqp_storage::Cardinality;

    fn initial_select() -> Select {
        pqp_sql::parse_query(
            "select MV.title from MOVIE MV, PLAY PL \
             where MV.mid = PL.mid and PL.date = '2/7/2003'",
        )
        .unwrap()
        .as_select()
        .unwrap()
        .clone()
    }

    fn join(from: (&str, &str), to: (&str, &str), doi: f64, card: Cardinality) -> JoinEdge {
        JoinEdge {
            from: AttrRef::new(from.0, from.1),
            to: AttrRef::new(to.0, to.1),
            doi: Doi::new(doi).unwrap(),
            cardinality: card,
        }
    }

    fn sel(attr: (&str, &str), value: &str, doi: f64) -> SelectionEdge {
        SelectionEdge {
            attr: AttrRef::new(attr.0, attr.1),
            value: Value::str(value),
            doi: Doi::new(doi).unwrap(),
        }
    }

    fn comedy() -> PreferencePath {
        let c = PaperCombinator;
        PreferencePath::anchor("MV", "MOVIE")
            .with_join(join(("MOVIE", "mid"), ("GENRE", "mid"), 0.9, Cardinality::ToMany), &c)
            .with_selection(sel(("GENRE", "genre"), "comedy", 0.9), &c)
    }

    fn kidman() -> PreferencePath {
        let c = PaperCombinator;
        PreferencePath::anchor("MV", "MOVIE")
            .with_join(join(("MOVIE", "mid"), ("CAST", "mid"), 0.8, Cardinality::ToMany), &c)
            .with_join(join(("CAST", "aid"), ("ACTOR", "aid"), 1.0, Cardinality::ToOne), &c)
            .with_selection(sel(("ACTOR", "name"), "N. Kidman", 0.9), &c)
    }

    fn lynch() -> PreferencePath {
        let c = PaperCombinator;
        PreferencePath::anchor("MV", "MOVIE")
            .with_join(join(("MOVIE", "mid"), ("DIRECTED", "mid"), 1.0, Cardinality::ToMany), &c)
            .with_join(join(("DIRECTED", "did"), ("DIRECTOR", "did"), 1.0, Cardinality::ToOne), &c)
            .with_selection(sel(("DIRECTOR", "name"), "D. Lynch", 0.9), &c)
    }

    fn region(val: &str) -> PreferencePath {
        let c = PaperCombinator;
        PreferencePath::anchor("PL", "PLAY")
            .with_join(join(("PLAY", "tid"), ("THEATRE", "tid"), 1.0, Cardinality::ToOne), &c)
            .with_selection(sel(("THEATRE", "region"), val, 0.6), &c)
    }

    #[test]
    fn sq_matches_paper_shape() {
        // The paper's example: K=3, M=0, L=2 over comedy/Lynch/Kidman.
        let paths = vec![lynch(), comedy(), kidman()];
        let q = integrate_sq(&initial_select(), &paths, 0, MatchSpec::AtLeast(2)).unwrap();
        let s = q.as_select().unwrap();
        assert!(s.distinct);
        // FROM: MV, PL + GENRE + CAST + ACTOR + DIRECTED + DIRECTOR = 7.
        assert_eq!(s.from.len(), 7, "{q}");
        let w = s.selection.as_ref().unwrap();
        let conjuncts = w.conjuncts();
        // initial 2 conjuncts + OR part.
        assert_eq!(conjuncts.len(), 3, "{q}");
        let or = conjuncts[2].disjuncts();
        assert_eq!(or.len(), 3, "C(3,2) = 3 combinations: {q}");
        // Re-parse to prove it is valid SQL.
        let text = q.to_string();
        pqp_sql::parse_query(&text).unwrap();
    }

    #[test]
    fn sq_l1_is_flat_disjunction() {
        let paths = vec![comedy(), kidman()];
        let q = integrate_sq(&initial_select(), &paths, 0, MatchSpec::AtLeast(1)).unwrap();
        let s = q.as_select().unwrap();
        let or = s.selection.as_ref().unwrap().conjuncts()[2].disjuncts().len();
        assert_eq!(or, 2);
    }

    #[test]
    fn sq_mandatory_conjunctions() {
        // M = 1: the top preference must be in the conjunctive part.
        let paths = vec![lynch(), comedy()];
        let q = integrate_sq(&initial_select(), &paths, 1, MatchSpec::AtLeast(1)).unwrap();
        let text = q.to_string();
        // Lynch's selection sits outside the OR.
        let w = q.as_select().unwrap().selection.as_ref().unwrap();
        let conjuncts = w.conjuncts();
        assert!(
            conjuncts.iter().take(conjuncts.len() - 1).any(|c| c.to_string().contains("D. Lynch")),
            "{text}"
        );
    }

    #[test]
    fn sq_excludes_conflicting_combinations() {
        // uptown and downtown conflict (to-one chain, same attribute):
        // the L=2 combination must exclude their pair.
        let paths = vec![region("uptown"), region("downtown"), comedy()];
        let q = integrate_sq(&initial_select(), &paths, 0, MatchSpec::AtLeast(2)).unwrap();
        let s = q.as_select().unwrap();
        let or = s.selection.as_ref().unwrap().conjuncts().last().unwrap().disjuncts().len();
        // C(3,2) = 3 minus the conflicting pair = 2.
        assert_eq!(or, 2, "{q}");
    }

    #[test]
    fn sq_l_zero_keeps_initial_semantics() {
        let paths = vec![comedy()];
        let q = integrate_sq(&initial_select(), &paths, 0, MatchSpec::AtLeast(0)).unwrap();
        let s = q.as_select().unwrap();
        // No OR part: just the initial conjuncts.
        assert_eq!(s.selection.as_ref().unwrap().conjuncts().len(), 2, "{q}");
    }

    #[test]
    fn sq_rejects_bad_params() {
        let paths = vec![comedy()];
        assert!(matches!(
            integrate_sq(&initial_select(), &paths, 2, MatchSpec::AtLeast(0)),
            Err(PrefError::InvalidParams(_))
        ));
        assert!(matches!(
            integrate_sq(&initial_select(), &paths, 0, MatchSpec::AtLeast(5)),
            Err(PrefError::InvalidParams(_))
        ));
        assert!(matches!(
            integrate_sq(&initial_select(), &paths, 0, MatchSpec::MinDegree(0.5)),
            Err(PrefError::InvalidParams(_))
        ));
    }

    #[test]
    fn sq_combination_explosion_guarded() {
        let paths: Vec<PreferencePath> = (0..40)
            .map(|i| {
                let c = PaperCombinator;
                PreferencePath::anchor("MV", "MOVIE")
                    .with_join(
                        join(("MOVIE", "mid"), ("GENRE", "mid"), 0.9, Cardinality::ToMany),
                        &c,
                    )
                    .with_selection(sel(("GENRE", "genre"), &format!("g{i}"), 0.5), &c)
            })
            .collect();
        assert!(matches!(
            integrate_sq(&initial_select(), &paths, 0, MatchSpec::AtLeast(20)),
            Err(PrefError::TooManyCombinations { .. })
        ));
    }

    #[test]
    fn mq_matches_paper_shape() {
        let paths = vec![lynch(), comedy(), kidman()];
        let q = integrate_mq(&initial_select(), &paths, 0, MatchSpec::AtLeast(2), false).unwrap();
        let text = q.to_string();
        // Derived table with 3 union-all arms, grouped, having count >= 2.
        assert!(text.contains("UNION ALL"), "{text}");
        assert!(text.to_lowercase().contains("group by"), "{text}");
        assert!(text.contains("COUNT(*) >= 2"), "{text}");
        pqp_sql::parse_query(&text).unwrap();
        let s = q.as_select().unwrap();
        let TableFactor::Derived { query, .. } = &s.from[0] else { panic!() };
        let mut arms = 0;
        fn count_arms(s: &pqp_sql::SetExpr, n: &mut usize) {
            match s {
                pqp_sql::SetExpr::Select(_) => *n += 1,
                pqp_sql::SetExpr::Union { left, right, .. } => {
                    count_arms(left, n);
                    count_arms(right, n);
                }
            }
        }
        count_arms(&query.body, &mut arms);
        assert_eq!(arms, 3);
    }

    #[test]
    fn mq_ranked_output() {
        let paths = vec![comedy(), kidman()];
        let q = integrate_mq(&initial_select(), &paths, 0, MatchSpec::AtLeast(1), true).unwrap();
        let text = q.to_string();
        assert!(text.contains("DEGREE_OF_CONJUNCTION"), "{text}");
        assert!(text.contains("ORDER BY interest DESC"), "{text}");
        pqp_sql::parse_query(&text).unwrap();
    }

    #[test]
    fn mq_min_degree_having() {
        let paths = vec![comedy(), kidman()];
        let q =
            integrate_mq(&initial_select(), &paths, 0, MatchSpec::MinDegree(0.8), true).unwrap();
        let text = q.to_string();
        assert!(text.contains("HAVING DEGREE_OF_CONJUNCTION(pqp_doi) > 0.8"), "{text}");
    }

    #[test]
    fn mq_l_zero_includes_bare_partial() {
        let paths = vec![comedy()];
        let q = integrate_mq(&initial_select(), &paths, 0, MatchSpec::AtLeast(0), true).unwrap();
        let text = q.to_string();
        // Two arms: the bare (NULL-doi) partial plus the comedy partial.
        assert_eq!(text.matches("SELECT DISTINCT").count(), 2, "{text}");
        assert!(text.contains("NULL AS pqp_doi"), "{text}");
    }

    #[test]
    fn mq_requires_plain_projection() {
        let mut s = initial_select();
        s.projection = vec![b::item(b::count_star())];
        assert!(matches!(
            integrate_mq(&s, &[comedy()], 0, MatchSpec::AtLeast(1), false),
            Err(PrefError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn native_shape() {
        use pqp_engine::plan::TopKMatching;
        use pqp_engine::topk::ProbeSource;
        let paths = vec![lynch(), comedy(), kidman()];
        let spec =
            integrate_native(&initial_select(), &paths, 0, MatchSpec::AtLeast(2), true).unwrap();
        assert_eq!(spec.columns, vec!["title".to_string()]);
        assert_eq!(spec.probes.len(), 3);
        assert_eq!(spec.matching, TopKMatching::AtLeast(2));
        assert!(spec.rank);
        // Base: the original FROM only (no mandatory preferences), one
        // visible column plus three probe columns, DISTINCT.
        let s = spec.base.as_select().unwrap();
        assert!(s.distinct);
        assert_eq!(s.from.len(), 2, "{}", spec.base);
        assert_eq!(s.projection.len(), 4, "{}", spec.base);
        // Every path has joins, so every probe is a witness query; each
        // must be valid standalone SQL over the path's own chain.
        for p in &spec.probes {
            let ProbeSource::Witness(w) = &p.source else { panic!("expected witness") };
            pqp_sql::parse_query(&w.to_string()).unwrap();
        }
        // The kidman witness: CAST ⋈ ACTOR, selecting on the actor name,
        // projecting the CAST-side join column the base probes with.
        let ProbeSource::Witness(w) = &spec.probes[2].source else { panic!() };
        let text = w.to_string();
        assert!(text.contains("N. Kidman"), "{text}");
        assert!(text.to_uppercase().contains("SELECT DISTINCT"), "{text}");
        assert_eq!(w.as_select().unwrap().from.len(), 2, "{text}");
    }

    #[test]
    fn native_mandatory_integrates_into_base() {
        let paths = vec![lynch(), comedy()];
        let spec =
            integrate_native(&initial_select(), &paths, 1, MatchSpec::AtLeast(1), false).unwrap();
        let text = spec.base.to_string();
        // The mandatory Lynch chain joins into the base...
        assert!(text.contains("D. Lynch"), "{text}");
        assert_eq!(spec.base.as_select().unwrap().from.len(), 4, "{text}");
        // ...and only comedy remains as a probe.
        assert_eq!(spec.probes.len(), 1);
        assert!((spec.probes[0].doi - comedy().doi.value()).abs() < 1e-12);
    }

    #[test]
    fn native_selection_only_path_probes_a_literal() {
        use pqp_engine::topk::ProbeSource;
        let c = PaperCombinator;
        let date = PreferencePath::anchor("PL", "PLAY")
            .with_selection(sel(("PLAY", "date"), "2/7/2003", 0.6), &c);
        let spec =
            integrate_native(&initial_select(), &[date], 0, MatchSpec::AtLeast(1), false).unwrap();
        let ProbeSource::Literal(v) = &spec.probes[0].source else { panic!("expected literal") };
        assert_eq!(v, &Value::str("2/7/2003"));
        // The probe column is the selection attribute on the query's own var.
        assert!(spec.base.to_string().contains("PL.date AS pqp_p0"), "{}", spec.base);
    }

    #[test]
    fn native_rejects_shared_mandatory_vars() {
        // uptown (mandatory) and downtown (optional) share the to-one
        // PLAY→THEATRE hop under MQ's allocation: a standalone witness
        // cannot reproduce the shared variable, so native must refuse.
        let paths = vec![region("uptown"), region("downtown")];
        assert!(matches!(
            integrate_native(&initial_select(), &paths, 1, MatchSpec::AtLeast(1), false),
            Err(PrefError::UnsupportedQuery(_))
        ));
        // With both optional there is no sharing (each witness is its own
        // chain) — supported.
        assert!(
            integrate_native(&initial_select(), &paths, 0, MatchSpec::AtLeast(1), false).is_ok()
        );
    }

    #[test]
    fn native_min_degree_matching() {
        use pqp_engine::plan::TopKMatching;
        let spec =
            integrate_native(&initial_select(), &[comedy()], 0, MatchSpec::MinDegree(0.5), true)
                .unwrap();
        assert_eq!(spec.matching, TopKMatching::MinDegree(0.5));
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(3, 2), 3);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(60, 1), 60);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(2, 5), 0);
    }
}
