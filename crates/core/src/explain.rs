//! Result explanation: *why* did a personalized query return a row?
//!
//! The MQ rewrite already carries enough structure to answer this: each
//! partial query corresponds to one selected preference, so a row's
//! explanation is the set of preferences whose partial query returned it —
//! and its estimated degree of interest is their conjunction combination
//! (§3.3). This module exposes that as an API, turning the ranking number
//! into an inspectable justification ("comedy 0.81, N. Kidman 0.72 →
//! interest 0.947").

use crate::doi::{conjunction_degree, Doi};
use crate::error::{PrefError, Result};
use crate::integrate::{integrate_mq, MatchSpec};
use crate::path::PreferencePath;
use crate::personalize::Personalized;
use pqp_engine::Database;
use pqp_storage::Value;
use std::collections::{BTreeMap, HashMap};

/// The explanation of one result row.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The projected row (the original query's projection).
    pub row: Vec<Value>,
    /// The selected preferences this row satisfies, with their degrees.
    pub satisfied: Vec<(PreferencePath, Doi)>,
    /// The estimated degree of interest: conjunction of the degrees.
    pub interest: Doi,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cells: Vec<String> = self.row.iter().map(|v| v.to_string()).collect();
        writeln!(f, "[{}] interest {:.4}", cells.join(", "), self.interest.value())?;
        for (p, d) in &self.satisfied {
            writeln!(f, "    {:.4}  {p}", d.value())?;
        }
        Ok(())
    }
}

/// Explain every row of a personalization outcome: run one partial query per
/// selected preference and join the memberships.
///
/// Rows are returned in decreasing interest order. Rows of the initial query
/// satisfying none of the selected preferences are omitted (they would rank
/// at interest 0 and, with `L ≥ 1`, are not part of the personalized result).
pub fn explain(p: &Personalized, db: &Database) -> Result<Vec<Explanation>> {
    let select = p
        .original()
        .as_select()
        .cloned()
        .ok_or_else(|| PrefError::UnsupportedQuery("plain SELECT required".into()))?;
    let mut memberships: HashMap<Vec<String>, (Vec<Value>, Vec<usize>)> = HashMap::new();
    for (i, path) in p.paths.iter().enumerate() {
        let single =
            integrate_mq(&select, std::slice::from_ref(path), 0, MatchSpec::AtLeast(1), false)?;
        let rs = db.run_query(&single)?;
        for row in rs.rows {
            let key: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            memberships.entry(key).or_insert_with(|| (row.clone(), Vec::new())).1.push(i);
        }
    }
    // The threshold the personalization asked for (at least one satisfied
    // preference in every case: zero-preference rows have no explanation).
    let min_count = match p.matching {
        MatchSpec::AtLeast(l) => l.max(1),
        MatchSpec::MinDegree(_) => 1,
    };
    let mut out: Vec<Explanation> = memberships
        .into_values()
        .filter(|(_, idxs)| idxs.len() >= min_count)
        .map(|(row, idxs)| {
            let satisfied: Vec<(PreferencePath, Doi)> =
                idxs.iter().map(|&i| (p.paths[i].clone(), p.paths[i].doi)).collect();
            let degrees: Vec<Doi> = satisfied.iter().map(|(_, d)| *d).collect();
            Explanation { row, satisfied, interest: conjunction_degree(&degrees) }
        })
        .collect();
    if let MatchSpec::MinDegree(d) = p.matching {
        out.retain(|e| e.interest.value() > d);
    }
    out.sort_by(|a, b| b.interest.cmp(&a.interest).then_with(|| a.row.cmp(&b.row)));
    Ok(out)
}

/// Cross-check: the engine-side ranked MQ result must agree with the
/// client-side explanations (same rows, same interest). Returns the number
/// of rows checked. Primarily a validation utility (used by tests and the
/// examples). Supports `AtLeast(L ≥ 1)` and `MinDegree` matching; with
/// `L = 0` the engine result also contains unexplained (zero-preference)
/// rows, which this check does not model.
pub fn verify_against_engine(p: &Personalized, db: &Database) -> Result<usize> {
    let explanations = explain(p, db)?;
    let mut ranked = p.clone();
    ranked.rank = true;
    let rs = db.run_query(&ranked.mq()?)?;
    let by_key: BTreeMap<Vec<String>, f64> = rs
        .rows
        .iter()
        .map(|r| {
            let key: Vec<String> = r[..r.len() - 1].iter().map(|v| v.to_string()).collect();
            (key, r[r.len() - 1].as_f64().unwrap_or(0.0))
        })
        .collect();
    if by_key.len() != explanations.len() {
        return Err(PrefError::Engine(format!(
            "engine returned {} rows, explanation found {}",
            by_key.len(),
            explanations.len()
        )));
    }
    for e in &explanations {
        let key: Vec<String> = e.row.iter().map(|v| v.to_string()).collect();
        let Some(engine_interest) = by_key.get(&key) else {
            return Err(PrefError::Engine(format!("row {key:?} missing from engine result")));
        };
        if (engine_interest - e.interest.value()).abs() > 1e-9 {
            return Err(PrefError::Engine(format!(
                "interest mismatch on {key:?}: engine {engine_interest}, client {}",
                e.interest.value()
            )));
        }
    }
    Ok(explanations.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::InMemoryGraph;
    use crate::personalize::{personalize, PersonalizeOptions};
    use crate::profile::Profile;
    use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};

    /// A pocket movies instance:
    ///
    /// | movie | genre    | star   | plays tonight |
    /// |-------|----------|--------|---------------|
    /// | Alpha | comedy   | Kidman | yes           |
    /// | Beta  | comedy   | —      | yes           |
    /// | Gamma | —        | Kidman | yes           |
    /// | Delta | thriller | —      | yes           |
    /// | Omega | cooking  | —      | yes           |
    ///
    /// Profile paths (join degree × selection degree):
    /// thriller 1.0 × 0.9 = 0.9, comedy 0.9 × 0.9 = 0.81,
    /// Kidman 0.8 × 0.9 = 0.72.
    fn fixture() -> (Database, Profile) {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c.create_table(TableSchema::new(
            "PLAY",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("date", DataType::Str)],
        ))
        .unwrap();
        c.create_table(TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        ))
        .unwrap();
        c.create_table(TableSchema::new(
            "CAST",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("aname", DataType::Str)],
        ))
        .unwrap();
        let ins = |t: &str, rows: Vec<Vec<Value>>| {
            let t = c.table(t).unwrap();
            let mut t = t.write();
            for r in rows {
                t.insert(r).unwrap();
            }
        };
        ins(
            "MOVIE",
            vec![
                vec![1.into(), "Alpha".into()],
                vec![2.into(), "Beta".into()],
                vec![3.into(), "Gamma".into()],
                vec![4.into(), "Delta".into()],
                vec![5.into(), "Omega".into()],
            ],
        );
        ins("PLAY", (1..=5i64).map(|m| vec![m.into(), "tonight".into()]).collect());
        ins(
            "GENRE",
            vec![
                vec![1.into(), "comedy".into()],
                vec![2.into(), "comedy".into()],
                vec![4.into(), "thriller".into()],
                vec![5.into(), "cooking".into()],
            ],
        );
        ins("CAST", vec![vec![1.into(), "Kidman".into()], vec![3.into(), "Kidman".into()]]);

        let mut profile = Profile::new("julie");
        profile.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        profile.add_join("MOVIE", "mid", "CAST", "mid", 0.8).unwrap();
        profile.add_selection("GENRE", "genre", "thriller", 1.0).unwrap();
        profile.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        profile.add_selection("CAST", "aname", "Kidman", 0.9).unwrap();
        (Database::new(c), profile)
    }

    fn run(db: &Database, profile: &Profile, l: usize) -> Personalized {
        let graph = InMemoryGraph::build(profile, db.catalog()).unwrap();
        let query = pqp_sql::parse_query(
            "select MV.title from MOVIE MV, PLAY PL where MV.mid = PL.mid and PL.date = 'tonight'",
        )
        .unwrap();
        personalize(&query, &graph, db.catalog(), PersonalizeOptions::builder().k(3).l(l).build())
            .unwrap()
    }

    fn title(e: &Explanation) -> String {
        e.row[0].to_string()
    }

    #[test]
    fn memberships_join_across_partial_queries() {
        let (db, profile) = fixture();
        let p = run(&db, &profile, 1);
        let es = explain(&p, &db).unwrap();
        // Omega satisfies no selected preference → no explanation.
        let titles: Vec<String> = es.iter().map(title).collect();
        assert_eq!(titles.len(), 4, "{es:#?}");
        assert!(!titles.contains(&"Omega".to_string()));
        // Alpha is returned by two partial queries (comedy and Kidman) but
        // appears once, with both memberships joined.
        let alpha = es.iter().find(|e| title(e) == "Alpha").unwrap();
        let mut degrees: Vec<f64> = alpha.satisfied.iter().map(|(_, d)| d.value()).collect();
        degrees.sort_by(f64::total_cmp);
        assert_eq!(degrees.len(), 2);
        assert!((degrees[0] - 0.72).abs() < 1e-12);
        assert!((degrees[1] - 0.81).abs() < 1e-12);
        // Single-membership rows keep exactly one satisfied preference.
        let delta = es.iter().find(|e| title(e) == "Delta").unwrap();
        assert_eq!(delta.satisfied.len(), 1);
    }

    #[test]
    fn interest_is_the_conjunction_combination() {
        let (db, profile) = fixture();
        let p = run(&db, &profile, 1);
        let es = explain(&p, &db).unwrap();
        // Two satisfied preferences combine as 1 − ∏(1 − dᵢ).
        let alpha = es.iter().find(|e| title(e) == "Alpha").unwrap();
        let expected = 1.0 - (1.0 - 0.81) * (1.0 - 0.72);
        assert!((alpha.interest.value() - expected).abs() < 1e-12);
        // A single satisfied preference contributes its own degree.
        let delta = es.iter().find(|e| title(e) == "Delta").unwrap();
        assert!((delta.interest.value() - 0.9).abs() < 1e-12);
        let gamma = es.iter().find(|e| title(e) == "Gamma").unwrap();
        assert!((gamma.interest.value() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn explanations_are_sorted_by_decreasing_interest() {
        let (db, profile) = fixture();
        let p = run(&db, &profile, 1);
        let es = explain(&p, &db).unwrap();
        let titles: Vec<String> = es.iter().map(title).collect();
        // Alpha 0.9468 > Delta 0.9 > Beta 0.81 > Gamma 0.72.
        assert_eq!(titles, ["Alpha", "Delta", "Beta", "Gamma"]);
        for w in es.windows(2) {
            assert!(w[0].interest >= w[1].interest);
        }
    }

    #[test]
    fn at_least_l_threshold_filters_rows() {
        let (db, profile) = fixture();
        let p = run(&db, &profile, 2);
        let es = explain(&p, &db).unwrap();
        // Only Alpha satisfies two of the selected preferences.
        assert_eq!(es.len(), 1, "{es:#?}");
        assert_eq!(title(&es[0]), "Alpha");
        assert_eq!(es[0].satisfied.len(), 2);
    }

    #[test]
    fn display_shows_row_interest_and_reasons() {
        let (db, profile) = fixture();
        let p = run(&db, &profile, 1);
        let es = explain(&p, &db).unwrap();
        let text = es[0].to_string();
        assert!(text.contains("Alpha"), "{text}");
        assert!(text.contains("interest 0.9468"), "{text}");
        assert!(text.contains("comedy"), "{text}");
    }

    #[test]
    fn client_explanations_agree_with_engine_ranking() {
        let (db, profile) = fixture();
        let p = run(&db, &profile, 1);
        assert_eq!(verify_against_engine(&p, &db).unwrap(), 4);
    }
}
