//! Result explanation: *why* did a personalized query return a row?
//!
//! The MQ rewrite already carries enough structure to answer this: each
//! partial query corresponds to one selected preference, so a row's
//! explanation is the set of preferences whose partial query returned it —
//! and its estimated degree of interest is their conjunction combination
//! (§3.3). This module exposes that as an API, turning the ranking number
//! into an inspectable justification ("comedy 0.81, N. Kidman 0.72 →
//! interest 0.947").

use crate::doi::{conjunction_degree, Doi};
use crate::error::{PrefError, Result};
use crate::integrate::{integrate_mq, MatchSpec};
use crate::path::PreferencePath;
use crate::personalize::Personalized;
use pqp_engine::Database;
use pqp_storage::Value;
use std::collections::{BTreeMap, HashMap};

/// The explanation of one result row.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The projected row (the original query's projection).
    pub row: Vec<Value>,
    /// The selected preferences this row satisfies, with their degrees.
    pub satisfied: Vec<(PreferencePath, Doi)>,
    /// The estimated degree of interest: conjunction of the degrees.
    pub interest: Doi,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cells: Vec<String> = self.row.iter().map(|v| v.to_string()).collect();
        writeln!(f, "[{}] interest {:.4}", cells.join(", "), self.interest.value())?;
        for (p, d) in &self.satisfied {
            writeln!(f, "    {:.4}  {p}", d.value())?;
        }
        Ok(())
    }
}

/// Explain every row of a personalization outcome: run one partial query per
/// selected preference and join the memberships.
///
/// Rows are returned in decreasing interest order. Rows of the initial query
/// satisfying none of the selected preferences are omitted (they would rank
/// at interest 0 and, with `L ≥ 1`, are not part of the personalized result).
pub fn explain(p: &Personalized, db: &Database) -> Result<Vec<Explanation>> {
    let select = p
        .original()
        .as_select()
        .cloned()
        .ok_or_else(|| PrefError::UnsupportedQuery("plain SELECT required".into()))?;
    let mut memberships: HashMap<Vec<String>, (Vec<Value>, Vec<usize>)> = HashMap::new();
    for (i, path) in p.paths.iter().enumerate() {
        let single = integrate_mq(
            &select,
            std::slice::from_ref(path),
            0,
            MatchSpec::AtLeast(1),
            false,
        )?;
        let rs = db.run_query(&single)?;
        for row in rs.rows {
            let key: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            memberships
                .entry(key)
                .or_insert_with(|| (row.clone(), Vec::new()))
                .1
                .push(i);
        }
    }
    // The threshold the personalization asked for (at least one satisfied
    // preference in every case: zero-preference rows have no explanation).
    let min_count = match p.matching {
        MatchSpec::AtLeast(l) => l.max(1),
        MatchSpec::MinDegree(_) => 1,
    };
    let mut out: Vec<Explanation> = memberships
        .into_values()
        .filter(|(_, idxs)| idxs.len() >= min_count)
        .map(|(row, idxs)| {
            let satisfied: Vec<(PreferencePath, Doi)> =
                idxs.iter().map(|&i| (p.paths[i].clone(), p.paths[i].doi)).collect();
            let degrees: Vec<Doi> = satisfied.iter().map(|(_, d)| *d).collect();
            Explanation { row, satisfied, interest: conjunction_degree(&degrees) }
        })
        .collect();
    if let MatchSpec::MinDegree(d) = p.matching {
        out.retain(|e| e.interest.value() > d);
    }
    out.sort_by(|a, b| b.interest.cmp(&a.interest).then_with(|| a.row.cmp(&b.row)));
    Ok(out)
}

/// Cross-check: the engine-side ranked MQ result must agree with the
/// client-side explanations (same rows, same interest). Returns the number
/// of rows checked. Primarily a validation utility (used by tests and the
/// examples). Supports `AtLeast(L ≥ 1)` and `MinDegree` matching; with
/// `L = 0` the engine result also contains unexplained (zero-preference)
/// rows, which this check does not model.
pub fn verify_against_engine(p: &Personalized, db: &Database) -> Result<usize> {
    let explanations = explain(p, db)?;
    let mut ranked = p.clone();
    ranked.rank = true;
    let rs = db.run_query(&ranked.mq()?)?;
    let by_key: BTreeMap<Vec<String>, f64> = rs
        .rows
        .iter()
        .map(|r| {
            let key: Vec<String> =
                r[..r.len() - 1].iter().map(|v| v.to_string()).collect();
            (key, r[r.len() - 1].as_f64().unwrap_or(0.0))
        })
        .collect();
    if by_key.len() != explanations.len() {
        return Err(PrefError::Engine(format!(
            "engine returned {} rows, explanation found {}",
            by_key.len(),
            explanations.len()
        )));
    }
    for e in &explanations {
        let key: Vec<String> = e.row.iter().map(|v| v.to_string()).collect();
        let Some(engine_interest) = by_key.get(&key) else {
            return Err(PrefError::Engine(format!("row {key:?} missing from engine result")));
        };
        if (engine_interest - e.interest.value()).abs() > 1e-9 {
            return Err(PrefError::Engine(format!(
                "interest mismatch on {key:?}: engine {engine_interest}, client {}",
                e.interest.value()
            )));
        }
    }
    Ok(explanations.len())
}
