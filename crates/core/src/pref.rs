//! Atomic user preferences: the stored unit of a profile (§3.1).

use crate::doi::Doi;
use pqp_storage::Value;
use std::fmt;

/// A schema-level attribute reference `TABLE.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrRef {
    pub table: String,
    pub column: String,
}

impl AttrRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> AttrRef {
        AttrRef { table: table.into(), column: column.into() }
    }

    /// Case-insensitive equality.
    pub fn same_as(&self, other: &AttrRef) -> bool {
        self.table.eq_ignore_ascii_case(&other.table)
            && self.column.eq_ignore_ascii_case(&other.column)
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// An atomic preference: a degree of interest in one atomic query element.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicPreference {
    /// Interest in the selection condition `attr = value`.
    Selection { attr: AttrRef, value: Value, doi: Doi },
    /// Interest in the join condition `from = to`, *directed*: the `from`
    /// side is the relation already in the query (§3.1 stores the two
    /// directions as separate entries, possibly with different degrees).
    Join { from: AttrRef, to: AttrRef, doi: Doi },
}

impl AtomicPreference {
    /// The degree of interest.
    pub fn doi(&self) -> Doi {
        match self {
            AtomicPreference::Selection { doi, .. } | AtomicPreference::Join { doi, .. } => *doi,
        }
    }

    /// Whether this is a selection preference.
    pub fn is_selection(&self) -> bool {
        matches!(self, AtomicPreference::Selection { .. })
    }
}

impl fmt::Display for AtomicPreference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicPreference::Selection { attr, value, doi } => {
                write!(f, "[ {attr}={}, {doi} ]", pqp_sql::sql_literal(value))
            }
            AtomicPreference::Join { from, to, doi } => {
                write!(f, "[ {from}={to}, {doi} ]")
            }
        }
    }
}
