//! Preference paths: transitive preferences as directed paths in the
//! personalization graph (§3.2), anchored at a query-graph node.

use crate::doi::{Combinator, Doi, PaperCombinator};
use crate::graph::{JoinEdge, SelectionEdge};
use pqp_storage::Cardinality;
use std::fmt;

/// A (partial or complete) preference path.
///
/// A path starts at a tuple variable of the query (`start_var`, ranging over
/// `start_table`), follows zero or more composable join edges outward, and —
/// when complete — ends with a selection edge. A path with `selection: None`
/// is a transitive join still under expansion; a path with a selection is a
/// (transitive) selection preference ready for integration.
#[derive(Debug, Clone, PartialEq)]
pub struct PreferencePath {
    pub start_var: String,
    pub start_table: String,
    pub joins: Vec<JoinEdge>,
    pub selection: Option<SelectionEdge>,
    /// Degree of interest: the transitive combination of all edge degrees.
    pub doi: Doi,
}

impl PreferencePath {
    /// A length-zero path anchored at a query node.
    pub fn anchor(start_var: impl Into<String>, start_table: impl Into<String>) -> PreferencePath {
        PreferencePath {
            start_var: start_var.into(),
            start_table: start_table.into(),
            joins: Vec::new(),
            selection: None,
            doi: Doi::ONE,
        }
    }

    /// Extend with a join edge, recomputing the degree with `comb`.
    pub fn with_join(&self, edge: JoinEdge, comb: &impl Combinator) -> PreferencePath {
        let mut joins = self.joins.clone();
        joins.push(edge);
        let degrees: Vec<Doi> = joins.iter().map(|j| j.doi).collect();
        PreferencePath {
            start_var: self.start_var.clone(),
            start_table: self.start_table.clone(),
            doi: comb.transitive(&degrees),
            joins,
            selection: None,
        }
    }

    /// Complete with a selection edge, recomputing the degree with `comb`.
    pub fn with_selection(&self, sel: SelectionEdge, comb: &impl Combinator) -> PreferencePath {
        let mut degrees: Vec<Doi> = self.joins.iter().map(|j| j.doi).collect();
        degrees.push(sel.doi);
        PreferencePath {
            start_var: self.start_var.clone(),
            start_table: self.start_table.clone(),
            joins: self.joins.clone(),
            selection: Some(sel),
            doi: comb.transitive(&degrees),
        }
    }

    /// Recompute the degree with the default (paper) semantics.
    pub fn recompute_doi(&mut self) {
        let mut degrees: Vec<Doi> = self.joins.iter().map(|j| j.doi).collect();
        if let Some(s) = &self.selection {
            degrees.push(s.doi);
        }
        self.doi = PaperCombinator.transitive(&degrees);
    }

    /// Whether the path is a complete (transitive) selection.
    pub fn is_selection(&self) -> bool {
        self.selection.is_some()
    }

    /// Number of edges (joins + selection).
    pub fn len(&self) -> usize {
        self.joins.len() + usize::from(self.selection.is_some())
    }

    /// True for a freshly anchored path with no edges.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The relation at the end of the join chain (where the next edge must
    /// be composable).
    pub fn end_table(&self) -> &str {
        self.joins.last().map(|j| j.to.table.as_str()).unwrap_or(&self.start_table)
    }

    /// Upper-cased names of every relation the path visits (including the
    /// start), for cycle pruning.
    pub fn visited_tables(&self) -> Vec<String> {
        let mut out = vec![self.start_table.to_ascii_uppercase()];
        for j in &self.joins {
            out.push(j.to.table.to_ascii_uppercase());
        }
        out
    }

    /// Whether every join, in the direction of the selection, is to-one
    /// (the precondition for syntactic conflicts, §5, and for forced tuple
    /// variable sharing, §6).
    pub fn all_joins_to_one(&self) -> bool {
        self.joins.iter().all(|j| j.cardinality == Cardinality::ToOne)
    }

    /// A stable signature of the join chain at the relation/attribute level:
    /// `(from_table, from_col, to_table, to_col)` per hop, upper-cased.
    pub fn join_signature(&self) -> Vec<(String, String, String, String)> {
        self.joins
            .iter()
            .map(|j| {
                (
                    j.from.table.to_ascii_uppercase(),
                    j.from.column.to_ascii_lowercase(),
                    j.to.table.to_ascii_uppercase(),
                    j.to.column.to_ascii_lowercase(),
                )
            })
            .collect()
    }
}

impl fmt::Display for PreferencePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for j in &self.joins {
            parts.push(format!("{}={}", j.from, j.to));
        }
        if let Some(s) = &self.selection {
            parts.push(format!("{}={}", s.attr, pqp_sql::sql_literal(&s.value)));
        }
        write!(f, "⟨{} @{} | {}⟩", parts.join(" and "), self.start_var, self.doi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pref::AttrRef;
    use pqp_storage::Value;

    fn join(from: (&str, &str), to: (&str, &str), doi: f64, card: Cardinality) -> JoinEdge {
        JoinEdge {
            from: AttrRef::new(from.0, from.1),
            to: AttrRef::new(to.0, to.1),
            doi: Doi::new(doi).unwrap(),
            cardinality: card,
        }
    }

    fn sel(attr: (&str, &str), value: &str, doi: f64) -> SelectionEdge {
        SelectionEdge {
            attr: AttrRef::new(attr.0, attr.1),
            value: Value::str(value),
            doi: Doi::new(doi).unwrap(),
        }
    }

    #[test]
    fn paper_kidman_path_degree() {
        // MOVIE →(0.8) CAST →(1.0) ACTOR, name='N. Kidman' (0.9) ⇒ 0.72.
        let comb = PaperCombinator;
        let p = PreferencePath::anchor("MV", "MOVIE")
            .with_join(join(("MOVIE", "mid"), ("CAST", "mid"), 0.8, Cardinality::ToMany), &comb)
            .with_join(join(("CAST", "aid"), ("ACTOR", "aid"), 1.0, Cardinality::ToOne), &comb)
            .with_selection(sel(("ACTOR", "name"), "N. Kidman", 0.9), &comb);
        assert!((p.doi.value() - 0.72).abs() < 1e-12);
        assert!(p.is_selection());
        assert_eq!(p.len(), 3);
        assert_eq!(p.end_table(), "ACTOR");
        assert_eq!(p.visited_tables(), vec!["MOVIE", "CAST", "ACTOR"]);
        assert!(!p.all_joins_to_one());
    }

    #[test]
    fn anchor_has_unit_degree() {
        let p = PreferencePath::anchor("MV", "MOVIE");
        assert_eq!(p.doi, Doi::ONE);
        assert!(p.is_empty());
        assert_eq!(p.end_table(), "MOVIE");
    }

    #[test]
    fn zero_join_selection() {
        let comb = PaperCombinator;
        let p = PreferencePath::anchor("GN", "GENRE")
            .with_selection(sel(("GENRE", "genre"), "comedy", 0.9), &comb);
        assert_eq!(p.doi.value(), 0.9);
        assert!(p.all_joins_to_one(), "vacuously true with no joins");
    }

    #[test]
    fn join_signature_is_case_normalized() {
        let comb = PaperCombinator;
        let p = PreferencePath::anchor("mv", "Movie")
            .with_join(join(("Movie", "Mid"), ("Genre", "MID"), 0.5, Cardinality::ToMany), &comb);
        assert_eq!(
            p.join_signature(),
            vec![("MOVIE".into(), "mid".into(), "GENRE".into(), "mid".into())]
        );
    }

    #[test]
    fn recompute_matches_builder() {
        let comb = PaperCombinator;
        let mut p = PreferencePath::anchor("MV", "MOVIE")
            .with_join(join(("MOVIE", "mid"), ("GENRE", "mid"), 0.9, Cardinality::ToMany), &comb)
            .with_selection(sel(("GENRE", "genre"), "comedy", 0.9), &comb);
        let d = p.doi;
        p.recompute_doi();
        assert_eq!(p.doi, d);
    }
}
