//! Interest criteria `CI` governing how many preferences are selected
//! (§5.1, Table 1).

use crate::doi::{conjunction_degree, disjunction_degree, Doi};
use std::fmt;

/// A criterion over the (ordered, decreasing) set of selected degrees: the
/// algorithm keeps accepting preferences while `CI(P_K ∪ {candidate})`
/// holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InterestCriterion {
    /// `t ≤ r`: select at most `r` preferences.
    TopK(usize),
    /// `d_t > d`: select preferences with degree strictly greater than `d`.
    MinDegree(f64),
    /// Select preferences while their disjunction degree `(∑dᵢ)/t` stays
    /// strictly greater than `d`.
    DisjunctionAbove(f64),
    /// Select preferences while their conjunction degree `1 − ∏(1−dᵢ)`
    /// stays strictly greater than `d`.
    ConjunctionAbove(f64),
}

impl InterestCriterion {
    /// Would the criterion still hold after adding `candidate` to the
    /// already-selected degrees `current`?
    pub fn accepts(&self, current: &[Doi], candidate: Doi) -> bool {
        match *self {
            InterestCriterion::TopK(r) => current.len() < r,
            InterestCriterion::MinDegree(d) => candidate.value() > d,
            InterestCriterion::DisjunctionAbove(d) => {
                let mut all: Vec<Doi> = current.to_vec();
                all.push(candidate);
                disjunction_degree(&all).value() > d
            }
            InterestCriterion::ConjunctionAbove(d) => {
                let mut all: Vec<Doi> = current.to_vec();
                all.push(candidate);
                conjunction_degree(&all).value() > d
            }
        }
    }

    /// Whether acceptance is monotone in the candidate degree (given a fixed
    /// current set): if a candidate with degree `d` is rejected, every
    /// candidate with degree `≤ d` is rejected too. All of Table 1's
    /// criteria have this property, which the selection algorithm's early
    /// termination depends on.
    pub fn is_monotone(&self) -> bool {
        true
    }

    /// Whether a rejection is *permanent*: acceptance never depends on the
    /// selected-so-far set in a way that could admit the candidate later.
    ///
    /// True for `TopK` (the set only grows) and `MinDegree` (set
    /// independent) — for these the algorithm may prune expansion branches
    /// eagerly (paper §5.2 rule iv). The disjunction/conjunction criteria
    /// become *easier* to satisfy as more high-degree preferences are
    /// selected, so a candidate rejected against the current set may be
    /// acceptable by the time it is popped; eager pruning would violate
    /// completeness (Theorem 2) for them.
    pub fn rejection_is_permanent(&self) -> bool {
        matches!(self, InterestCriterion::TopK(_) | InterestCriterion::MinDegree(_))
    }

    /// Whether the criterion value is monotone non-increasing along the
    /// (decreasing-degree) selection stream, making the first failing prefix
    /// the last one to check. True for everything except
    /// `ConjunctionAbove`, whose value *grows* with every added preference:
    /// per §5.1 (`K = max{t : CI(P_t)}`), the algorithm must consume the
    /// whole stream and keep the largest satisfying prefix.
    pub fn prefix_failure_is_final(&self) -> bool {
        !matches!(self, InterestCriterion::ConjunctionAbove(_))
    }
}

impl fmt::Display for InterestCriterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterestCriterion::TopK(r) => write!(f, "top-{r}"),
            InterestCriterion::MinDegree(d) => write!(f, "degree > {d}"),
            InterestCriterion::DisjunctionAbove(d) => write!(f, "disjunction > {d}"),
            InterestCriterion::ConjunctionAbove(d) => write!(f, "conjunction > {d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(x: f64) -> Doi {
        Doi::new(x).unwrap()
    }

    #[test]
    fn top_k() {
        let ci = InterestCriterion::TopK(2);
        assert!(ci.accepts(&[], d(0.1)));
        assert!(ci.accepts(&[d(0.9)], d(0.1)));
        assert!(!ci.accepts(&[d(0.9), d(0.8)], d(0.7)));
        assert!(!InterestCriterion::TopK(0).accepts(&[], d(1.0)));
    }

    #[test]
    fn min_degree_is_strict() {
        let ci = InterestCriterion::MinDegree(0.5);
        assert!(ci.accepts(&[], d(0.51)));
        assert!(!ci.accepts(&[], d(0.5)));
        assert!(!ci.accepts(&[], d(0.49)));
    }

    #[test]
    fn disjunction_above_tracks_average() {
        let ci = InterestCriterion::DisjunctionAbove(0.6);
        // avg(0.9, 0.5) = 0.7 > 0.6 → accepted.
        assert!(ci.accepts(&[d(0.9)], d(0.5)));
        // avg(0.9, 0.2) = 0.55 → rejected.
        assert!(!ci.accepts(&[d(0.9)], d(0.2)));
    }

    #[test]
    fn conjunction_above() {
        let ci = InterestCriterion::ConjunctionAbove(0.9);
        // 1-(1-0.8)(1-0.7) = 0.94 > 0.9.
        assert!(ci.accepts(&[d(0.8)], d(0.7)));
        // First candidate alone: 0.8 ≤ 0.9 → rejected.
        assert!(!ci.accepts(&[], d(0.8)));
    }

    #[test]
    fn monotonicity_in_candidate_degree() {
        // For every criterion: rejecting d implies rejecting anything lower.
        let criteria = [
            InterestCriterion::TopK(3),
            InterestCriterion::MinDegree(0.4),
            InterestCriterion::DisjunctionAbove(0.5),
            InterestCriterion::ConjunctionAbove(0.7),
        ];
        let current = [d(0.9), d(0.6)];
        for ci in criteria {
            let mut prev_accepted = true;
            for i in (0..=10).rev() {
                let cand = d(i as f64 / 10.0);
                let a = ci.accepts(&current, cand);
                if !prev_accepted {
                    assert!(!a, "{ci}: non-monotone at {cand}");
                }
                prev_accepted = a;
            }
        }
    }
}
