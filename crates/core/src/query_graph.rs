//! Mapping a query onto the personalization graph (§5): the query graph.
//!
//! The query graph contains one node per tuple variable (relations may be
//! replicated) plus the selection and join edges of the qualification's
//! conjuncts. Preference paths attach to its nodes and expand outward.

use crate::error::{PrefError, Result};
use pqp_sql::ast::{BinaryOp, Expr, Select, SelectItem, TableFactor};
use pqp_storage::{Catalog, Value};
use std::collections::HashSet;

/// A tuple variable of the query: `var` ranges over `table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryNode {
    pub var: String,
    pub table: String,
}

/// A selection condition of the query: `var.column = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySelection {
    pub var: String,
    pub column: String,
    pub value: Value,
}

/// A join condition of the query: `left_var.left_col = right_var.right_col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryJoin {
    pub left_var: String,
    pub left_col: String,
    pub right_var: String,
    pub right_col: String,
}

/// The query represented as a sub-graph of the personalization graph.
#[derive(Debug, Clone, Default)]
pub struct QueryGraph {
    pub nodes: Vec<QueryNode>,
    pub selections: Vec<QuerySelection>,
    pub joins: Vec<QueryJoin>,
    /// Upper-cased names of relations appearing in the query (for the cycle
    /// pruning rule: preference paths must not re-enter the query).
    tables: HashSet<String>,
}

impl QueryGraph {
    /// Build the query graph of a SELECT block.
    ///
    /// The paper's framework personalizes conjunctive SPJ queries: the FROM
    /// clause must contain base tables only, and only the conjunctive
    /// equality conditions of the qualification become graph edges (other
    /// conjuncts — inequalities, disjunctions — are preserved in the query
    /// but play no role in preference selection).
    pub fn from_select(s: &Select, catalog: &Catalog) -> Result<QueryGraph> {
        let _span = pqp_obs::span("query_graph");
        let mut g = QueryGraph::default();
        for f in &s.from {
            match f {
                TableFactor::Table { name, alias } => {
                    let schema = catalog.schema_of(name).map_err(|_| {
                        PrefError::UnsupportedQuery(format!("unknown table `{name}`"))
                    })?;
                    let var = alias.clone().unwrap_or_else(|| name.clone());
                    g.tables.insert(schema.name.to_ascii_uppercase());
                    g.nodes.push(QueryNode { var, table: schema.name.clone() });
                }
                TableFactor::Derived { .. } => {
                    return Err(PrefError::UnsupportedQuery(
                        "derived tables cannot be personalized".into(),
                    ));
                }
            }
        }
        if g.nodes.is_empty() {
            return Err(PrefError::UnsupportedQuery("query has no FROM clause".into()));
        }
        if let Some(w) = &s.selection {
            for c in w.conjuncts() {
                g.classify_conjunct(c)?;
            }
        }
        Ok(g)
    }

    fn classify_conjunct(&mut self, c: &Expr) -> Result<()> {
        if let Expr::Binary { left, op: BinaryOp::Eq, right } = c {
            match (&**left, &**right) {
                (Expr::Column { .. }, Expr::Literal(v)) => {
                    if let Some((var, col)) = self.resolve_column(left)? {
                        self.selections.push(QuerySelection { var, column: col, value: v.clone() });
                    }
                    return Ok(());
                }
                (Expr::Literal(v), Expr::Column { .. }) => {
                    if let Some((var, col)) = self.resolve_column(right)? {
                        self.selections.push(QuerySelection { var, column: col, value: v.clone() });
                    }
                    return Ok(());
                }
                (Expr::Column { .. }, Expr::Column { .. }) => {
                    let l = self.resolve_column(left)?;
                    let r = self.resolve_column(right)?;
                    if let (Some((lv, lc)), Some((rv, rc))) = (l, r) {
                        if !lv.eq_ignore_ascii_case(&rv) {
                            self.joins.push(QueryJoin {
                                left_var: lv,
                                left_col: lc,
                                right_var: rv,
                                right_col: rc,
                            });
                        }
                    }
                    return Ok(());
                }
                _ => {}
            }
        }
        // Non-equality or complex conjuncts are legal; they just do not
        // contribute edges.
        Ok(())
    }

    /// Resolve a column AST to (tuple variable, column name). Unqualified
    /// columns resolve if exactly one node's table is plausible; qualified
    /// ones must match a tuple variable.
    fn resolve_column(&self, e: &Expr) -> Result<Option<(String, String)>> {
        let Expr::Column { qualifier, name } = e else {
            return Ok(None);
        };
        match qualifier {
            Some(q) => {
                let node =
                    self.nodes.iter().find(|n| n.var.eq_ignore_ascii_case(q)).ok_or_else(|| {
                        PrefError::UnsupportedQuery(format!("unknown tuple variable `{q}`"))
                    })?;
                Ok(Some((node.var.clone(), name.clone())))
            }
            None => {
                // Without schema info per node we cannot disambiguate here;
                // accept only the single-node case.
                if self.nodes.len() == 1 {
                    Ok(Some((self.nodes[0].var.clone(), name.clone())))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Whether a relation (by name) participates in the query.
    pub fn contains_table(&self, table: &str) -> bool {
        self.tables.contains(&table.to_ascii_uppercase())
    }

    /// The node of a tuple variable.
    pub fn node(&self, var: &str) -> Option<&QueryNode> {
        self.nodes.iter().find(|n| n.var.eq_ignore_ascii_case(var))
    }

    /// Selection conditions attached to `var` on `column`.
    pub fn selections_on<'a>(
        &'a self,
        var: &'a str,
        column: &'a str,
    ) -> impl Iterator<Item = &'a QuerySelection> + 'a {
        self.selections.iter().filter(move |s| {
            s.var.eq_ignore_ascii_case(var) && s.column.eq_ignore_ascii_case(column)
        })
    }

    /// Join edges leaving `var` (in either syntactic direction), normalized
    /// so the returned tuples read (var, col, other_var, other_col).
    pub fn joins_from_var(&self, var: &str) -> Vec<(String, String, String, String)> {
        let mut out = Vec::new();
        for j in &self.joins {
            if j.left_var.eq_ignore_ascii_case(var) {
                out.push((
                    j.left_var.clone(),
                    j.left_col.clone(),
                    j.right_var.clone(),
                    j.right_col.clone(),
                ));
            } else if j.right_var.eq_ignore_ascii_case(var) {
                out.push((
                    j.right_var.clone(),
                    j.right_col.clone(),
                    j.left_var.clone(),
                    j.left_col.clone(),
                ));
            }
        }
        out
    }

    /// Whether the query graph is connected (the paper notes all but the
    /// most artificial queries are).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen: HashSet<String> = HashSet::new();
        let mut stack = vec![self.nodes[0].var.to_ascii_uppercase()];
        while let Some(v) = stack.pop() {
            if !seen.insert(v.clone()) {
                continue;
            }
            for j in &self.joins {
                let (a, b) = (j.left_var.to_ascii_uppercase(), j.right_var.to_ascii_uppercase());
                if a == v && !seen.contains(&b) {
                    stack.push(b);
                } else if b == v && !seen.contains(&a) {
                    stack.push(a);
                }
            }
        }
        seen.len() == self.nodes.len()
    }

    /// The projection columns of a select as (var, column) pairs, if every
    /// item is a plain column (required by the MQ rewrite's GROUP BY).
    pub fn plain_projection(s: &Select) -> Option<Vec<(Option<String>, String)>> {
        let mut out = Vec::new();
        for item in &s.projection {
            match item {
                SelectItem::Expr { expr: Expr::Column { qualifier, name }, .. } => {
                    out.push((qualifier.clone(), name.clone()));
                }
                _ => return None,
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqp_storage::{ColumnDef, DataType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, cols) in [
            ("MOVIE", vec!["mid", "title"]),
            ("PLAY", vec!["tid", "mid", "date"]),
            ("GENRE", vec!["mid", "genre"]),
        ] {
            c.create_table(TableSchema::new(
                name,
                cols.iter().map(|n| ColumnDef::new(*n, DataType::Str)).collect(),
            ))
            .unwrap();
        }
        c
    }

    fn parse_select(sql: &str) -> Select {
        let q = pqp_sql::parse_query(sql).unwrap();
        q.as_select().unwrap().clone()
    }

    #[test]
    fn paper_initial_query() {
        let s = parse_select(
            "select MV.title from MOVIE MV, PLAY PL \
             where MV.mid = PL.mid and PL.date = '2/7/2003'",
        );
        let g = QueryGraph::from_select(&s, &catalog()).unwrap();
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.joins.len(), 1);
        assert_eq!(g.selections.len(), 1);
        assert_eq!(g.selections[0].var, "PL");
        assert!(g.contains_table("movie"));
        assert!(!g.contains_table("GENRE"));
        assert!(g.is_connected());
    }

    #[test]
    fn replicated_relations_get_distinct_nodes() {
        let s = parse_select("select G1.genre from GENRE G1, GENRE G2 where G1.mid = G2.mid");
        let g = QueryGraph::from_select(&s, &catalog()).unwrap();
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.joins.len(), 1);
        assert!(g.contains_table("GENRE"));
    }

    #[test]
    fn joins_from_var_normalizes_direction() {
        let s = parse_select("select MV.title from MOVIE MV, PLAY PL where PL.mid = MV.mid");
        let g = QueryGraph::from_select(&s, &catalog()).unwrap();
        let from_mv = g.joins_from_var("MV");
        assert_eq!(from_mv.len(), 1);
        assert_eq!(from_mv[0].0, "MV");
        assert_eq!(from_mv[0].2, "PL");
    }

    #[test]
    fn non_equality_conjuncts_are_ignored_not_rejected() {
        let s =
            parse_select("select MV.title from MOVIE MV where MV.title <> 'x' and MV.mid = '5'");
        let g = QueryGraph::from_select(&s, &catalog()).unwrap();
        assert_eq!(g.selections.len(), 1);
    }

    #[test]
    fn derived_tables_rejected() {
        let s = parse_select("select T.x from (select MV.title as x from MOVIE MV) T");
        assert!(matches!(
            QueryGraph::from_select(&s, &catalog()),
            Err(PrefError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn unknown_table_rejected() {
        let s = parse_select("select X.a from NOPE X");
        assert!(QueryGraph::from_select(&s, &catalog()).is_err());
    }

    #[test]
    fn disconnected_query_detected() {
        let s = parse_select("select MV.title from MOVIE MV, GENRE GN");
        let g = QueryGraph::from_select(&s, &catalog()).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn plain_projection_extraction() {
        let s = parse_select("select MV.title, MV.mid from MOVIE MV");
        assert_eq!(
            QueryGraph::plain_projection(&s).unwrap(),
            vec![
                (Some("MV".to_string()), "title".to_string()),
                (Some("MV".to_string()), "mid".to_string())
            ]
        );
        let s = parse_select("select count(*) from MOVIE MV");
        assert!(QueryGraph::plain_projection(&s).is_none());
    }
}
