//! Tuple-variable allocation for preference integration (§6, "common tuple
//! variables").
//!
//! Preferences are independent, so when two selected paths share a prefix of
//! join edges, giving them the *same* tuple variables would add a constraint
//! the preference model never expressed (e.g. "A. Hopkins played Batman").
//! The paper's rule:
//!
//! - along a common prefix of **to-one** joins, sharing is forced (there is
//!   only one matching tuple anyway);
//! - at the first **to-many** common join, the paths must split into
//!   different variables — as close to the start as possible.
//!
//! The allocator realizes this with a trie over join-edge signatures whose
//! to-one children are shared and whose to-many children are always fresh.

use crate::path::PreferencePath;
use pqp_storage::Cardinality;
use std::collections::{HashMap, HashSet};

/// The variables assigned to one path's hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathVars {
    /// `hop_vars[i]` is the tuple variable of `joins[i].to`; empty when the
    /// path has no joins.
    pub hop_vars: Vec<String>,
}

impl PathVars {
    /// The variable holding the path's final relation (where the selection
    /// applies): the last hop, or the anchor when the path has no joins.
    pub fn selection_var<'a>(&'a self, anchor: &'a str) -> &'a str {
        self.hop_vars.last().map(String::as_str).unwrap_or(anchor)
    }
}

/// Allocates tuple variables for a set of paths, avoiding the query's own
/// variables.
pub struct VarAllocator {
    taken: HashSet<String>,
    counter: usize,
}

#[derive(Default)]
struct TrieNode {
    /// Children by (hop signature); only to-one hops are recorded here for
    /// reuse.
    shared: HashMap<(String, String, String, String), usize>,
}

impl VarAllocator {
    /// A new allocator that will never emit any of `reserved` (the query's
    /// tuple variables), case-insensitively.
    pub fn new(reserved: impl IntoIterator<Item = String>) -> VarAllocator {
        VarAllocator {
            taken: reserved.into_iter().map(|s| s.to_ascii_uppercase()).collect(),
            counter: 0,
        }
    }

    fn fresh(&mut self, table: &str) -> String {
        loop {
            self.counter += 1;
            // A short table-derived prefix keeps generated SQL readable.
            let prefix: String =
                table.chars().filter(|c| c.is_ascii_alphabetic()).take(2).collect();
            let name = format!("{}_{}", prefix.to_ascii_uppercase(), self.counter);
            if self.taken.insert(name.to_ascii_uppercase()) {
                return name;
            }
        }
    }

    /// Allocate variables for all paths at once, sharing forced prefixes.
    ///
    /// Paths are grouped by anchor variable; within a group, a trie over
    /// to-one hops shares variables, while a to-many hop always allocates a
    /// fresh chain for the remainder of the path.
    pub fn allocate(&mut self, paths: &[PreferencePath]) -> Vec<PathVars> {
        // node id → trie node; node 0.. per (anchor, root).
        let mut nodes: Vec<TrieNode> = Vec::new();
        let mut node_vars: Vec<String> = Vec::new();
        let mut roots: HashMap<String, usize> = HashMap::new();

        let mut out = Vec::with_capacity(paths.len());
        for p in paths {
            let anchor_key = p.start_var.to_ascii_uppercase();
            let root = *roots.entry(anchor_key).or_insert_with(|| {
                nodes.push(TrieNode::default());
                node_vars.push(p.start_var.clone());
                nodes.len() - 1
            });
            let mut at = root;
            let mut shared_prefix = true;
            let mut hop_vars = Vec::with_capacity(p.joins.len());
            for (hop, edge) in p.join_signature().into_iter().zip(&p.joins) {
                let next = if shared_prefix && edge.cardinality == Cardinality::ToOne {
                    match nodes[at].shared.get(&hop) {
                        Some(&n) => n,
                        None => {
                            nodes.push(TrieNode::default());
                            node_vars.push(self.fresh(&edge.to.table));
                            let n = nodes.len() - 1;
                            nodes[at].shared.insert(hop, n);
                            n
                        }
                    }
                } else {
                    // First to-many hop (or anything after it): split — a
                    // fresh, unshared variable chain.
                    shared_prefix = false;
                    nodes.push(TrieNode::default());
                    node_vars.push(self.fresh(&edge.to.table));
                    nodes.len() - 1
                };
                hop_vars.push(node_vars[next].clone());
                at = next;
            }
            out.push(PathVars { hop_vars });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::{Doi, PaperCombinator};
    use crate::graph::{JoinEdge, SelectionEdge};
    use crate::pref::AttrRef;
    use pqp_storage::Value;

    fn join(from: (&str, &str), to: (&str, &str), card: Cardinality) -> JoinEdge {
        JoinEdge {
            from: AttrRef::new(from.0, from.1),
            to: AttrRef::new(to.0, to.1),
            doi: Doi::new(0.9).unwrap(),
            cardinality: card,
        }
    }

    fn sel(attr: (&str, &str), value: &str) -> SelectionEdge {
        SelectionEdge {
            attr: AttrRef::new(attr.0, attr.1),
            value: Value::str(value),
            doi: Doi::new(0.9).unwrap(),
        }
    }

    fn actor_path(name: &str) -> PreferencePath {
        let comb = PaperCombinator;
        PreferencePath::anchor("MV", "MOVIE")
            .with_join(join(("MOVIE", "mid"), ("CAST", "mid"), Cardinality::ToMany), &comb)
            .with_join(join(("CAST", "aid"), ("ACTOR", "aid"), Cardinality::ToOne), &comb)
            .with_selection(sel(("ACTOR", "name"), name), &comb)
    }

    fn director_path(name: &str) -> PreferencePath {
        let comb = PaperCombinator;
        PreferencePath::anchor("MV", "MOVIE")
            .with_join(join(("MOVIE", "mid"), ("DIRECTED", "mid"), Cardinality::ToOne), &comb)
            .with_join(join(("DIRECTED", "did"), ("DIRECTOR", "did"), Cardinality::ToOne), &comb)
            .with_selection(sel(("DIRECTOR", "name"), name), &comb)
    }

    #[test]
    fn to_many_prefix_splits() {
        // Two actor preferences share MOVIE→CAST (to-many): they must get
        // different CAST and ACTOR variables so a movie starring both
        // qualifies via different cast tuples (§6 Rossellini/Hopkins case).
        let paths = vec![actor_path("I. Rossellini"), actor_path("A. Hopkins")];
        let mut alloc = VarAllocator::new(vec!["MV".to_string(), "PL".to_string()]);
        let vars = alloc.allocate(&paths);
        assert_ne!(vars[0].hop_vars[0], vars[1].hop_vars[0], "CAST vars must differ");
        assert_ne!(vars[0].hop_vars[1], vars[1].hop_vars[1], "ACTOR vars must differ");
    }

    #[test]
    fn to_one_prefix_shares() {
        // Two director preferences via all-to-one joins must share variables
        // (the only option, per §6 case 2).
        let paths = vec![director_path("D. Lynch"), director_path("W. Allen")];
        let mut alloc = VarAllocator::new(vec!["MV".to_string()]);
        let vars = alloc.allocate(&paths);
        assert_eq!(vars[0].hop_vars, vars[1].hop_vars, "to-one chains share variables");
    }

    #[test]
    fn split_happens_at_first_to_many() {
        // Chain to-one → to-many → to-one: share the first hop, split after.
        let comb = PaperCombinator;
        let mk = |val: &str| {
            PreferencePath::anchor("A", "TA")
                .with_join(join(("TA", "x"), ("TB", "x"), Cardinality::ToOne), &comb)
                .with_join(join(("TB", "y"), ("TC", "y"), Cardinality::ToMany), &comb)
                .with_join(join(("TC", "z"), ("TD", "z"), Cardinality::ToOne), &comb)
                .with_selection(sel(("TD", "v"), val), &comb)
        };
        let paths = vec![mk("1"), mk("2")];
        let mut alloc = VarAllocator::new(Vec::new());
        let vars = alloc.allocate(&paths);
        assert_eq!(vars[0].hop_vars[0], vars[1].hop_vars[0], "to-one hop shared");
        assert_ne!(vars[0].hop_vars[1], vars[1].hop_vars[1], "split at to-many");
        assert_ne!(vars[0].hop_vars[2], vars[1].hop_vars[2], "stays split afterwards");
    }

    #[test]
    fn different_anchors_never_share() {
        let comb = PaperCombinator;
        let a = PreferencePath::anchor("A", "TA")
            .with_join(join(("TA", "x"), ("TB", "x"), Cardinality::ToOne), &comb)
            .with_selection(sel(("TB", "v"), "1"), &comb);
        let mut b = a.clone();
        b.start_var = "A2".into();
        let mut alloc = VarAllocator::new(Vec::new());
        let vars = alloc.allocate(&[a, b]);
        assert_ne!(vars[0].hop_vars[0], vars[1].hop_vars[0]);
    }

    #[test]
    fn reserved_names_avoided() {
        let comb = PaperCombinator;
        let p = PreferencePath::anchor("MV", "MOVIE")
            .with_join(join(("MOVIE", "mid"), ("GENRE", "mid"), Cardinality::ToMany), &comb)
            .with_selection(sel(("GENRE", "genre"), "comedy"), &comb);
        let mut alloc = VarAllocator::new(vec!["GE_1".to_string()]);
        let vars = alloc.allocate(&[p]);
        assert_ne!(vars[0].hop_vars[0].to_ascii_uppercase(), "GE_1");
    }

    #[test]
    fn selection_var_of_zero_join_path() {
        let comb = PaperCombinator;
        let p = PreferencePath::anchor("GN", "GENRE")
            .with_selection(sel(("GENRE", "genre"), "comedy"), &comb);
        let mut alloc = VarAllocator::new(Vec::new());
        let vars = alloc.allocate(std::slice::from_ref(&p));
        assert_eq!(vars[0].selection_var("GN"), "GN");
    }
}
