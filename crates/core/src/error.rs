//! Error type of the personalization layer.

use pqp_obs::BudgetExceeded;
use std::fmt;

/// Errors raised while building profiles, mapping queries onto the
/// personalization graph, selecting preferences or integrating them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PrefError {
    /// A degree of interest outside `[0, 1]` (or not finite).
    InvalidDegree(f64),
    /// A preference references a table or column missing from the schema.
    UnknownAttribute { table: String, column: String },
    /// The query cannot be mapped onto the personalization graph.
    UnsupportedQuery(String),
    /// Invalid personalization parameters (e.g. `L > K − M`).
    InvalidParams(String),
    /// The SQ rewrite would need to enumerate too many conjunctions.
    TooManyCombinations { combinations: u128, limit: u128 },
    /// Underlying engine/storage failure (profile store access).
    Engine(String),
    /// The query-governor budget tripped during preference selection or
    /// integration. Carries partial-progress counters.
    Budget(BudgetExceeded),
    /// An invariant was violated (or a failpoint fired) inside the
    /// personalization layer; the query fails but the process survives.
    Internal(String),
}

impl fmt::Display for PrefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefError::InvalidDegree(d) => {
                write!(f, "degree of interest {d} is not in [0, 1]")
            }
            PrefError::UnknownAttribute { table, column } => {
                write!(f, "unknown attribute `{table}.{column}`")
            }
            PrefError::UnsupportedQuery(m) => write!(f, "unsupported query: {m}"),
            PrefError::InvalidParams(m) => write!(f, "invalid personalization parameters: {m}"),
            PrefError::TooManyCombinations { combinations, limit } => write!(
                f,
                "SQ integration would enumerate {combinations} conjunctions (limit {limit}); \
                 use MQ or reduce K/L"
            ),
            PrefError::Engine(m) => write!(f, "engine error: {m}"),
            PrefError::Budget(b) => write!(f, "{b}"),
            PrefError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for PrefError {}

impl From<pqp_engine::EngineError> for PrefError {
    fn from(e: pqp_engine::EngineError) -> Self {
        match e {
            pqp_engine::EngineError::Budget(b) => PrefError::Budget(b),
            pqp_engine::EngineError::Internal(m) => PrefError::Internal(m),
            other => PrefError::Engine(other.to_string()),
        }
    }
}

impl From<BudgetExceeded> for PrefError {
    fn from(b: BudgetExceeded) -> Self {
        PrefError::Budget(b)
    }
}

impl From<pqp_storage::StorageError> for PrefError {
    fn from(e: pqp_storage::StorageError) -> Self {
        PrefError::Engine(e.to_string())
    }
}

/// Result alias for the personalization layer.
pub type Result<T> = std::result::Result<T, PrefError>;
