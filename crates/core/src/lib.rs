//! # pqp-core — Personalization of Queries in Database Systems
//!
//! A from-scratch implementation of Koutrika & Ioannidis (ICDE 2004): query
//! personalization for relational databases based on structured user
//! profiles.
//!
//! ## Model
//!
//! A [`Profile`] stores *atomic preferences*
//! ([`pref::AtomicPreference`]): degrees of interest ([`doi::Doi`]) in
//! atomic selection and (directed) join conditions. Over a schema, they form
//! the **personalization graph** ([`graph::InMemoryGraph`]); composing
//! adjacent edges yields *transitive preferences*
//! ([`path::PreferencePath`]), whose degree is the product of the edge
//! degrees. Degrees combine under conjunction (`1 − ∏(1−d)`) and disjunction
//! (average) — see [`doi`].
//!
//! ## Pipeline
//!
//! ```text
//! query ─┬─► QueryGraph ──► select_preferences (best-first, §5) ──► P_K
//!        │                                                           │
//!        └────────────────► integrate_sq / integrate_mq (§6) ◄───────┘
//!                                    │
//!                personalized SQL (ranked via DEGREE_OF_CONJUNCTION)
//! ```
//!
//! The one-call facade is [`personalize::personalize`]:
//!
//! ```
//! use pqp_core::prelude::*;
//! use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};
//!
//! let mut catalog = Catalog::new();
//! catalog.create_table(TableSchema::new("MOVIE", vec![
//!     ColumnDef::new("mid", DataType::Int),
//!     ColumnDef::new("title", DataType::Str),
//! ]).with_primary_key(&["mid"])).unwrap();
//! catalog.create_table(TableSchema::new("GENRE", vec![
//!     ColumnDef::new("mid", DataType::Int),
//!     ColumnDef::new("genre", DataType::Str),
//! ])).unwrap();
//!
//! let mut julie = Profile::new("julie");
//! julie.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
//! julie.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
//!
//! let graph = InMemoryGraph::build(&julie, &catalog).unwrap();
//! let query = pqp_sql::parse_query("select MV.title from MOVIE MV").unwrap();
//! let p = personalize(&query, &graph, &catalog, PersonalizeOptions::builder().k(3).l(1).build())
//!     .unwrap();
//! assert_eq!(p.k(), 1);
//! let personalized_sql = p.mq().unwrap().to_string();
//! assert!(personalized_sql.contains("comedy"));
//! ```

pub mod conflict;
pub mod criteria;
pub mod doi;
pub mod error;
pub mod explain;
pub mod graph;
pub mod integrate;
pub mod learn;
pub mod negative;
pub mod path;
pub mod personalize;
pub mod pref;
pub mod profile;
pub mod query_graph;
pub mod rank;
pub mod select;
pub mod strategy;
pub mod vars;

pub use criteria::InterestCriterion;
pub use doi::{Combinator, Doi, MinMaxCombinator, PaperCombinator};
pub use error::{PrefError, Result};
pub use graph::{GraphAccess, InMemoryGraph, StoredProfileGraph};
pub use integrate::{integrate_mq, integrate_native, integrate_sq, MatchSpec};
pub use path::PreferencePath;
pub use personalize::{
    personalize, personalize_prepared, personalize_prepared_ctx, MandatorySpec, PersonalizeOptions,
    PersonalizeOptionsBuilder, Personalized, Rewrite,
};
pub use pref::{AtomicPreference, AttrRef};
pub use profile::Profile;
pub use query_graph::QueryGraph;
pub use select::{
    select_preferences, select_preferences_ctx, select_preferences_with, SelectStats,
    SelectionOutcome,
};
pub use strategy::{build_execution, choose, Execution, StrategyChoice};

/// Convenience prelude.
pub mod prelude {
    pub use crate::criteria::InterestCriterion;
    pub use crate::doi::Doi;
    pub use crate::explain::explain;
    pub use crate::graph::{GraphAccess, InMemoryGraph, StoredProfileGraph};
    pub use crate::integrate::MatchSpec;
    pub use crate::learn::{LearnerConfig, ProfileLearner};
    pub use crate::negative::{integrate_mq_with_negatives, select_negatives};
    pub use crate::personalize::{
        personalize, personalize_prepared, MandatorySpec, PersonalizeOptions,
        PersonalizeOptionsBuilder, Personalized, Rewrite,
    };
    pub use crate::profile::Profile;
    pub use crate::rank::{top_n, top_n_query};
    pub use crate::strategy::{build_execution, choose, Execution, StrategyChoice};
}
