//! Implicit profile creation: learning a profile from the user's query
//! history.
//!
//! The paper's architecture (Figure 1) includes a *Profile Creation* module
//! that collects preferences "implicitly by monitoring user interaction with
//! the system", but leaves its design to future work. This module provides
//! a simple, well-defined instance: a frequency-based learner. Every
//! observed query contributes its atomic selection and join conditions; a
//! condition used in a large fraction of the user's queries earns a high
//! degree of interest.
//!
//! Degrees are relative frequencies rescaled into `[min_degree, max_degree]`
//! (1.0 is deliberately unreachable: "must-have" preferences should come
//! from the user, not from statistics).

use crate::error::Result;
use crate::profile::Profile;
use pqp_sql::ast::{BinaryOp, Expr, Query, TableFactor};
use pqp_storage::Value;
use std::collections::HashMap;

/// Learner configuration.
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    /// Degree assigned to the most frequent condition.
    pub max_degree: f64,
    /// Degree below which conditions are not emitted at all.
    pub min_degree: f64,
    /// Conditions must occur at least this many times to be emitted.
    pub min_support: usize,
}

impl Default for LearnerConfig {
    fn default() -> LearnerConfig {
        LearnerConfig { max_degree: 0.9, min_degree: 0.1, min_support: 2 }
    }
}

/// A frequency-based profile learner.
#[derive(Debug, Clone)]
pub struct ProfileLearner {
    user: String,
    config: LearnerConfig,
    observed: usize,
    selections: HashMap<(String, String, String), usize>,
    joins: HashMap<(String, String, String, String), usize>,
}

impl ProfileLearner {
    /// A fresh learner for a user.
    pub fn new(user: impl Into<String>, config: LearnerConfig) -> ProfileLearner {
        ProfileLearner {
            user: user.into(),
            config,
            observed: 0,
            selections: HashMap::new(),
            joins: HashMap::new(),
        }
    }

    /// Number of observed queries.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Record one executed query. Non-conjunctive or non-SPJ queries are
    /// observed but contribute nothing.
    pub fn observe(&mut self, q: &Query) {
        self.observed += 1;
        let Some(select) = q.as_select() else { return };
        // Tuple variable → table name.
        let mut tables: HashMap<String, String> = HashMap::new();
        for f in &select.from {
            if let TableFactor::Table { name, alias } = f {
                tables.insert(
                    alias.clone().unwrap_or_else(|| name.clone()).to_ascii_uppercase(),
                    name.to_ascii_uppercase(),
                );
            }
        }
        let resolve = |e: &Expr| -> Option<(String, String)> {
            let Expr::Column { qualifier, name } = e else {
                return None;
            };
            let table = match qualifier {
                Some(q) => tables.get(&q.to_ascii_uppercase())?.clone(),
                None => {
                    if tables.len() == 1 {
                        tables.values().next().unwrap().clone()
                    } else {
                        return None;
                    }
                }
            };
            Some((table, name.to_ascii_lowercase()))
        };
        let Some(w) = &select.selection else { return };
        for c in w.conjuncts() {
            let Expr::Binary { left, op: BinaryOp::Eq, right } = c else {
                continue;
            };
            match (&**left, &**right) {
                (col @ Expr::Column { .. }, Expr::Literal(v))
                | (Expr::Literal(v), col @ Expr::Column { .. }) => {
                    if let Some((t, c)) = resolve(col) {
                        *self.selections.entry((t, c, pqp_sql::sql_literal(v))).or_default() += 1;
                    }
                }
                (l @ Expr::Column { .. }, r @ Expr::Column { .. }) => {
                    if let (Some((lt, lc)), Some((rt, rc))) = (resolve(l), resolve(r)) {
                        if lt != rt {
                            // A join observed in a query is evidence for
                            // both directions.
                            *self
                                .joins
                                .entry((lt.clone(), lc.clone(), rt.clone(), rc.clone()))
                                .or_default() += 1;
                            *self.joins.entry((rt, rc, lt, lc)).or_default() += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Derive the learned profile.
    pub fn profile(&self) -> Result<Profile> {
        let mut p = Profile::new(&self.user);
        let max_sel = self.selections.values().copied().max().unwrap_or(0).max(1) as f64;
        for ((t, c, lit), &n) in &self.selections {
            if n < self.config.min_support {
                continue;
            }
            let doi = self.scale(n as f64 / max_sel);
            if doi < self.config.min_degree {
                continue;
            }
            let value = parse_literal(lit);
            p.add_selection(t, c, value, doi)?;
        }
        let max_join = self.joins.values().copied().max().unwrap_or(0).max(1) as f64;
        for ((ft, fc, tt, tc), &n) in &self.joins {
            if n < self.config.min_support {
                continue;
            }
            let doi = self.scale(n as f64 / max_join);
            if doi < self.config.min_degree {
                continue;
            }
            p.add_join(ft, fc, tt, tc, doi)?;
        }
        Ok(p)
    }

    fn scale(&self, fraction: f64) -> f64 {
        (fraction * self.config.max_degree).clamp(0.0, self.config.max_degree)
    }
}

fn parse_literal(text: &str) -> Value {
    pqp_sql::parse_expr(text)
        .ok()
        .and_then(|e| match e {
            Expr::Literal(v) => Some(v),
            _ => None,
        })
        .unwrap_or_else(|| Value::str(text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pref::AtomicPreference;

    fn q(sql: &str) -> Query {
        pqp_sql::parse_query(sql).unwrap()
    }

    fn learner() -> ProfileLearner {
        ProfileLearner::new("learned", LearnerConfig::default())
    }

    #[test]
    fn frequency_orders_degrees() {
        let mut l = learner();
        for _ in 0..8 {
            l.observe(&q("select MV.title from MOVIE MV, GENRE GN \
                 where MV.mid = GN.mid and GN.genre = 'comedy'"));
        }
        for _ in 0..2 {
            l.observe(&q("select MV.title from MOVIE MV, GENRE GN \
                 where MV.mid = GN.mid and GN.genre = 'thriller'"));
        }
        let p = l.profile().unwrap();
        let doi_of = |val: &str| -> f64 {
            p.selections()
                .find_map(|s| match s {
                    AtomicPreference::Selection { value, doi, .. } if *value == Value::str(val) => {
                        Some(doi.value())
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert!(doi_of("comedy") > doi_of("thriller"));
        assert!((doi_of("comedy") - 0.9).abs() < 1e-12, "top condition gets max_degree");
        // Joins learned in both directions.
        assert!(p.joins().count() >= 2);
    }

    #[test]
    fn min_support_filters_one_offs() {
        let mut l = learner();
        l.observe(&q("select MV.title from MOVIE MV where MV.year = 1999"));
        assert_eq!(l.profile().unwrap().size(), 0, "single observation below min_support");
        l.observe(&q("select MV.title from MOVIE MV where MV.year = 1999"));
        assert_eq!(l.profile().unwrap().size(), 1);
    }

    #[test]
    fn degrees_never_reach_must_have() {
        let mut l = learner();
        for _ in 0..100 {
            l.observe(&q("select T.a from T where T.a = 'x'"));
        }
        let p = l.profile().unwrap();
        assert!(p.preferences().iter().all(|pr| pr.doi().value() < 1.0));
    }

    #[test]
    fn unqualified_single_table_columns_resolve() {
        let mut l = learner();
        for _ in 0..2 {
            l.observe(&q("select title from MOVIE where year = 2001"));
        }
        let p = l.profile().unwrap();
        assert_eq!(p.size(), 1);
        let text = p.to_string();
        assert!(text.contains("MOVIE.year=2001"), "{text}");
    }

    #[test]
    fn non_spj_queries_are_tolerated() {
        let mut l = learner();
        l.observe(&q("(select a from T) union (select a from U)"));
        l.observe(&q("select count(*) from T group by T.a having count(*) > 1"));
        assert_eq!(l.observed(), 2);
        assert_eq!(l.profile().unwrap().preferences().len(), 0);
    }

    #[test]
    fn learned_profile_feeds_personalization() {
        use crate::graph::InMemoryGraph;
        use crate::personalize::{personalize, PersonalizeOptions};
        use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};

        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c.create_table(TableSchema::new(
            "GENRE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
        ))
        .unwrap();

        let mut l = learner();
        for _ in 0..3 {
            l.observe(&q("select MV.title from MOVIE MV, GENRE GN \
                 where MV.mid = GN.mid and GN.genre = 'comedy'"));
        }
        let p = l.profile().unwrap();
        p.validate(&c).unwrap();
        let graph = InMemoryGraph::build(&p, &c).unwrap();
        let query = q("select MV.title from MOVIE MV");
        let out = personalize(&query, &graph, &c, PersonalizeOptions::builder().k(3).l(1).build())
            .unwrap();
        assert!(out.k() >= 1, "learned comedy preference applies to new queries");
        assert!(out.mq().unwrap().to_string().contains("comedy"));
    }
}
