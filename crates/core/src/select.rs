//! The Preference Selection algorithm (§5.2, Figure 5).
//!
//! Best-first traversal of the personalization graph: candidate paths are
//! kept in a priority queue ordered by decreasing degree of interest (ties
//! favour shorter paths, then earlier insertion — the paper's queue
//! discipline). Paths begin at the query graph and expand outward. On each
//! round the head is popped:
//!
//! - a **selection** path is emitted if the interest criterion still holds;
//!   otherwise the algorithm terminates (everything left is no better —
//!   Theorem 1);
//! - a **join** path is expanded with every composable atomic element, in
//!   decreasing degree order, pruning (i) cycles into the path or the query,
//!   (ii) conflicts with the query, (iii) candidates failing the criterion
//!   (and everything after them, since expansion order is by degree).

use crate::conflict::conflicts_with_query;
use crate::criteria::InterestCriterion;
use crate::doi::{Combinator, Doi, PaperCombinator};
use crate::error::{PrefError, Result};
use crate::graph::GraphAccess;
use crate::path::PreferencePath;
use crate::query_graph::QueryGraph;
use pqp_obs::{BudgetReason, QueryCtx};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Statistics of one run of the algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// Candidate paths popped from the queue.
    pub rounds: usize,
    /// Paths pushed into the queue (excluding initial seeding).
    pub expansions: usize,
    /// Candidates pruned as cycles.
    pub pruned_cycles: usize,
    /// Candidates pruned as conflicting with the query.
    pub pruned_conflicts: usize,
    /// Adjacency fetches performed against the graph backend.
    pub graph_accesses: usize,
}

/// The outcome: the ordered set `P_K` plus run statistics.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Selected transitive selections, in decreasing degree of interest.
    pub selected: Vec<PreferencePath>,
    pub stats: SelectStats,
}

/// Queue entry ordered by (degree desc, length asc, insertion seq asc).
struct Entry {
    path: PreferencePath,
    seq: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: greater = popped first.
        self.path
            .doi
            .cmp(&other.path.doi)
            .then_with(|| other.path.len().cmp(&self.path.len()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Run preference selection with the paper's combination semantics.
pub fn select_preferences(
    qg: &QueryGraph,
    graph: &impl GraphAccess,
    criterion: &InterestCriterion,
) -> SelectionOutcome {
    select_preferences_with(qg, graph, criterion, &PaperCombinator)
}

/// Run preference selection with custom combination semantics (ablations).
pub fn select_preferences_with(
    qg: &QueryGraph,
    graph: &impl GraphAccess,
    criterion: &InterestCriterion,
    comb: &impl Combinator,
) -> SelectionOutcome {
    match run_selection(qg, graph, criterion, comb, &QueryCtx::unlimited()) {
        Ok(out) => out,
        // An unlimited context has no deadline, caps or cancel signal, and
        // the governed entry point (`select_preferences_ctx`) owns the
        // failpoints — nothing here can fail.
        Err(_) => unreachable!("selection under an unlimited governor context cannot trip"),
    }
}

/// Run preference selection under a query-governor context: the best-first
/// loop checkpoints the budget every round, so an exploding queue (large
/// profile, permissive criterion) is cut off with
/// [`PrefError::Budget`] instead of running away. This is also where the
/// `select.pref` / `select.budget` failpoints hook in for chaos testing.
pub fn select_preferences_ctx(
    qg: &QueryGraph,
    graph: &impl GraphAccess,
    criterion: &InterestCriterion,
    comb: &impl Combinator,
    ctx: &QueryCtx,
) -> Result<SelectionOutcome> {
    if let Some(msg) = pqp_obs::failpoint::fire("select.pref") {
        return Err(PrefError::Internal(format!("failpoint select.pref: {msg}")));
    }
    if pqp_obs::failpoint::fire("select.budget").is_some() {
        return Err(PrefError::Budget(ctx.exceeded(BudgetReason::Injected)));
    }
    run_selection(qg, graph, criterion, comb, ctx)
}

fn run_selection(
    qg: &QueryGraph,
    graph: &impl GraphAccess,
    criterion: &InterestCriterion,
    comb: &impl Combinator,
    ctx: &QueryCtx,
) -> Result<SelectionOutcome> {
    let _span = pqp_obs::span("selection");
    let mut stats = SelectStats::default();
    graph.reset_access_count();
    let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0usize;

    // Seed: atomic elements attached to each query node (step 1 of Fig. 5).
    for node in &qg.nodes {
        let anchor = PreferencePath::anchor(&node.var, &node.table);
        for sel in graph.selections_of(&node.table) {
            let p = anchor.with_selection(sel, comb);
            if conflicts_with_query(&p, qg) {
                stats.pruned_conflicts += 1;
                continue;
            }
            queue.push(Entry { path: p, seq });
            seq += 1;
        }
        for join in graph.joins_from(&node.table) {
            // Rule (i): a join into a relation of the query forms a cycle.
            if qg.contains_table(&join.to.table) {
                stats.pruned_cycles += 1;
                continue;
            }
            queue.push(Entry { path: anchor.with_join(join, comb), seq });
            seq += 1;
        }
    }

    let mut selected: Vec<PreferencePath> = Vec::new();
    let mut selected_dois: Vec<Doi> = Vec::new();

    // Eager pruning (paper rule iv and the join-path termination of
    // Theorem 1) is exact only when a rejection can never be undone by a
    // larger selected set; set-dependent criteria disable it.
    let eager = criterion.rejection_is_permanent();

    // Step 2: best-first rounds. Paths pop in decreasing degree (Theorem 1),
    // so completed selections form the ordered stream P_1, P_2, ... of §5.1.
    'outer: while let Some(Entry { path, .. }) = queue.pop() {
        ctx.checkpoint()?;
        stats.rounds += 1;
        if path.is_selection() {
            if criterion.accepts(&selected_dois, path.doi) {
                selected_dois.push(path.doi);
                selected.push(path);
            } else if criterion.prefix_failure_is_final() {
                break 'outer; // Theorem 1: nothing better remains.
            } else {
                // ConjunctionAbove: keep consuming; the largest satisfying
                // prefix is computed at the end.
                selected_dois.push(path.doi);
                selected.push(path);
            }
            continue;
        }
        // A join path: expand unless the criterion proves no descendant can
        // ever be admitted.
        if eager && !criterion.accepts(&selected_dois, path.doi) {
            break 'outer;
        }
        let end = path.end_table().to_string();
        let visited = path.visited_tables();

        // Composable atomic elements, merged in decreasing degree order so
        // criterion failure prunes the whole tail.
        let sels = graph.selections_of(&end);
        let joins = graph.joins_from(&end);
        let mut candidates: Vec<Candidate> = Vec::with_capacity(sels.len() + joins.len());
        for s in sels {
            candidates.push(Candidate { doi: s.doi, kind: CandidateKind::Selection(s) });
        }
        for j in joins {
            candidates.push(Candidate { doi: j.doi, kind: CandidateKind::Join(j) });
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.doi));

        for c in candidates {
            let extended_doi = comb.transitive(&[path.doi, c.doi]);
            // Rule (iv): once a candidate fails the criterion, all remaining
            // ones (lower degree) fail too.
            if eager && !criterion.accepts(&selected_dois, extended_doi) {
                break;
            }
            match c.kind {
                CandidateKind::Selection(s) => {
                    let p = path.with_selection(s, comb);
                    if conflicts_with_query(&p, qg) {
                        stats.pruned_conflicts += 1;
                        continue;
                    }
                    queue.push(Entry { path: p, seq });
                    seq += 1;
                    stats.expansions += 1;
                }
                CandidateKind::Join(j) => {
                    let target = j.to.table.to_ascii_uppercase();
                    // Rule (i): cycles into the path or the query.
                    if visited.contains(&target) || qg.contains_table(&target) {
                        stats.pruned_cycles += 1;
                        continue;
                    }
                    queue.push(Entry { path: path.with_join(j, comb), seq });
                    seq += 1;
                    stats.expansions += 1;
                }
            }
        }
    }

    // §5.1: K = max{t : CI(P_t)} — for ConjunctionAbove the whole stream was
    // consumed; keep the largest prefix satisfying the criterion.
    if !criterion.prefix_failure_is_final() {
        let mut best = 0;
        let mut prefix: Vec<Doi> = Vec::new();
        for (t, d) in selected_dois.iter().enumerate() {
            if criterion.accepts(&prefix, *d) {
                best = t + 1;
            }
            prefix.push(*d);
        }
        selected.truncate(best);
    }

    stats.graph_accesses = graph.access_count();
    pqp_obs::record("selected", selected.len());
    pqp_obs::record("rounds", stats.rounds);
    pqp_obs::counter_add("selection.rounds", stats.rounds as i64);
    pqp_obs::counter_add("selection.expansions", stats.expansions as i64);
    pqp_obs::counter_add("selection.pruned_cycles", stats.pruned_cycles as i64);
    pqp_obs::counter_add("selection.pruned_conflicts", stats.pruned_conflicts as i64);
    pqp_obs::counter_add("selection.graph_accesses", stats.graph_accesses as i64);
    Ok(SelectionOutcome { selected, stats })
}

struct Candidate {
    doi: Doi,
    kind: CandidateKind,
}

enum CandidateKind {
    Selection(crate::graph::SelectionEdge),
    Join(crate::graph::JoinEdge),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::InMemoryGraph;
    use crate::profile::Profile;
    use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};

    /// The paper's movies schema (keys included so cardinalities work out).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "THEATRE",
                vec![
                    ColumnDef::new("tid", DataType::Int),
                    ColumnDef::new("name", DataType::Str),
                    ColumnDef::new("phone", DataType::Str),
                    ColumnDef::new("region", DataType::Str),
                ],
            )
            .with_primary_key(&["tid"]),
        )
        .unwrap();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![
                    ColumnDef::new("mid", DataType::Int),
                    ColumnDef::new("title", DataType::Str),
                    ColumnDef::new("year", DataType::Int),
                ],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        for (name, cols) in [
            ("PLAY", vec!["tid", "mid", "date"]),
            ("GENRE", vec!["mid", "genre"]),
            ("CAST", vec!["mid", "aid", "award", "role"]),
            ("DIRECTED", vec!["mid", "did"]),
        ] {
            c.create_table(TableSchema::new(
                name,
                cols.iter().map(|n| ColumnDef::new(*n, DataType::Str)).collect(),
            ))
            .unwrap();
        }
        c.create_table(
            TableSchema::new(
                "ACTOR",
                vec![ColumnDef::new("aid", DataType::Str), ColumnDef::new("name", DataType::Str)],
            )
            .with_primary_key(&["aid"]),
        )
        .unwrap();
        c.create_table(
            TableSchema::new(
                "DIRECTOR",
                vec![ColumnDef::new("did", DataType::Str), ColumnDef::new("name", DataType::Str)],
            )
            .with_primary_key(&["did"]),
        )
        .unwrap();
        c
    }

    /// Julie's profile from Figures 2–3 of the paper.
    fn julie() -> Profile {
        let mut p = Profile::new("julie");
        p.add_join("THEATRE", "tid", "PLAY", "tid", 1.0).unwrap();
        p.add_join("PLAY", "tid", "THEATRE", "tid", 1.0).unwrap();
        p.add_join("PLAY", "mid", "MOVIE", "mid", 1.0).unwrap();
        p.add_join("MOVIE", "mid", "PLAY", "mid", 0.8).unwrap();
        p.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
        p.add_join("MOVIE", "mid", "CAST", "mid", 0.8).unwrap();
        p.add_join("MOVIE", "mid", "DIRECTED", "mid", 1.0).unwrap();
        p.add_join("CAST", "aid", "ACTOR", "aid", 1.0).unwrap();
        p.add_join("DIRECTED", "did", "DIRECTOR", "did", 1.0).unwrap();
        p.add_selection("THEATRE", "region", "downtown", 0.5).unwrap();
        p.add_selection("GENRE", "genre", "comedy", 0.9).unwrap();
        p.add_selection("GENRE", "genre", "thriller", 0.7).unwrap();
        p.add_selection("GENRE", "genre", "adventure", 0.5).unwrap();
        p.add_selection("DIRECTOR", "name", "D. Lynch", 0.9).unwrap();
        p.add_selection("DIRECTOR", "name", "W. Allen", 0.7).unwrap();
        p.add_selection("ACTOR", "name", "N. Kidman", 0.9).unwrap();
        p.add_selection("ACTOR", "name", "A. Hopkins", 0.8).unwrap();
        p.add_selection("ACTOR", "name", "I. Rossellini", 0.5).unwrap();
        p
    }

    fn initial_query_graph(c: &Catalog) -> QueryGraph {
        let q = pqp_sql::parse_query(
            "select MV.title from MOVIE MV, PLAY PL \
             where MV.mid = PL.mid and PL.date = '2/7/2003'",
        )
        .unwrap();
        QueryGraph::from_select(q.as_select().unwrap(), c).unwrap()
    }

    fn rendered(p: &PreferencePath) -> String {
        p.to_string()
    }

    #[test]
    fn paper_running_example_top3() {
        // §5.2: the top-3 preferences for Julie's initial query are comedy
        // (0.81), D. Lynch (0.81... actually 0.9*1*0.9=0.81) and
        // N. Kidman (0.8*1*0.9=0.72).
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        let qg = initial_query_graph(&c);
        let out = select_preferences(&qg, &g, &InterestCriterion::TopK(3));
        assert_eq!(out.selected.len(), 3, "{:#?}", out.selected);
        let texts: Vec<String> = out.selected.iter().map(rendered).collect();
        assert!(
            texts[0].contains("genre='comedy'") || texts[0].contains("D. Lynch"),
            "top prefs: {texts:?}"
        );
        // Degrees: comedy = 0.9*0.9 = 0.81; Lynch = 1.0*1.0*0.9 = 0.9;
        // Kidman = 0.8*1.0*0.9 = 0.72.
        let dois: Vec<f64> = out.selected.iter().map(|p| p.doi.value()).collect();
        assert!((dois[0] - 0.9).abs() < 1e-12, "{dois:?}");
        assert!((dois[1] - 0.81).abs() < 1e-12, "{dois:?}");
        assert!((dois[2] - 0.72).abs() < 1e-12, "{dois:?}");
        assert!(texts[0].contains("D. Lynch"), "{texts:?}");
        assert!(texts[1].contains("comedy"), "{texts:?}");
        assert!(texts[2].contains("N. Kidman"), "{texts:?}");
    }

    #[test]
    fn output_is_decreasing_in_degree() {
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        let qg = initial_query_graph(&c);
        let out = select_preferences(&qg, &g, &InterestCriterion::TopK(20));
        let dois: Vec<f64> = out.selected.iter().map(|p| p.doi.value()).collect();
        for w in dois.windows(2) {
            assert!(w[0] >= w[1], "{dois:?}");
        }
    }

    #[test]
    fn min_degree_criterion_cuts_tail() {
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        let qg = initial_query_graph(&c);
        let out = select_preferences(&qg, &g, &InterestCriterion::MinDegree(0.75));
        assert!(!out.selected.is_empty());
        assert!(out.selected.iter().all(|p| p.doi.value() > 0.75));
        // And it found everything above the bar that top-K finds.
        let all = select_preferences(&qg, &g, &InterestCriterion::TopK(100));
        let expect = all.selected.iter().filter(|p| p.doi.value() > 0.75).count();
        assert_eq!(out.selected.len(), expect);
    }

    #[test]
    fn no_path_reenters_query_or_itself() {
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        let qg = initial_query_graph(&c);
        let out = select_preferences(&qg, &g, &InterestCriterion::TopK(100));
        for p in &out.selected {
            let mut visited = vec![p.start_table.to_ascii_uppercase()];
            for j in &p.joins {
                let t = j.to.table.to_ascii_uppercase();
                assert!(!visited.contains(&t), "cycle in {p}");
                assert!(!(qg.contains_table(&t)), "path re-enters query: {p}");
                visited.push(t);
            }
        }
    }

    #[test]
    fn conflicting_preference_is_not_selected() {
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        // Query about uptown theatres: the downtown preference conflicts.
        let q = pqp_sql::parse_query("select TH.name from THEATRE TH where TH.region = 'uptown'")
            .unwrap();
        let qg = QueryGraph::from_select(q.as_select().unwrap(), &c).unwrap();
        let out = select_preferences(&qg, &g, &InterestCriterion::TopK(50));
        assert!(
            out.selected.iter().all(|p| !rendered(p).contains("downtown")),
            "{:?}",
            out.selected.iter().map(rendered).collect::<Vec<_>>()
        );
        assert!(out.stats.pruned_conflicts >= 1);
    }

    #[test]
    fn empty_profile_selects_nothing() {
        let c = catalog();
        let g = InMemoryGraph::build(&Profile::new("empty"), &c).unwrap();
        let qg = initial_query_graph(&c);
        let out = select_preferences(&qg, &g, &InterestCriterion::TopK(5));
        assert!(out.selected.is_empty());
    }

    #[test]
    fn ties_prefer_shorter_paths() {
        let c = catalog();
        let mut p = Profile::new("tie");
        // Direct selection on MOVIE.year with degree 0.5 and a transitive
        // one (MOVIE→GENRE) also landing at 0.5 = 1.0 * 0.5.
        p.add_selection("MOVIE", "year", Value::Int(1999), 0.5).unwrap();
        p.add_join("MOVIE", "mid", "GENRE", "mid", 1.0).unwrap();
        p.add_selection("GENRE", "genre", "noir", 0.5).unwrap();
        let g = InMemoryGraph::build(&p, &c).unwrap();
        let qg = initial_query_graph(&c);
        let out = select_preferences(&qg, &g, &InterestCriterion::TopK(1));
        assert_eq!(out.selected.len(), 1);
        assert_eq!(out.selected[0].len(), 1, "shorter path must win the tie: {}", out.selected[0]);
    }

    #[test]
    fn stats_are_populated() {
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        let qg = initial_query_graph(&c);
        let out = select_preferences(&qg, &g, &InterestCriterion::TopK(5));
        assert!(out.stats.rounds > 0);
        assert!(out.stats.graph_accesses > 0);
    }

    #[test]
    fn governed_selection_matches_infallible_path() {
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        let qg = initial_query_graph(&c);
        let plain = select_preferences(&qg, &g, &InterestCriterion::TopK(5));
        let governed = select_preferences_ctx(
            &qg,
            &g,
            &InterestCriterion::TopK(5),
            &PaperCombinator,
            &pqp_obs::QueryCtx::unlimited(),
        )
        .unwrap();
        assert_eq!(plain.selected, governed.selected);
    }

    #[test]
    fn zero_deadline_trips_selection_with_budget_error() {
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        let qg = initial_query_graph(&c);
        let ctx = pqp_obs::QueryCtx::new(pqp_obs::Budget::unlimited().deadline_ms(0));
        match select_preferences_ctx(&qg, &g, &InterestCriterion::TopK(5), &PaperCombinator, &ctx) {
            Err(PrefError::Budget(b)) => assert_eq!(b.reason, BudgetReason::Deadline),
            other => panic!("expected PrefError::Budget, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_trips_selection() {
        let c = catalog();
        let g = InMemoryGraph::build(&julie(), &c).unwrap();
        let qg = initial_query_graph(&c);
        let ctx = pqp_obs::QueryCtx::unlimited();
        ctx.cancel();
        match select_preferences_ctx(&qg, &g, &InterestCriterion::TopK(5), &PaperCombinator, &ctx) {
            Err(PrefError::Budget(b)) => assert_eq!(b.reason, BudgetReason::Cancelled),
            other => panic!("expected PrefError::Budget, got {other:?}"),
        }
    }

    #[test]
    fn multiple_query_nodes_anchor_paths() {
        let c = catalog();
        let mut p = Profile::new("x");
        p.add_selection("MOVIE", "year", Value::Int(1999), 0.6).unwrap();
        // Note: a PLAY.date preference would conflict with the query's own
        // date selection; use the tid attribute instead.
        p.add_selection("PLAY", "tid", "t1", 0.5).unwrap();
        let g = InMemoryGraph::build(&p, &c).unwrap();
        let qg = initial_query_graph(&c);
        let out = select_preferences(&qg, &g, &InterestCriterion::TopK(10));
        let anchors: Vec<&str> = out.selected.iter().map(|p| p.start_var.as_str()).collect();
        assert!(anchors.contains(&"MV"));
        assert!(anchors.contains(&"PL"));
    }
}
