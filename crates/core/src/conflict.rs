//! Syntactic conflict detection (§5 and §6).
//!
//! Two conditions are *syntactically conflicting* when they are comprised of
//! a common transitive join plus atomic selections on the same attribute
//! with different values, and all constituent joins — in the direction of
//! the selection — are to-one (a theatre is in exactly one region, so
//! `region='uptown'` and `region='downtown'` can never hold together).
//!
//! The prototype (like the paper's) handles conflicts pairwise at the
//! syntactic level: a preference is checked against the query's own
//! selection conditions, and selected preferences are checked against each
//! other during integration.

use crate::path::PreferencePath;
use crate::query_graph::QueryGraph;

/// Whether a completed preference path conflicts with the query itself.
///
/// True iff: the path ends in a selection on attribute `A`; every join of
/// the path is to-one; and the query embeds the same join chain starting at
/// the path's anchor variable, ending at a variable with a selection on `A`
/// carrying a *different* value.
pub fn conflicts_with_query(path: &PreferencePath, qg: &QueryGraph) -> bool {
    let Some(sel) = &path.selection else {
        return false;
    };
    if !path.all_joins_to_one() {
        return false;
    }
    // Walk the query graph along the path's join chain, tracking the set of
    // variables reachable by the chain so far (replicated relations can make
    // this a set).
    let mut vars: Vec<String> = vec![path.start_var.clone()];
    for hop in path.join_signature() {
        let (from_tbl, from_col, to_tbl, to_col) = hop;
        let mut next = Vec::new();
        for v in &vars {
            let Some(node) = qg.node(v) else { continue };
            if !node.table.eq_ignore_ascii_case(&from_tbl) {
                continue;
            }
            for (_, col, other_var, other_col) in qg.joins_from_var(v) {
                let Some(other) = qg.node(&other_var) else {
                    continue;
                };
                if col.eq_ignore_ascii_case(&from_col)
                    && other.table.eq_ignore_ascii_case(&to_tbl)
                    && other_col.eq_ignore_ascii_case(&to_col)
                    && !next.iter().any(|x: &String| x.eq_ignore_ascii_case(&other_var))
                {
                    next.push(other_var);
                }
            }
        }
        vars = next;
        if vars.is_empty() {
            return false;
        }
    }
    // Any reachable variable with a different-valued selection on the same
    // attribute conflicts.
    vars.iter().any(|v| qg.selections_on(v, &sel.attr.column).any(|qs| qs.value != sel.value))
}

/// Whether two completed preference paths conflict with each other.
///
/// True iff both end in selections on the same attribute with different
/// values, share the same anchor variable and the same join chain, and the
/// chain is all to-one (so both selections would constrain the same tuple).
pub fn conflicts_between(a: &PreferencePath, b: &PreferencePath) -> bool {
    let (Some(sa), Some(sb)) = (&a.selection, &b.selection) else {
        return false;
    };
    if !sa.attr.same_as(&sb.attr) || sa.value == sb.value {
        return false;
    }
    if !a.start_var.eq_ignore_ascii_case(&b.start_var) {
        return false;
    }
    if a.join_signature() != b.join_signature() {
        return false;
    }
    a.all_joins_to_one() && b.all_joins_to_one()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doi::{Doi, PaperCombinator};
    use crate::graph::{JoinEdge, SelectionEdge};
    use crate::pref::AttrRef;
    use pqp_storage::{Cardinality, Catalog, ColumnDef, DataType, TableSchema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "THEATRE",
                vec![ColumnDef::new("tid", DataType::Int), ColumnDef::new("region", DataType::Str)],
            )
            .with_primary_key(&["tid"]),
        )
        .unwrap();
        c.create_table(TableSchema::new(
            "PLAY",
            vec![ColumnDef::new("tid", DataType::Int), ColumnDef::new("mid", DataType::Int)],
        ))
        .unwrap();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c
    }

    fn qg(sql: &str) -> QueryGraph {
        let q = pqp_sql::parse_query(sql).unwrap();
        QueryGraph::from_select(q.as_select().unwrap(), &catalog()).unwrap()
    }

    fn sel_path(var: &str, table: &str, attr: (&str, &str), value: &str) -> PreferencePath {
        PreferencePath::anchor(var, table).with_selection(
            SelectionEdge {
                attr: AttrRef::new(attr.0, attr.1),
                value: Value::str(value),
                doi: Doi::new(0.8).unwrap(),
            },
            &PaperCombinator,
        )
    }

    fn join(from: (&str, &str), to: (&str, &str), card: Cardinality) -> JoinEdge {
        JoinEdge {
            from: AttrRef::new(from.0, from.1),
            to: AttrRef::new(to.0, to.1),
            doi: Doi::new(1.0).unwrap(),
            cardinality: card,
        }
    }

    #[test]
    fn zero_join_conflict_with_query() {
        // Paper's example: query has region='uptown'; preference
        // region='downtown' conflicts.
        let g = qg("select TH.tid from THEATRE TH where TH.region = 'uptown'");
        let p = sel_path("TH", "THEATRE", ("THEATRE", "region"), "downtown");
        assert!(conflicts_with_query(&p, &g));
        // Same value: no conflict (it is the same condition).
        let same = sel_path("TH", "THEATRE", ("THEATRE", "region"), "uptown");
        assert!(!conflicts_with_query(&same, &g));
        // Different attribute: no conflict.
        let other = sel_path("TH", "THEATRE", ("THEATRE", "tid"), "uptown");
        assert!(!conflicts_with_query(&other, &g));
    }

    #[test]
    fn transitive_conflict_through_to_one_chain() {
        // Query: PLAY ⋈ MOVIE with MOVIE.title='The Last Dictator'.
        // Preference: PLAY →(to-one) MOVIE.title='Other' conflicts.
        let g = qg("select PL.tid from PLAY PL, MOVIE MV \
             where PL.mid = MV.mid and MV.title = 'The Last Dictator'");
        let p = PreferencePath::anchor("PL", "PLAY")
            .with_join(
                join(("PLAY", "mid"), ("MOVIE", "mid"), Cardinality::ToOne),
                &PaperCombinator,
            )
            .with_selection(
                SelectionEdge {
                    attr: AttrRef::new("MOVIE", "title"),
                    value: Value::str("Other"),
                    doi: Doi::new(0.9).unwrap(),
                },
                &PaperCombinator,
            );
        assert!(conflicts_with_query(&p, &g));
    }

    #[test]
    fn to_many_chain_never_conflicts() {
        // THEATRE →(to-many) PLAY: a theatre plays many movies, so a
        // preference on another play date cannot conflict.
        let g = qg("select TH.tid from THEATRE TH, PLAY PL \
             where TH.tid = PL.tid and PL.mid = '5'");
        let p = PreferencePath::anchor("TH", "THEATRE")
            .with_join(
                join(("THEATRE", "tid"), ("PLAY", "tid"), Cardinality::ToMany),
                &PaperCombinator,
            )
            .with_selection(
                SelectionEdge {
                    attr: AttrRef::new("PLAY", "mid"),
                    value: Value::str("7"),
                    doi: Doi::new(0.9).unwrap(),
                },
                &PaperCombinator,
            );
        assert!(!conflicts_with_query(&p, &g));
    }

    #[test]
    fn chain_must_be_embedded_in_query() {
        // Query joins nothing: a transitive preference cannot conflict even
        // if a same-attribute selection exists on an unrelated variable.
        let g = qg("select PL.tid from PLAY PL where PL.mid = '3'");
        let p = PreferencePath::anchor("PL", "PLAY")
            .with_join(
                join(("PLAY", "mid"), ("MOVIE", "mid"), Cardinality::ToOne),
                &PaperCombinator,
            )
            .with_selection(
                SelectionEdge {
                    attr: AttrRef::new("MOVIE", "title"),
                    value: Value::str("X"),
                    doi: Doi::new(0.9).unwrap(),
                },
                &PaperCombinator,
            );
        assert!(!conflicts_with_query(&p, &g));
    }

    #[test]
    fn pairwise_conflicts() {
        let a = sel_path("TH", "THEATRE", ("THEATRE", "region"), "uptown");
        let b = sel_path("TH", "THEATRE", ("THEATRE", "region"), "downtown");
        assert!(conflicts_between(&a, &b));
        assert!(conflicts_between(&b, &a));
        // Same value → same condition, not a conflict.
        let c = sel_path("TH", "THEATRE", ("THEATRE", "region"), "uptown");
        assert!(!conflicts_between(&a, &c));
        // Different anchors don't conflict.
        let d = sel_path("T2", "THEATRE", ("THEATRE", "region"), "downtown");
        assert!(!conflicts_between(&a, &d));
    }

    #[test]
    fn pairwise_conflict_requires_to_one_chain() {
        let comb = PaperCombinator;
        let mk = |value: &str, card| {
            PreferencePath::anchor("TH", "THEATRE")
                .with_join(join(("THEATRE", "tid"), ("PLAY", "tid"), card), &comb)
                .with_selection(
                    SelectionEdge {
                        attr: AttrRef::new("PLAY", "mid"),
                        value: Value::str(value),
                        doi: Doi::new(0.5).unwrap(),
                    },
                    &comb,
                )
        };
        assert!(!conflicts_between(&mk("1", Cardinality::ToMany), &mk("2", Cardinality::ToMany)));
        assert!(conflicts_between(&mk("1", Cardinality::ToOne), &mk("2", Cardinality::ToOne)));
    }
}
