//! Property tests over the personalization core: tuple-variable allocation
//! invariants and the degree algebra under composition.

use pqp_core::doi::{Doi, PaperCombinator};
use pqp_core::graph::{JoinEdge, SelectionEdge};
use pqp_core::path::PreferencePath;
use pqp_core::pref::AttrRef;
use pqp_core::vars::VarAllocator;
use pqp_storage::{Cardinality, Value};
use proptest::prelude::*;

/// A small universe of tables/columns for random paths.
const TABLES: &[&str] = &["TA", "TB", "TC", "TD", "TE"];

fn arb_doi() -> impl Strategy<Value = Doi> {
    (0.05f64..=1.0).prop_map(|d| Doi::new(d).unwrap())
}

/// A random acyclic path of 0..4 joins anchored at `A@TA`, ending in a
/// selection.
fn arb_path() -> impl Strategy<Value = PreferencePath> {
    (
        prop::collection::vec(
            (any::<prop::sample::Index>(), any::<bool>(), arb_doi()),
            0..4,
        ),
        arb_doi(),
        "[a-z]{1,6}",
    )
        .prop_map(|(hops, sel_doi, sel_val)| {
            let comb = PaperCombinator;
            let mut path = PreferencePath::anchor("A", "TA");
            let mut current = "TA".to_string();
            let mut visited = vec!["TA".to_string()];
            for (pick, to_one, doi) in hops {
                // Next unvisited table keeps the path acyclic.
                let candidates: Vec<&str> = TABLES
                    .iter()
                    .copied()
                    .filter(|t| !visited.iter().any(|v| v == t))
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let next = candidates[pick.index(candidates.len())].to_string();
                path = path.with_join(
                    JoinEdge {
                        from: AttrRef::new(current.clone(), "x"),
                        to: AttrRef::new(next.clone(), "x"),
                        doi,
                        cardinality: if to_one {
                            Cardinality::ToOne
                        } else {
                            Cardinality::ToMany
                        },
                    },
                    &comb,
                );
                visited.push(next.clone());
                current = next;
            }
            path.with_selection(
                SelectionEdge {
                    attr: AttrRef::new(current, "v"),
                    value: Value::str(sel_val),
                    doi: sel_doi,
                },
                &comb,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn path_degree_is_product_of_edges(p in arb_path()) {
        let mut expect = 1.0;
        for j in &p.joins {
            expect *= j.doi.value();
        }
        expect *= p.selection.as_ref().unwrap().doi.value();
        prop_assert!((p.doi.value() - expect).abs() < 1e-12);
        // And never exceeds any single edge degree.
        for j in &p.joins {
            prop_assert!(p.doi <= j.doi);
        }
    }

    #[test]
    fn allocation_invariants(paths in prop::collection::vec(arb_path(), 1..8)) {
        let mut alloc = VarAllocator::new(vec!["A".to_string()]);
        let vars = alloc.allocate(&paths);
        prop_assert_eq!(vars.len(), paths.len());

        for (p, v) in paths.iter().zip(&vars) {
            // One variable per hop, none reserved.
            prop_assert_eq!(v.hop_vars.len(), p.joins.len());
            for name in &v.hop_vars {
                prop_assert!(!name.eq_ignore_ascii_case("A"));
            }
            // Within a path, all hop variables are distinct.
            for i in 0..v.hop_vars.len() {
                for j in (i + 1)..v.hop_vars.len() {
                    prop_assert_ne!(&v.hop_vars[i], &v.hop_vars[j]);
                }
            }
        }

        // Pairwise: identical all-to-one prefixes share variables; any pair
        // sharing a variable at hop h has identical edge prefixes up to h,
        // all to-one.
        for a in 0..paths.len() {
            for b in (a + 1)..paths.len() {
                let (pa, pb) = (&paths[a], &paths[b]);
                let (va, vb) = (&vars[a], &vars[b]);
                let hops = pa.joins.len().min(pb.joins.len());
                let mut forced = true;
                for h in 0..hops {
                    let same_edge = pa.join_signature()[h] == pb.join_signature()[h];
                    let to_one = pa.joins[h].cardinality == Cardinality::ToOne
                        && pb.joins[h].cardinality == Cardinality::ToOne;
                    forced = forced && same_edge && to_one;
                    let shared = va.hop_vars[h] == vb.hop_vars[h];
                    if forced {
                        prop_assert!(
                            shared,
                            "forced to-one prefix must share at hop {h}: {pa} / {pb}"
                        );
                    } else {
                        prop_assert!(
                            !shared,
                            "sharing without a forced prefix at hop {h}: {pa} / {pb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn allocation_is_deterministic(paths in prop::collection::vec(arb_path(), 1..6)) {
        let a = VarAllocator::new(vec!["A".to_string()]).allocate(&paths);
        let b = VarAllocator::new(vec!["A".to_string()]).allocate(&paths);
        prop_assert_eq!(a, b);
    }
}
