//! Randomized tests over the personalization core: tuple-variable allocation
//! invariants and the degree algebra under composition.

use pqp_core::doi::{Doi, PaperCombinator};
use pqp_core::graph::{JoinEdge, SelectionEdge};
use pqp_core::path::PreferencePath;
use pqp_core::pref::AttrRef;
use pqp_core::vars::VarAllocator;
use pqp_obs::rng::{Rng, SmallRng};
use pqp_storage::{Cardinality, Value};

/// A small universe of tables/columns for random paths.
const TABLES: &[&str] = &["TA", "TB", "TC", "TD", "TE"];

fn arb_doi(rng: &mut SmallRng) -> Doi {
    Doi::new(0.05 + rng.gen_f64() * 0.95).unwrap()
}

fn arb_str(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(1..=6usize);
    (0..len).map(|_| (b'a' + rng.gen_range(0..26u32) as u8) as char).collect()
}

/// A random acyclic path of 0..4 joins anchored at `A@TA`, ending in a
/// selection.
fn arb_path(rng: &mut SmallRng) -> PreferencePath {
    let comb = PaperCombinator;
    let mut path = PreferencePath::anchor("A", "TA");
    let mut current = "TA".to_string();
    let mut visited = vec!["TA".to_string()];
    let hops = rng.gen_range(0..4usize);
    for _ in 0..hops {
        // Next unvisited table keeps the path acyclic.
        let candidates: Vec<&str> =
            TABLES.iter().copied().filter(|t| !visited.iter().any(|v| v == t)).collect();
        if candidates.is_empty() {
            break;
        }
        let next = candidates[rng.gen_index(candidates.len())].to_string();
        let doi = arb_doi(rng);
        path = path.with_join(
            JoinEdge {
                from: AttrRef::new(current.clone(), "x"),
                to: AttrRef::new(next.clone(), "x"),
                doi,
                cardinality: if rng.gen_bool(0.5) {
                    Cardinality::ToOne
                } else {
                    Cardinality::ToMany
                },
            },
            &comb,
        );
        visited.push(next.clone());
        current = next;
    }
    path.with_selection(
        SelectionEdge {
            attr: AttrRef::new(current, "v"),
            value: Value::str(arb_str(rng)),
            doi: arb_doi(rng),
        },
        &comb,
    )
}

#[test]
fn path_degree_is_product_of_edges() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_c04e);
    for _ in 0..256 {
        let p = arb_path(&mut rng);
        let mut expect = 1.0;
        for j in &p.joins {
            expect *= j.doi.value();
        }
        expect *= p.selection.as_ref().unwrap().doi.value();
        assert!((p.doi.value() - expect).abs() < 1e-12, "degree not a product: {p}");
        // And never exceeds any single edge degree.
        for j in &p.joins {
            assert!(p.doi <= j.doi);
        }
    }
}

#[test]
fn allocation_invariants() {
    let mut rng = SmallRng::seed_from_u64(0xa110_c8ed);
    for _ in 0..256 {
        let n = rng.gen_range(1..8usize);
        let paths: Vec<PreferencePath> = (0..n).map(|_| arb_path(&mut rng)).collect();
        let mut alloc = VarAllocator::new(vec!["A".to_string()]);
        let vars = alloc.allocate(&paths);
        assert_eq!(vars.len(), paths.len());

        for (p, v) in paths.iter().zip(&vars) {
            // One variable per hop, none reserved.
            assert_eq!(v.hop_vars.len(), p.joins.len());
            for name in &v.hop_vars {
                assert!(!name.eq_ignore_ascii_case("A"));
            }
            // Within a path, all hop variables are distinct.
            for i in 0..v.hop_vars.len() {
                for j in (i + 1)..v.hop_vars.len() {
                    assert_ne!(&v.hop_vars[i], &v.hop_vars[j]);
                }
            }
        }

        // Pairwise: identical all-to-one prefixes share variables; any pair
        // sharing a variable at hop h has identical edge prefixes up to h,
        // all to-one.
        for a in 0..paths.len() {
            for b in (a + 1)..paths.len() {
                let (pa, pb) = (&paths[a], &paths[b]);
                let (va, vb) = (&vars[a], &vars[b]);
                let hops = pa.joins.len().min(pb.joins.len());
                let mut forced = true;
                for h in 0..hops {
                    let same_edge = pa.join_signature()[h] == pb.join_signature()[h];
                    let to_one = pa.joins[h].cardinality == Cardinality::ToOne
                        && pb.joins[h].cardinality == Cardinality::ToOne;
                    forced = forced && same_edge && to_one;
                    let shared = va.hop_vars[h] == vb.hop_vars[h];
                    if forced {
                        assert!(shared, "forced to-one prefix must share at hop {h}: {pa} / {pb}");
                    } else {
                        assert!(!shared, "sharing without a forced prefix at hop {h}: {pa} / {pb}");
                    }
                }
            }
        }
    }
}

#[test]
fn allocation_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0xdede_7e57);
    for _ in 0..128 {
        let n = rng.gen_range(1..6usize);
        let paths: Vec<PreferencePath> = (0..n).map(|_| arb_path(&mut rng)).collect();
        let a = VarAllocator::new(vec!["A".to_string()]).allocate(&paths);
        let b = VarAllocator::new(vec!["A".to_string()]).allocate(&paths);
        assert_eq!(a, b);
    }
}
