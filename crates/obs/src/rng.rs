//! A deterministic PRNG behind a minimal trait — the workspace's stand-in
//! for the `rand` crate (the build must work offline with no registry
//! dependencies).
//!
//! The generator is xoshiro256++ seeded through SplitMix64: fast, far better
//! distributed than a bare LCG, and stable across platforms so seeded
//! experiments and randomized tests reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// A source of randomness. Only [`Rng::next_u64`] is required; everything
/// else is derived.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (the upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0..=i)`. Panics on empty ranges.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform index into a slice of length `n`. Panics when `n == 0`.
    fn gen_index(&mut self, n: usize) -> usize
    where
        Self: Sized,
    {
        assert!(n > 0, "gen_index over an empty collection");
        (self.next_u64() % n as u64) as usize
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = rng.next_u64() % span;
                (self.start as $u).wrapping_add(off as $u) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over an empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t; // the full 64-bit domain
                }
                let off = rng.next_u64() % (span + 1);
                (lo as $u).wrapping_add(off as $u) as $t
            }
        }
    )*};
}

int_sample_range!(
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    usize => usize,
    i32 => u32,
    i64 => u64,
);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range over an empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// xoshiro256++: the workspace's default generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed deterministically from a single `u64` (SplitMix64 expansion, the
    /// construction the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut x = seed;
        let mut split = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SmallRng { s: [split(), split(), split(), split()] }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u8);
            assert!(w <= 5);
            let x = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&x));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_covers_it() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut below_half = 0usize;
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&below_half), "{below_half}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "{hits}");
        assert!(!SmallRng::seed_from_u64(3).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(3).gen_bool(1.0));
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(mut rng: impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let via_ref = draw(&mut rng);
        let direct = SmallRng::seed_from_u64(5).next_u64();
        assert_eq!(via_ref, direct);
        let dynamic: &mut dyn Rng = &mut rng;
        let _ = dynamic.next_u32();
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5..5);
    }
}
