//! Hierarchical spans with RAII timing.
//!
//! A trace is thread-local: [`trace_begin`] opens a root span, [`span`]
//! opens nested children whose guards close them on drop, and [`trace_end`]
//! closes everything and returns the finished [`PipelineTrace`]. When no
//! trace is active, [`span`] and [`record`] are cheap no-ops — the pipeline
//! stays instrumented permanently without taxing un-traced runs.
//!
//! Guards are depth-indexed rather than identity-tracked: dropping a guard
//! closes its span *and any still-open descendants*, clamping their end
//! times to the parent's. A child span therefore can never be recorded as
//! outliving its parent, even if its guard is leaked or dropped out of
//! order.

use crate::json::Json;
use crate::metrics::Registry;
use std::cell::RefCell;
use std::time::Instant;

/// A value recorded on a span via [`record`].
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    Int(i64),
    Float(f64),
    Str(String),
}

impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::Int(v)
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::Int(v as i64)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::Int(v as i64)
    }
}

impl From<u32> for Field {
    fn from(v: u32) -> Field {
        Field::Int(v as i64)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::Float(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

impl Field {
    fn to_json(&self) -> Json {
        match self {
            Field::Int(v) => Json::Int(*v),
            Field::Float(v) => Json::Num(*v),
            Field::Str(v) => Json::Str(v.clone()),
        }
    }
}

/// A closed span in the finished trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    pub name: String,
    /// Start offset from the trace origin, in microseconds.
    pub start_us: f64,
    /// Wall-clock duration, in microseconds.
    pub elapsed_us: f64,
    pub fields: Vec<(String, Field)>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_us / 1_000.0
    }

    /// Depth-first search for the first span with this name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    pub fn field(&self, key: &str) -> Option<&Field> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn to_json(&self) -> Json {
        let mut fields = Json::obj();
        for (k, v) in &self.fields {
            fields = fields.set(k, v.to_json());
        }
        Json::obj()
            .set("name", self.name.as_str())
            .set("start_us", self.start_us)
            .set("elapsed_us", self.elapsed_us)
            .set("fields", fields)
            .set("children", Json::Arr(self.children.iter().map(|c| c.to_json()).collect()))
    }
}

struct OpenSpan {
    name: String,
    started: Instant,
    start_us: f64,
    fields: Vec<(String, Field)>,
    children: Vec<SpanNode>,
}

struct TraceState {
    origin: Instant,
    /// `stack[0]` is the root; deeper entries are open descendants.
    stack: Vec<OpenSpan>,
    metrics: Registry,
}

thread_local! {
    static TRACE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// A finished trace: the span tree plus the metrics recorded while it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTrace {
    pub root: SpanNode,
    pub metrics: Registry,
}

impl PipelineTrace {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("schema_version", 1i64)
            .set("root", self.root.to_json())
            .set("metrics", self.metrics.to_json())
    }

    /// Render as an `EXPLAIN ANALYZE`-style text report.
    pub fn render(&self) -> String {
        crate::report::render(self)
    }
}

/// Begin a thread-local trace rooted at `name`. Any trace already active on
/// this thread is discarded.
pub fn trace_begin(name: &str) {
    let origin = Instant::now();
    TRACE.with(|t| {
        *t.borrow_mut() = Some(TraceState {
            origin,
            stack: vec![OpenSpan {
                name: name.to_string(),
                started: origin,
                start_us: 0.0,
                fields: Vec::new(),
                children: Vec::new(),
            }],
            metrics: Registry::new(),
        });
    });
}

/// Whether a trace is active on this thread.
pub fn trace_active() -> bool {
    TRACE.with(|t| t.borrow().is_some())
}

/// End the active trace, closing any spans still open, and return it.
pub fn trace_end() -> Option<PipelineTrace> {
    TRACE.with(|t| {
        let state = t.borrow_mut().take()?;
        let TraceState { mut stack, metrics, .. } = state;
        let now = Instant::now();
        // Close open spans innermost-first, folding each into its parent.
        while stack.len() > 1 {
            let open = stack.pop().expect("non-empty");
            let node = close_span(open, now);
            stack.last_mut().expect("parent").children.push(node);
        }
        let root = close_span(stack.pop()?, now);
        Some(PipelineTrace { root, metrics })
    })
}

fn close_span(open: OpenSpan, now: Instant) -> SpanNode {
    let elapsed_us = now.saturating_duration_since(open.started).as_secs_f64() * 1e6;
    SpanNode {
        name: open.name,
        start_us: open.start_us,
        elapsed_us,
        fields: open.fields,
        children: open.children,
    }
}

/// An RAII guard for a span opened with [`span`]. Dropping it closes the
/// span and any still-open children (their end times clamp to this one's).
#[must_use = "a span guard times its scope; dropping it immediately closes the span"]
pub struct SpanGuard {
    /// Index of this span in the trace stack; `None` when no trace was
    /// active at creation (the guard is then a no-op).
    depth: Option<usize>,
}

/// Open a child span of the innermost open span. A no-op guard when no
/// trace is active on this thread.
pub fn span(name: &str) -> SpanGuard {
    TRACE.with(|t| {
        let mut borrow = t.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return SpanGuard { depth: None };
        };
        let now = Instant::now();
        let depth = state.stack.len();
        state.stack.push(OpenSpan {
            name: name.to_string(),
            started: now,
            start_us: now.saturating_duration_since(state.origin).as_secs_f64() * 1e6,
            fields: Vec::new(),
            children: Vec::new(),
        });
        SpanGuard { depth: Some(depth) }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(depth) = self.depth else { return };
        TRACE.with(|t| {
            let mut borrow = t.borrow_mut();
            let Some(state) = borrow.as_mut() else { return };
            // Late drop (the span was already closed by an ancestor's guard
            // or by trace_end starting a new trace): nothing to do.
            if state.stack.len() <= depth {
                return;
            }
            let now = Instant::now();
            while state.stack.len() > depth {
                let open = state.stack.pop().expect("non-empty");
                let node = close_span(open, now);
                if let Some(parent) = state.stack.last_mut() {
                    parent.children.push(node);
                }
            }
        });
    }
}

/// Attach a key/value field to the innermost open span. A no-op when no
/// trace is active.
pub fn record(key: &str, value: impl Into<Field>) {
    TRACE.with(|t| {
        let mut borrow = t.borrow_mut();
        let Some(state) = borrow.as_mut() else { return };
        if let Some(open) = state.stack.last_mut() {
            open.fields.push((key.to_string(), value.into()));
        }
    });
}

/// Run `f` against the active trace's metrics registry, if any. Used by the
/// `metrics` module so counters recorded mid-trace land in the trace too.
pub(crate) fn with_trace_metrics(f: impl FnOnce(&mut Registry)) {
    TRACE.with(|t| {
        let mut borrow = t.borrow_mut();
        if let Some(state) = borrow.as_mut() {
            f(&mut state.metrics);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_a_tree() {
        trace_begin("pipeline");
        {
            let _parse = span("parse");
            record("tokens", 12usize);
        }
        {
            let _sel = span("selection");
            {
                let _expand = span("expand");
            }
            {
                let _rank = span("rank");
            }
        }
        let trace = trace_end().expect("trace");
        assert_eq!(trace.root.name, "pipeline");
        assert_eq!(trace.root.children.len(), 2);
        assert_eq!(trace.root.children[0].name, "parse");
        assert_eq!(trace.root.children[0].field("tokens"), Some(&Field::Int(12)));
        let sel = &trace.root.children[1];
        assert_eq!(sel.name, "selection");
        let names: Vec<&str> = sel.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["expand", "rank"]);
        assert!(trace.root.find("rank").is_some());
        assert!(!trace_active());
    }

    #[test]
    fn noop_without_active_trace() {
        assert!(!trace_active());
        let g = span("orphan");
        record("ignored", 1i64);
        drop(g);
        assert!(trace_end().is_none());
    }

    #[test]
    fn dropped_child_cannot_outlive_parent() {
        trace_begin("root");
        let parent = span("parent");
        let child = span("child");
        std::thread::sleep(std::time::Duration::from_millis(2));
        // Parent's guard drops first: it must close the still-open child,
        // clamping the child's end time to its own.
        drop(parent);
        // The child's guard drops late — must be a no-op, not a double close.
        drop(child);
        let trace = trace_end().expect("trace");
        assert_eq!(trace.root.children.len(), 1);
        let p = &trace.root.children[0];
        assert_eq!(p.name, "parent");
        assert_eq!(p.children.len(), 1);
        let c = &p.children[0];
        assert_eq!(c.name, "child");
        assert!(
            c.elapsed_us <= p.elapsed_us + 1e-9,
            "child {}us outlives parent {}us",
            c.elapsed_us,
            p.elapsed_us
        );
        // And the child's start offset is not before the parent's.
        assert!(c.start_us >= p.start_us);
    }

    #[test]
    fn trace_end_closes_open_spans() {
        trace_begin("root");
        let _leaked = span("still-open");
        let trace = trace_end().expect("trace");
        assert_eq!(trace.root.children.len(), 1);
        assert_eq!(trace.root.children[0].name, "still-open");
        // The leaked guard drops after the trace ended: no-op.
    }

    #[test]
    fn metrics_flow_into_the_trace() {
        trace_begin("root");
        crate::metrics::counter_add("selection.rounds", 4);
        crate::metrics::observe("exec.ms", 1.5);
        let trace = trace_end().expect("trace");
        assert_eq!(trace.metrics.counter("selection.rounds"), 4);
        assert_eq!(trace.metrics.histogram("exec.ms").unwrap().count(), 1);
        // The global registry saw them too.
        assert!(crate::metrics::global_snapshot().counter("selection.rounds") >= 4);
    }

    #[test]
    fn trace_json_shape() {
        trace_begin("root");
        {
            let _s = span("stage");
            record("rows", 3usize);
        }
        let trace = trace_end().expect("trace");
        let j = trace.to_json();
        assert_eq!(j.get("schema_version").unwrap().as_i64(), Some(1));
        let root = j.get("root").unwrap();
        assert_eq!(root.get("name").unwrap().as_str(), Some("root"));
        let children = root.get("children").unwrap().as_array().unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(children[0].get("fields").unwrap().get("rows").unwrap().as_i64(), Some(3));
        // The rendered JSON reparses to the same value.
        let text = j.render();
        let back = crate::json::Json::parse(&text).expect("reparse");
        assert_eq!(back.get("schema_version").unwrap().as_i64(), Some(1));
    }
}
