//! A zero-dependency failpoint registry for fault injection.
//!
//! Named sites in storage/engine/service call [`fire`]`("site.name")`; when a
//! failpoint is configured for that site the call injects a fault — an error
//! message for the caller to surface as its layer's typed error, a panic, or
//! a delay. With nothing configured, `fire` is a single relaxed atomic load,
//! cheap enough to leave in hot paths permanently.
//!
//! # Spec grammar
//!
//! Each site takes a spec of the form `[pct%][cnt*]kind[(arg)]`:
//!
//! - `error(msg)` — `fire` returns `Some(msg)`; the caller turns it into its
//!   layer's error type. `error` alone uses the site name as the message.
//! - `panic(msg)` — `fire` panics (exercises `catch_unwind` isolation).
//! - `delay(ms)` — `fire` sleeps `ms` milliseconds, then returns `None`
//!   (exercises deadline enforcement). `delay` alone sleeps 10 ms.
//! - `off` — removes the site.
//! - `25%error` — fires probabilistically, driven by the in-tree
//!   deterministic xoshiro RNG ([`set_seed`], `PQP_FAILPOINT_SEED`).
//! - `2*panic` — fires on the first 2 calls, then stays off.
//! - `50%3*delay(20)` — combinations compose: each call draws, at most 3 fire.
//!
//! # Configuration
//!
//! Programmatic: [`configure`]`("site", "spec")`, [`remove`], [`clear`].
//! From the environment: `PQP_FAILPOINTS="site=spec;site2=spec2"`, applied by
//! [`init_from_env`] (the service calls it at construction).
//!
//! Site names follow a `<layer>.<site>` scheme (`storage.scan`,
//! `join.build`, `par.worker`, `shard.lock`, `select.pref`, `select.budget`,
//! `plan.cache`, `service.query`) — see DESIGN.md §12 for the registry of
//! meanings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::rng::{Rng, SmallRng};

#[derive(Debug, Clone, PartialEq)]
enum Action {
    Error(String),
    Panic(String),
    Delay(u64),
}

#[derive(Debug, Clone, PartialEq)]
struct Failpoint {
    /// Fire with this probability (1.0 = always).
    pct: f64,
    /// Remaining fires, `None` = unlimited.
    remaining: Option<u64>,
    action: Action,
}

/// Fast path: true iff at least one failpoint is registered. Keeps `fire`
/// at a single atomic load on unconfigured processes.
static ACTIVE: AtomicBool = AtomicBool::new(false);

struct State {
    sites: HashMap<String, Failpoint>,
    rng: SmallRng,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State { sites: HashMap::new(), rng: SmallRng::seed_from_u64(DEFAULT_SEED) })
    })
}

const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn lock_state() -> std::sync::MutexGuard<'static, State> {
    // The registry must stay usable after a panic() action fired while the
    // lock was held mid-`fire` — recover the poison like storage's sync.
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Re-seed the probability RNG (also `PQP_FAILPOINT_SEED` via
/// [`init_from_env`]). Same seed + same fire sequence = same draws.
pub fn set_seed(seed: u64) {
    lock_state().rng = SmallRng::seed_from_u64(seed);
}

/// Configure one site from a spec string (see module docs for the grammar).
/// `off` removes the site. Returns a description of the problem for an
/// unparsable spec.
pub fn configure(site: &str, spec: &str) -> Result<(), String> {
    let site = site.trim();
    if site.is_empty() {
        return Err("empty failpoint site name".into());
    }
    let spec = spec.trim();
    if spec == "off" {
        remove(site);
        return Ok(());
    }
    let parsed = parse_spec(site, spec)?;
    let mut st = lock_state();
    st.sites.insert(site.to_string(), parsed);
    ACTIVE.store(true, Ordering::Relaxed);
    Ok(())
}

/// Configure many sites at once from `site=spec;site2=spec2` (the
/// `PQP_FAILPOINTS` format). Empty segments are ignored.
pub fn configure_many(pairs: &str) -> Result<(), String> {
    for part in pairs.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, spec) = part
            .split_once('=')
            .ok_or_else(|| format!("failpoint segment without '=': {part:?}"))?;
        configure(site, spec)?;
    }
    Ok(())
}

/// Remove one site.
pub fn remove(site: &str) {
    let mut st = lock_state();
    st.sites.remove(site.trim());
    if st.sites.is_empty() {
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

/// Remove every configured failpoint (chaos tests call this between cases).
pub fn clear() {
    let mut st = lock_state();
    st.sites.clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Currently configured site names (diagnostics).
pub fn active_sites() -> Vec<String> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Vec::new();
    }
    let mut names: Vec<String> = lock_state().sites.keys().cloned().collect();
    names.sort();
    names
}

/// Apply `PQP_FAILPOINTS` / `PQP_FAILPOINT_SEED` from the environment, once
/// per process (later calls are no-ops). Unparsable specs are ignored — a
/// bad env var must never take the service down.
pub fn init_from_env() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if let Ok(seed) = std::env::var("PQP_FAILPOINT_SEED") {
            if let Ok(seed) = seed.trim().parse() {
                set_seed(seed);
            }
        }
        if let Ok(spec) = std::env::var("PQP_FAILPOINTS") {
            let _ = configure_many(&spec);
        }
    });
}

/// Evaluate the failpoint at `site`.
///
/// Returns `Some(message)` when an `error` action fires (the caller wraps it
/// in its layer's typed error), `None` otherwise. A `panic` action panics
/// here; a `delay` action sleeps here. With no failpoint configured anywhere
/// this is a single atomic load.
pub fn fire(site: &str) -> Option<String> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let action = {
        let mut st = lock_state();
        let (pct, remaining) = match st.sites.get(site) {
            Some(fp) => (fp.pct, fp.remaining),
            None => return None,
        };
        if remaining == Some(0) {
            return None;
        }
        if pct < 1.0 && st.rng.gen_f64() >= pct {
            return None;
        }
        let fp = st.sites.get_mut(site)?;
        if let Some(n) = fp.remaining.as_mut() {
            *n -= 1;
        }
        fp.action.clone()
    };
    crate::metrics::counter_add(&format!("failpoint.{site}"), 1);
    match action {
        Action::Error(msg) => Some(msg),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Panic(msg) => panic!("failpoint {site}: {msg}"),
    }
}

fn parse_spec(site: &str, spec: &str) -> Result<Failpoint, String> {
    let mut rest = spec;
    let mut pct = 1.0f64;
    let mut remaining = None;
    if let Some((head, tail)) = rest.split_once('%') {
        pct = head
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("bad percentage in failpoint spec {spec:?}"))?
            / 100.0;
        if !(0.0..=1.0).contains(&pct) {
            return Err(format!("percentage out of range in failpoint spec {spec:?}"));
        }
        rest = tail;
    }
    if let Some((head, tail)) = rest.split_once('*') {
        remaining = Some(
            head.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad count in failpoint spec {spec:?}"))?,
        );
        rest = tail;
    }
    let rest = rest.trim();
    let (kind, arg) = match rest.split_once('(') {
        Some((kind, tail)) => {
            let arg = tail
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed '(' in failpoint spec {spec:?}"))?;
            (kind.trim(), Some(arg.trim()))
        }
        None => (rest, None),
    };
    let action = match kind {
        "error" => Action::Error(arg.unwrap_or(site).to_string()),
        "panic" => Action::Panic(arg.unwrap_or(site).to_string()),
        "delay" => {
            let ms = match arg {
                None | Some("") => 10,
                Some(a) => a
                    .parse()
                    .map_err(|_| format!("bad delay milliseconds in failpoint spec {spec:?}"))?,
            };
            Action::Delay(ms)
        }
        other => return Err(format!("unknown failpoint kind {other:?} in spec {spec:?}")),
    };
    Ok(Failpoint { pct, remaining, action })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global; serialize tests touching it.
    static GUARD: StdMutex<()> = StdMutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inactive_site_is_silent() {
        let _g = exclusive();
        clear();
        assert_eq!(fire("storage.scan"), None);
        assert!(active_sites().is_empty());
    }

    #[test]
    fn error_action_returns_message_and_off_removes() {
        let _g = exclusive();
        clear();
        configure("storage.scan", "error(disk gremlin)").unwrap();
        assert_eq!(fire("storage.scan").as_deref(), Some("disk gremlin"));
        assert_eq!(fire("other.site"), None);
        configure("storage.scan", "off").unwrap();
        assert_eq!(fire("storage.scan"), None);
        clear();
    }

    #[test]
    fn error_without_arg_uses_site_name() {
        let _g = exclusive();
        clear();
        configure("join.build", "error").unwrap();
        assert_eq!(fire("join.build").as_deref(), Some("join.build"));
        clear();
    }

    #[test]
    fn count_limits_fires() {
        let _g = exclusive();
        clear();
        configure("par.worker", "2*error(x)").unwrap();
        assert!(fire("par.worker").is_some());
        assert!(fire("par.worker").is_some());
        assert!(fire("par.worker").is_none());
        assert!(fire("par.worker").is_none());
        clear();
    }

    #[test]
    fn percentage_is_deterministic_for_a_seed() {
        let _g = exclusive();
        clear();
        set_seed(42);
        configure("select.pref", "30%error(p)").unwrap();
        let first: Vec<bool> = (0..64).map(|_| fire("select.pref").is_some()).collect();
        let hits = first.iter().filter(|h| **h).count();
        assert!(hits > 0 && hits < 64, "30% of 64 draws should be partial: {hits}");
        set_seed(42);
        let second: Vec<bool> = (0..64).map(|_| fire("select.pref").is_some()).collect();
        assert_eq!(first, second);
        clear();
    }

    #[test]
    fn delay_sleeps_at_least_requested() {
        let _g = exclusive();
        clear();
        configure("shard.lock", "delay(20)").unwrap();
        let t = std::time::Instant::now();
        assert_eq!(fire("shard.lock"), None);
        assert!(t.elapsed() >= Duration::from_millis(20));
        clear();
    }

    #[test]
    fn panic_action_panics_and_registry_survives() {
        let _g = exclusive();
        clear();
        configure("service.query", "1*panic(boom)").unwrap();
        let caught = std::panic::catch_unwind(|| fire("service.query"));
        assert!(caught.is_err());
        // Count was consumed; registry still works after the panic.
        assert_eq!(fire("service.query"), None);
        configure("service.query", "error(ok)").unwrap();
        assert_eq!(fire("service.query").as_deref(), Some("ok"));
        clear();
    }

    #[test]
    fn configure_many_parses_env_format() {
        let _g = exclusive();
        clear();
        configure_many("a.x=error(one); b.y=50%2*delay(5) ;; c.z=panic").unwrap();
        let mut sites = active_sites();
        sites.sort();
        assert_eq!(sites, ["a.x", "b.y", "c.z"]);
        assert_eq!(fire("a.x").as_deref(), Some("one"));
        clear();
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = exclusive();
        clear();
        assert!(configure("s", "explode").is_err());
        assert!(configure("s", "12x%error").is_err());
        assert!(configure("s", "101%error").is_err());
        assert!(configure("s", "q*error").is_err());
        assert!(configure("s", "error(unclosed").is_err());
        assert!(configure("s", "delay(abc)").is_err());
        assert!(configure("", "error").is_err());
        assert!(configure_many("no-equals-here").is_err());
        assert!(active_sites().is_empty());
        clear();
    }
}
