//! Counters, gauges and histograms in a [`Registry`], plus a process-global
//! registry aggregating across traces.
//!
//! The convenience functions ([`counter_add`], [`gauge_set`], [`observe`])
//! write to the global registry *and* to the registry of the active trace
//! (if any) — so one instrumentation call site feeds both the per-query
//! `EXPLAIN ANALYZE` report and the bench harness's aggregate breakdowns.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A histogram of `f64` samples with exact quantiles.
///
/// Samples are stored raw (the workloads here record thousands of samples,
/// not millions); quantiles sort lazily on read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
}

/// The summary row the reports print.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn record(&mut self, v: f64) {
        if v.is_finite() {
            self.samples.push(v);
        }
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY)
    }

    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Exact quantile by linear interpolation between order statistics
    /// (`q` clamped to `[0, 1]`; 0 on an empty histogram).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = q.clamp(0.0, 1.0);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn summary(&self) -> HistogramSummary {
        if self.samples.is_empty() {
            return HistogramSummary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
            };
        }
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.p50(),
            p95: self.p95(),
        }
    }

    fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    fn to_json(&self) -> Json {
        let s = self.summary();
        Json::obj()
            .set("count", s.count)
            .set("min", s.min)
            .set("max", s.max)
            .set("mean", s.mean)
            .set("p50", s.p50)
            .set("p95", s.p95)
    }
}

/// A named collection of counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, i64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add to a counter (creating it at 0).
    pub fn add(&mut self, name: &str, delta: i64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    pub fn counter(&self, name: &str) -> i64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, i64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (counters add, gauges take the
    /// other's value, histograms concatenate samples).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters = counters.set(k, *v);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges = gauges.set(k, *v);
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.histograms {
            histograms = histograms.set(k, h.to_json());
        }
        Json::obj().set("counters", counters).set("gauges", gauges).set("histograms", histograms)
    }
}

fn global_registry() -> &'static Mutex<Registry> {
    static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Registry::new()))
}

fn with_global(f: impl FnOnce(&mut Registry)) {
    let mut g = global_registry().lock().unwrap_or_else(|e| e.into_inner());
    f(&mut g);
}

/// Snapshot the process-global registry.
pub fn global_snapshot() -> Registry {
    global_registry().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Reset the process-global registry (bench harness runs between figures).
pub fn global_reset() {
    with_global(|g| *g = Registry::new());
}

/// Add to a counter in the global registry and the active trace (if any).
pub fn counter_add(name: &str, delta: i64) {
    with_global(|g| g.add(name, delta));
    crate::span::with_trace_metrics(|m| m.add(name, delta));
}

/// Set a gauge in the global registry and the active trace (if any).
pub fn gauge_set(name: &str, value: f64) {
    with_global(|g| g.set_gauge(name, value));
    crate::span::with_trace_metrics(|m| m.set_gauge(name, value));
}

/// Record a histogram sample in the global registry and the active trace.
pub fn observe(name: &str, value: f64) {
    with_global(|g| g.observe(name, value));
    crate::span::with_trace_metrics(|m| m.observe(name, value));
}

/// Hit/miss/stale/eviction counters for one named cache.
///
/// Each event bumps a local atomic (so a cache owner can assert on its own
/// traffic in isolation) *and* the global registry / active trace via
/// [`counter_add`] under `<name>.hit`, `<name>.miss`, `<name>.stale`,
/// `<name>.eviction` — so cache behaviour shows up in every metrics export
/// without extra wiring.
#[derive(Debug)]
pub struct CacheStats {
    name: String,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    /// Lookups that found an entry invalidated by an epoch bump.
    pub stale: u64,
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Hits over all lookups (0 when the cache saw no traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CacheStats {
    /// Create counters for a cache named `name` (the metrics key prefix).
    pub fn new(name: impl Into<String>) -> CacheStats {
        CacheStats {
            name: name.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The metrics key prefix.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn bump(&self, local: &AtomicU64, event: &str) {
        local.fetch_add(1, Ordering::Relaxed);
        counter_add(&format!("{}.{event}", self.name), 1);
    }

    /// Record a lookup served from the cache.
    pub fn hit(&self) {
        self.bump(&self.hits, "hit");
    }

    /// Record a lookup that found nothing.
    pub fn miss(&self) {
        self.bump(&self.misses, "miss");
    }

    /// Record a lookup that found an entry invalidated by an epoch bump.
    pub fn stale(&self) {
        self.bump(&self.stale, "stale");
    }

    /// Record an entry evicted to make room.
    pub fn eviction(&self) {
        self.bump(&self.evictions, "eviction");
    }

    /// Copy the local counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_exact() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.p50(), 3.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 5.0);
        // p95 over 5 samples interpolates between the 4th and 5th order
        // statistics: 4 + 0.8 * (5 - 4) = 4.8.
        assert!((h.p95() - 4.8).abs() < 1e-12, "{}", h.p95());
    }

    #[test]
    fn histogram_quantile_interpolates() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(10.0);
        assert_eq!(h.quantile(0.5), 5.0);
        assert_eq!(h.quantile(0.25), 2.5);
    }

    #[test]
    fn histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.summary().count, 0);
        let mut h = Histogram::new();
        h.record(7.5);
        assert_eq!(h.p50(), 7.5);
        assert_eq!(h.p95(), 7.5);
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn cache_stats_feed_local_and_global_counters() {
        let stats = CacheStats::new("test_cache_stats_unit");
        stats.hit();
        stats.hit();
        stats.miss();
        stats.stale();
        stats.eviction();
        let snap = stats.snapshot();
        assert_eq!(snap, CacheSnapshot { hits: 2, misses: 1, stale: 1, evictions: 1 });
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::new("idle").snapshot().hit_rate(), 0.0);
        // The global registry saw the same events (>= in case of other tests
        // reusing the prefix; the prefix is unique so equality holds).
        let g = global_snapshot();
        assert_eq!(g.counter("test_cache_stats_unit.hit"), 2);
        assert_eq!(g.counter("test_cache_stats_unit.miss"), 1);
        assert_eq!(g.counter("test_cache_stats_unit.stale"), 1);
        assert_eq!(g.counter("test_cache_stats_unit.eviction"), 1);
    }

    #[test]
    fn registry_roundtrip_and_merge() {
        let mut a = Registry::new();
        a.add("rounds", 3);
        a.add("rounds", 2);
        a.set_gauge("k", 10.0);
        a.observe("ms", 1.0);
        let mut b = Registry::new();
        b.add("rounds", 5);
        b.observe("ms", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("rounds"), 10);
        assert_eq!(a.gauge("k"), Some(10.0));
        assert_eq!(a.histogram("ms").unwrap().count(), 2);
        let j = a.to_json();
        assert_eq!(j.get("counters").unwrap().get("rounds").unwrap().as_i64(), Some(10));
        assert_eq!(
            j.get("histograms").unwrap().get("ms").unwrap().get("count").unwrap().as_i64(),
            Some(2)
        );
    }
}
