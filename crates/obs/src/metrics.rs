//! Counters, gauges and histograms in a [`Registry`], plus a process-global
//! registry aggregating across traces.
//!
//! The convenience functions ([`counter_add`], [`gauge_set`], [`observe`])
//! write to the global registry *and* to the registry of the active trace
//! (if any) — so one instrumentation call site feeds both the per-query
//! `EXPLAIN ANALYZE` report and the bench harness's aggregate breakdowns.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Buckets per doubling of the value: the resolution of the log scale.
/// With 16 sub-buckets per power of two, a bucket spans a factor of
/// `2^(1/16) ≈ 1.0443`, and reporting the geometric midpoint bounds the
/// relative quantile error at `2^(1/32) - 1 ≈ 2.2%`.
const BUCKETS_PER_DOUBLING: f64 = 16.0;

/// Bucket indices are clamped to this magnitude, covering values from
/// `2^-128` to `2^128` (≈ `1e-38 .. 1e38`) — far past any latency or byte
/// count this workspace records. The clamp makes the worst-case memory
/// strictly bounded: at most `2 * 2 * 2048 + 1` occupied buckets.
const MAX_BUCKET: i32 = 2048;

/// A histogram of `f64` samples over fixed log-scale buckets.
///
/// Count, sum, min and max are tracked exactly; quantiles come from the
/// bucket structure and carry a **bounded relative error of ≈ 2.2%**
/// (see `BUCKETS_PER_DOUBLING`): each positive sample lands in the bucket
/// `(γ^(i-1), γ^i]` with `γ = 2^(1/16)`, and a quantile reports the
/// geometric midpoint of its bucket, clamped into `[min, max]`. Memory is
/// O(occupied buckets) — bounded regardless of how many samples a
/// long-running process records, which is what lets the always-on telemetry
/// keep lifetime histograms without growing forever. (The previous
/// implementation stored every raw sample.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
    /// Counts of strictly positive samples, keyed by log-bucket index.
    pos: BTreeMap<i32, u64>,
    /// Counts of strictly negative samples, keyed by the index of `|v|`
    /// (larger index = larger magnitude = smaller value).
    neg: BTreeMap<i32, u64>,
    /// Exact-zero samples.
    zero: u64,
}

/// The summary row the reports print.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

/// Log-bucket index of a strictly positive value: the smallest `i` with
/// `v <= γ^i`.
fn bucket_of(v: f64) -> i32 {
    let i = (v.log2() * BUCKETS_PER_DOUBLING).ceil() as i64;
    i.clamp(-(MAX_BUCKET as i64), MAX_BUCKET as i64) as i32
}

/// Representative of bucket `i`: the geometric midpoint of `(γ^(i-1), γ^i]`.
fn representative(i: i32) -> f64 {
    ((f64::from(i) - 0.5) / BUCKETS_PER_DOUBLING).exp2()
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v > 0.0 {
            *self.pos.entry(bucket_of(v)).or_insert(0) += 1;
        } else if v < 0.0 {
            *self.neg.entry(bucket_of(-v)).or_insert(0) += 1;
        } else {
            self.zero += 1;
        }
    }

    pub fn count(&self) -> usize {
        self.count
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NEG_INFINITY
        } else {
            self.max
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Estimated quantile (`q` clamped to `[0, 1]`; 0 on an empty
    /// histogram). The estimate is the bucket representative of the
    /// `round(q * (n-1))`-th order statistic, clamped into `[min, max]`, so
    /// it is within ≈ 2.2% relative error of the exact order statistic, and
    /// `quantile(0.0)` / `quantile(1.0)` return the exact min / max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let target = (q * (self.count - 1) as f64).round() as u64;
        let mut cum: u64 = 0;
        // Ascending value order: negatives (largest magnitude first), zero,
        // then positives.
        for (&i, &n) in self.neg.iter().rev() {
            cum += n;
            if cum > target {
                return (-representative(i)).clamp(self.min, self.max);
            }
        }
        cum += self.zero;
        if cum > target {
            return 0.0f64.clamp(self.min, self.max);
        }
        for (&i, &n) in self.pos.iter() {
            cum += n;
            if cum > target {
                return representative(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    pub fn summary(&self) -> HistogramSummary {
        if self.count == 0 {
            return HistogramSummary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
        }
    }

    /// Fold another histogram into this one (bucket counts add; count, sum,
    /// min and max stay exact).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zero += other.zero;
        for (&i, &n) in &other.pos {
            *self.pos.entry(i).or_insert(0) += n;
        }
        for (&i, &n) in &other.neg {
            *self.neg.entry(i).or_insert(0) += n;
        }
    }

    fn to_json(&self) -> Json {
        let s = self.summary();
        Json::obj()
            .set("count", s.count)
            .set("min", s.min)
            .set("max", s.max)
            .set("mean", s.mean)
            .set("p50", s.p50)
            .set("p95", s.p95)
            .set("p99", s.p99)
    }
}

/// A named collection of counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, i64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add to a counter (creating it at 0).
    pub fn add(&mut self, name: &str, delta: i64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a gauge to its latest value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    pub fn counter(&self, name: &str) -> i64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, i64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (counters add, gauges take the
    /// other's value, histograms concatenate samples).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters = counters.set(k, *v);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges = gauges.set(k, *v);
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.histograms {
            histograms = histograms.set(k, h.to_json());
        }
        Json::obj().set("counters", counters).set("gauges", gauges).set("histograms", histograms)
    }
}

fn global_registry() -> &'static Mutex<Registry> {
    static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Registry::new()))
}

fn with_global(f: impl FnOnce(&mut Registry)) {
    let mut g = global_registry().lock().unwrap_or_else(|e| e.into_inner());
    f(&mut g);
}

/// Snapshot the process-global registry.
pub fn global_snapshot() -> Registry {
    global_registry().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Reset the process-global registry (bench harness runs between figures).
pub fn global_reset() {
    with_global(|g| *g = Registry::new());
}

/// Add to a counter in the global registry and the active trace (if any).
pub fn counter_add(name: &str, delta: i64) {
    with_global(|g| g.add(name, delta));
    crate::span::with_trace_metrics(|m| m.add(name, delta));
}

/// Set a gauge in the global registry and the active trace (if any).
pub fn gauge_set(name: &str, value: f64) {
    with_global(|g| g.set_gauge(name, value));
    crate::span::with_trace_metrics(|m| m.set_gauge(name, value));
}

/// Record a histogram sample in the global registry and the active trace.
pub fn observe(name: &str, value: f64) {
    with_global(|g| g.observe(name, value));
    crate::span::with_trace_metrics(|m| m.observe(name, value));
}

/// Hit/miss/stale/eviction counters for one named cache.
///
/// Each event bumps a local atomic (so a cache owner can assert on its own
/// traffic in isolation) *and* the global registry / active trace via
/// [`counter_add`] under `<name>.hit`, `<name>.miss`, `<name>.stale`,
/// `<name>.eviction` — so cache behaviour shows up in every metrics export
/// without extra wiring.
#[derive(Debug)]
pub struct CacheStats {
    name: String,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    /// Lookups that found an entry invalidated by an epoch bump.
    pub stale: u64,
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Hits over all lookups (0 when the cache saw no traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CacheStats {
    /// Create counters for a cache named `name` (the metrics key prefix).
    pub fn new(name: impl Into<String>) -> CacheStats {
        CacheStats {
            name: name.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The metrics key prefix.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn bump(&self, local: &AtomicU64, event: &str) {
        local.fetch_add(1, Ordering::Relaxed);
        counter_add(&format!("{}.{event}", self.name), 1);
    }

    /// Record a lookup served from the cache.
    pub fn hit(&self) {
        self.bump(&self.hits, "hit");
    }

    /// Record a lookup that found nothing.
    pub fn miss(&self) {
        self.bump(&self.misses, "miss");
    }

    /// Record a lookup that found an entry invalidated by an epoch bump.
    pub fn stale(&self) {
        self.bump(&self.stale, "stale");
    }

    /// Record an entry evicted to make room.
    pub fn eviction(&self) {
        self.bump(&self.evictions, "eviction");
    }

    /// Copy the local counters.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented relative error bound of bucketed quantiles.
    const QUANTILE_RTOL: f64 = 0.025;

    fn close(got: f64, want: f64) -> bool {
        (got - want).abs() <= QUANTILE_RTOL * want.abs().max(1e-12)
    }

    #[test]
    fn histogram_quantiles_within_documented_bound() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        // Count, min, max and mean stay exact; quantiles are bucketed.
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.quantile(0.0), 1.0, "q=0 is the exact min");
        assert_eq!(h.quantile(1.0), 5.0, "q=1 is the exact max");
        assert!(close(h.p50(), 3.0), "{}", h.p50());
        // p95 over 5 samples rounds to the 5th order statistic.
        assert!(close(h.p95(), 5.0), "{}", h.p95());
        assert!(close(h.p99(), 5.0), "{}", h.p99());
    }

    #[test]
    fn histogram_handles_zero_and_negative_samples() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(10.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 10.0);
        let mut h = Histogram::new();
        for v in [-8.0, -2.0, 0.0, 2.0, 8.0] {
            h.record(v);
        }
        assert_eq!(h.min(), -8.0);
        assert_eq!(h.max(), 8.0);
        assert!(close(h.quantile(0.25), -2.0), "{}", h.quantile(0.25));
        assert_eq!(h.p50(), 0.0);
        assert!(close(h.quantile(0.75), 2.0), "{}", h.quantile(0.75));
    }

    #[test]
    fn histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.summary().count, 0);
        let mut h = Histogram::new();
        h.record(7.5);
        assert!(close(h.p50(), 7.5), "{}", h.p50());
        assert!(close(h.p95(), 7.5), "{}", h.p95());
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_quantiles_track_exact_quantiles_within_bound() {
        // Property check for the documented 2.2% bound: a skewed synthetic
        // latency distribution, bucketed quantiles vs. exact order
        // statistics.
        use crate::rng::{Rng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0x7E1E);
        let mut h = Histogram::new();
        let mut exact: Vec<f64> = Vec::new();
        for _ in 0..10_000 {
            // Log-uniform over ~4 decades, the shape of real latencies.
            let v = 10f64.powf(rng.gen_f64() * 4.0 - 1.0);
            h.record(v);
            exact.push(v);
        }
        exact.sort_by(|a, b| a.total_cmp(b));
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
            let want = exact[(q * (exact.len() - 1) as f64).round() as usize];
            let got = h.quantile(q);
            assert!(
                (got - want).abs() <= QUANTILE_RTOL * want,
                "q={q}: got {got}, exact {want} (err {:.3}%)",
                100.0 * (got - want).abs() / want
            );
        }
    }

    #[test]
    fn histogram_memory_stays_bounded() {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i as f64 * 0.1);
        }
        assert_eq!(h.count(), 100_000);
        // 0..10_000 spans ~17 doublings → at most ~17 * 16 + 1 buckets.
        assert!(h.pos.len() + h.neg.len() <= 2 * MAX_BUCKET as usize + 1);
        assert!(h.pos.len() < 400, "occupied buckets: {}", h.pos.len());
    }

    #[test]
    fn cache_stats_feed_local_and_global_counters() {
        let stats = CacheStats::new("test_cache_stats_unit");
        stats.hit();
        stats.hit();
        stats.miss();
        stats.stale();
        stats.eviction();
        let snap = stats.snapshot();
        assert_eq!(snap, CacheSnapshot { hits: 2, misses: 1, stale: 1, evictions: 1 });
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::new("idle").snapshot().hit_rate(), 0.0);
        // The global registry saw the same events (>= in case of other tests
        // reusing the prefix; the prefix is unique so equality holds).
        let g = global_snapshot();
        assert_eq!(g.counter("test_cache_stats_unit.hit"), 2);
        assert_eq!(g.counter("test_cache_stats_unit.miss"), 1);
        assert_eq!(g.counter("test_cache_stats_unit.stale"), 1);
        assert_eq!(g.counter("test_cache_stats_unit.eviction"), 1);
    }

    #[test]
    fn registry_roundtrip_and_merge() {
        let mut a = Registry::new();
        a.add("rounds", 3);
        a.add("rounds", 2);
        a.set_gauge("k", 10.0);
        a.observe("ms", 1.0);
        let mut b = Registry::new();
        b.add("rounds", 5);
        b.observe("ms", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("rounds"), 10);
        assert_eq!(a.gauge("k"), Some(10.0));
        assert_eq!(a.histogram("ms").unwrap().count(), 2);
        let j = a.to_json();
        assert_eq!(j.get("counters").unwrap().get("rounds").unwrap().as_i64(), Some(10));
        assert_eq!(
            j.get("histograms").unwrap().get("ms").unwrap().get("count").unwrap().as_i64(),
            Some(2)
        );
    }
}
