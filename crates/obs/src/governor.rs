//! The query governor substrate: per-query budgets and a cooperative
//! cancellation context.
//!
//! A [`Budget`] declares limits for one query — wall-clock deadline, rows
//! scanned from storage, bytes of intermediate materialization. A
//! [`QueryCtx`] carries those limits (plus a cancellation flag) through the
//! execution stack as shared atomic counters. Operators *cooperate*: they
//! call [`QueryCtx::charge_rows`] / [`QueryCtx::charge_mem`] /
//! [`QueryCtx::checkpoint`] at loop boundaries, and an exceeded budget
//! surfaces as a typed [`BudgetExceeded`] carrying partial-progress counters
//! so callers can report how far the query got before it was stopped.
//!
//! This lives in `pqp-obs` because — like spans and metrics — every layer of
//! the stack needs it and it must stay dependency-free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Declarative limits for one query. `None` fields are unlimited; the
/// default budget is fully unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock limit, measured from [`QueryCtx::new`].
    pub deadline: Option<Duration>,
    /// Cap on rows read out of base-table storage (scans and index probes).
    pub max_rows_scanned: Option<u64>,
    /// Cap on bytes of intermediate rows materialized by operators
    /// (estimated, see [`approx_row_bytes`]).
    pub max_memory: Option<u64>,
}

impl Budget {
    /// A budget with no limits at all.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// True when no field constrains anything.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_rows_scanned.is_none() && self.max_memory.is_none()
    }

    /// Set the wall-clock deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Budget {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Set the scanned-rows cap.
    pub fn max_rows(mut self, rows: u64) -> Budget {
        self.max_rows_scanned = Some(rows);
        self
    }

    /// Set the intermediate-memory cap in bytes.
    pub fn max_memory_bytes(mut self, bytes: u64) -> Budget {
        self.max_memory = Some(bytes);
        self
    }

    /// Read a budget from the environment:
    ///
    /// | variable | meaning |
    /// |---|---|
    /// | `PQP_DEADLINE_MS` | wall-clock deadline in milliseconds |
    /// | `PQP_MAX_ROWS_SCANNED` | cap on base-table rows read |
    /// | `PQP_MAX_MEMORY_BYTES` | cap on materialized intermediate bytes |
    ///
    /// Unset or unparsable variables leave the field unlimited.
    pub fn from_env() -> Budget {
        fn var(name: &str) -> Option<u64> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        Budget {
            deadline: var("PQP_DEADLINE_MS").map(Duration::from_millis),
            max_rows_scanned: var("PQP_MAX_ROWS_SCANNED"),
            max_memory: var("PQP_MAX_MEMORY_BYTES"),
        }
    }
}

/// Which limit a query ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The scanned-rows cap was reached.
    RowsScanned,
    /// The intermediate-memory cap was reached.
    Memory,
    /// [`QueryCtx::cancel`] was called.
    Cancelled,
    /// A fault-injection site reported the budget as exhausted
    /// (chaos testing only; never produced by real limits).
    Injected,
}

impl std::fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BudgetReason::Deadline => "deadline",
            BudgetReason::RowsScanned => "rows-scanned limit",
            BudgetReason::Memory => "memory limit",
            BudgetReason::Cancelled => "cancelled",
            BudgetReason::Injected => "injected",
        };
        f.write_str(s)
    }
}

/// A typed budget violation, carrying partial-progress counters captured at
/// the moment the query was stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Which limit tripped.
    pub reason: BudgetReason,
    /// Base-table rows read before the stop.
    pub rows_scanned: u64,
    /// Estimated intermediate bytes materialized before the stop.
    pub mem_bytes: u64,
    /// Milliseconds elapsed since the query started.
    pub elapsed_ms: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query budget exceeded ({}) after {} rows scanned, {} bytes materialized, {} ms",
            self.reason, self.rows_scanned, self.mem_bytes, self.elapsed_ms
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A snapshot of a query's resource consumption so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Base-table rows read.
    pub rows_scanned: u64,
    /// Estimated intermediate bytes materialized.
    pub mem_bytes: u64,
    /// Time since the context was created.
    pub elapsed: Duration,
}

/// The per-query governor context threaded through execution.
///
/// Created once per query from a [`Budget`]; operators hold `&QueryCtx` and
/// call the `charge_*` / [`checkpoint`](QueryCtx::checkpoint) methods at
/// loop boundaries. All counters are atomic, so a single context is shared
/// freely across parallel workers.
#[derive(Debug)]
pub struct QueryCtx {
    start: Instant,
    deadline: Option<Instant>,
    max_rows: Option<u64>,
    max_mem: Option<u64>,
    rows: AtomicU64,
    mem: AtomicU64,
    /// Shared with contexts derived via [`QueryCtx::slice`], so cancelling
    /// the parent cancels every slice too.
    cancelled: Arc<AtomicBool>,
}

/// How many rows a tight scan loop may process between `charge_rows` flushes.
/// Callers accumulate locally and flush in batches of this size to keep
/// atomic traffic off the per-row path.
pub const CHARGE_BATCH_ROWS: u64 = 256;

/// Stride (power of two) for [`QueryCtx::checkpoint`] calls in non-scan
/// loops: check when `i & (CHECKPOINT_STRIDE - 1) == 0`.
pub const CHECKPOINT_STRIDE: usize = 1024;

impl QueryCtx {
    /// A context enforcing `budget`, with the clock starting now.
    pub fn new(budget: Budget) -> QueryCtx {
        let start = Instant::now();
        QueryCtx {
            start,
            deadline: budget.deadline.map(|d| start + d),
            max_rows: budget.max_rows_scanned,
            max_mem: budget.max_memory,
            rows: AtomicU64::new(0),
            mem: AtomicU64::new(0),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A context with no limits (checkpoints still observe [`cancel`](QueryCtx::cancel)).
    pub fn unlimited() -> QueryCtx {
        QueryCtx::new(Budget::unlimited())
    }

    /// Request cooperative cancellation: the next checkpoint in any thread
    /// sharing this context (or a slice of it) returns `BudgetExceeded`
    /// with [`BudgetReason::Cancelled`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](QueryCtx::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// True when no limit is set and the context cannot be tripped except
    /// by cancellation.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_rows.is_none() && self.max_mem.is_none()
    }

    /// Time remaining until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The scanned-rows cap this context enforces (`None` = unlimited).
    /// Telemetry records it next to the consumed counters so a query log
    /// entry shows consumption *against its limits*.
    pub fn max_rows_limit(&self) -> Option<u64> {
        self.max_rows
    }

    /// The intermediate-memory cap this context enforces (`None` =
    /// unlimited).
    pub fn max_mem_limit(&self) -> Option<u64> {
        self.max_mem
    }

    /// The total wall-clock budget from context creation to the deadline
    /// (`None` when no deadline is set).
    pub fn deadline_budget(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(self.start))
    }

    /// Check the cancellation flag and the deadline. Call at operator
    /// boundaries and every [`CHECKPOINT_STRIDE`] iterations of non-scan
    /// loops.
    pub fn checkpoint(&self) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            return Err(self.exceeded(BudgetReason::Cancelled));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.exceeded(BudgetReason::Deadline));
            }
        }
        Ok(())
    }

    /// Charge `n` base-table rows against the scan budget and run a full
    /// checkpoint. Scan loops batch charges (see [`CHARGE_BATCH_ROWS`]) so
    /// this stays off the per-row path.
    pub fn charge_rows(&self, n: u64) -> Result<(), BudgetExceeded> {
        let total = self.rows.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.max_rows {
            if total > max {
                return Err(self.exceeded(BudgetReason::RowsScanned));
            }
        }
        self.checkpoint()
    }

    /// Charge `bytes` of materialized intermediate state against the memory
    /// budget and run a full checkpoint.
    pub fn charge_mem(&self, bytes: u64) -> Result<(), BudgetExceeded> {
        let total = self.mem.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(max) = self.max_mem {
            if total > max {
                return Err(self.exceeded(BudgetReason::Memory));
            }
        }
        self.checkpoint()
    }

    /// Current consumption counters.
    pub fn progress(&self) -> Progress {
        Progress {
            rows_scanned: self.rows.load(Ordering::Relaxed),
            mem_bytes: self.mem.load(Ordering::Relaxed),
            elapsed: self.start.elapsed(),
        }
    }

    /// Build the [`BudgetExceeded`] for `reason` with current counters.
    /// Public so layers that detect exhaustion out-of-band (fault injection,
    /// degradation drivers) can produce the same typed error.
    pub fn exceeded(&self, reason: BudgetReason) -> BudgetExceeded {
        let p = self.progress();
        BudgetExceeded {
            reason,
            rows_scanned: p.rows_scanned,
            mem_bytes: p.mem_bytes,
            elapsed_ms: p.elapsed.as_millis() as u64,
        }
    }

    /// Derive a context covering a *slice* of the remaining time budget:
    /// `numer/denom` of the time left until this context's deadline. Row and
    /// memory limits are not inherited (the slice guards a phase that does
    /// its own kind of work), but the cancellation flag is shared — and the
    /// slice's deadline never extends past the parent's.
    ///
    /// The service uses this to give the personalization phase a fraction of
    /// the query deadline, so a selection blow-up trips early enough to
    /// degrade and still answer within the overall deadline.
    pub fn slice(&self, numer: u32, denom: u32) -> QueryCtx {
        let now = Instant::now();
        let deadline = self.deadline.map(|d| {
            let remaining = d.saturating_duration_since(now);
            now + remaining.mul_f64(f64::from(numer) / f64::from(denom.max(1)))
        });
        QueryCtx {
            start: now,
            deadline,
            max_rows: None,
            max_mem: None,
            rows: AtomicU64::new(0),
            mem: AtomicU64::new(0),
            cancelled: Arc::clone(&self.cancelled),
        }
    }
}

impl Default for QueryCtx {
    fn default() -> QueryCtx {
        QueryCtx::unlimited()
    }
}

/// A cheap, uniform estimate of a materialized row's footprint: per-row
/// overhead plus a fixed cost per value. Deliberately approximate — the
/// memory budget bounds blow-ups (cross joins, exploding hash joins), it is
/// not an allocator audit.
pub fn approx_row_bytes(values: usize) -> u64 {
    24 + 32 * values as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let ctx = QueryCtx::unlimited();
        assert!(ctx.is_unlimited());
        for _ in 0..10 {
            ctx.checkpoint().unwrap();
            ctx.charge_rows(1_000_000).unwrap();
            ctx.charge_mem(1 << 30).unwrap();
        }
        let p = ctx.progress();
        assert_eq!(p.rows_scanned, 10_000_000);
    }

    #[test]
    fn zero_deadline_trips_immediately_with_counters() {
        let ctx = QueryCtx::new(Budget::unlimited().deadline_ms(0));
        ctx.charge_rows(123).unwrap_err();
        let err = ctx.checkpoint().unwrap_err();
        assert_eq!(err.reason, BudgetReason::Deadline);
        assert_eq!(err.rows_scanned, 123);
        let msg = err.to_string();
        assert!(msg.contains("deadline") && msg.contains("123"), "{msg}");
    }

    #[test]
    fn row_cap_trips_at_threshold() {
        let ctx = QueryCtx::new(Budget::unlimited().max_rows(500));
        ctx.charge_rows(256).unwrap();
        ctx.charge_rows(244).unwrap(); // exactly 500: still within budget
        let err = ctx.charge_rows(1).unwrap_err();
        assert_eq!(err.reason, BudgetReason::RowsScanned);
        assert_eq!(err.rows_scanned, 501);
    }

    #[test]
    fn memory_cap_trips() {
        let ctx = QueryCtx::new(Budget::unlimited().max_memory_bytes(1024));
        ctx.charge_mem(1024).unwrap();
        let err = ctx.charge_mem(8).unwrap_err();
        assert_eq!(err.reason, BudgetReason::Memory);
        assert!(err.mem_bytes >= 1032);
    }

    #[test]
    fn cancellation_reaches_slices() {
        let parent = QueryCtx::new(Budget::unlimited().deadline_ms(60_000));
        let slice = parent.slice(1, 4);
        slice.checkpoint().unwrap();
        parent.cancel();
        assert_eq!(slice.checkpoint().unwrap_err().reason, BudgetReason::Cancelled);
        assert_eq!(parent.checkpoint().unwrap_err().reason, BudgetReason::Cancelled);
    }

    #[test]
    fn slice_never_outlives_parent_deadline() {
        let parent = QueryCtx::new(Budget::unlimited().deadline_ms(40));
        let slice = parent.slice(1, 4);
        let (p, s) = (parent.remaining_time().unwrap(), slice.remaining_time().unwrap());
        assert!(s <= p, "slice {s:?} > parent {p:?}");
        // An expired parent yields an already-expired slice.
        let expired = QueryCtx::new(Budget::unlimited().deadline_ms(0));
        assert_eq!(expired.slice(1, 2).checkpoint().unwrap_err().reason, BudgetReason::Deadline);
    }

    #[test]
    fn slice_of_unlimited_is_unlimited() {
        let parent = QueryCtx::unlimited();
        let slice = parent.slice(1, 4);
        assert!(slice.is_unlimited());
        slice.checkpoint().unwrap();
    }

    #[test]
    fn budget_builder_and_env() {
        let b = Budget::unlimited().deadline_ms(250).max_rows(10).max_memory_bytes(99);
        assert_eq!(b.deadline, Some(Duration::from_millis(250)));
        assert_eq!(b.max_rows_scanned, Some(10));
        assert_eq!(b.max_memory, Some(99));
        assert!(!b.is_unlimited());
        assert!(Budget::default().is_unlimited());
    }
}
