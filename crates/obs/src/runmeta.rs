//! A shared run-metadata block stamped into every `results/*.json` writer.
//!
//! Bench trajectory files are only comparable across runs when each file
//! records the environment it was measured in — the ROADMAP's standing
//! caveat is that `micro_parallel.json` numbers from a 1-core host measure
//! partitioning overhead, not speedup. One helper, one schema, every
//! writer: [`run_meta`] returns the block, writers `set("meta", ...)` it.

use crate::json::Json;

/// Version of the `results/*.json` envelope. Bump when the shape of the
/// shared metadata (or the conventions around it) changes incompatibly.
pub const RESULTS_SCHEMA_VERSION: i64 = 2;

/// The shared metadata block for a named bench run: schema version, bench
/// name, host parallelism and platform.
pub fn run_meta(bench: &str) -> Json {
    let host_cores = std::thread::available_parallelism().map(|n| n.get() as i64).unwrap_or(1);
    Json::obj()
        .set("schema_version", RESULTS_SCHEMA_VERSION)
        .set("bench", bench)
        .set("host_cores", host_cores)
        .set("os", std::env::consts::OS)
        .set("arch", std::env::consts::ARCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_block_has_the_shared_schema() {
        let m = run_meta("macro_load");
        assert_eq!(m.get("schema_version").unwrap().as_i64(), Some(RESULTS_SCHEMA_VERSION));
        assert_eq!(m.get("bench").unwrap().as_str(), Some("macro_load"));
        assert!(m.get("host_cores").unwrap().as_i64().unwrap() >= 1);
        assert!(m.get("os").unwrap().as_str().is_some());
        assert!(m.get("arch").unwrap().as_str().is_some());
    }
}
