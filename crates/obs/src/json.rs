//! A minimal JSON value type: parse, build, print. No serde — the workspace
//! builds offline with path dependencies only, so serialization is done by
//! hand against this type.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map), which
//! keeps rendered traces stable and diffable.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (counters, row counts).
    Int(i64),
    /// Everything else numeric.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object (panics on non-objects — a builder misuse).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                    // `{}` on f64 prints integral values without a decimal
                    // point; that is still valid JSON, keep it.
                } else {
                    out.push_str("null"); // NaN/inf have no JSON form
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole string must be one value).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: &str) -> JsonError {
        JsonError { message: m.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let j = Json::obj()
            .set("name", "trace")
            .set("count", 42i64)
            .set("ms", 1.25)
            .set("ok", true)
            .set("none", Json::Null)
            .set("items", vec![1i64, 2, 3]);
        let text = j.render();
        assert_eq!(Json::parse(&text).unwrap(), j);
        let pretty = j.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), j);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let j = Json::Str("a\"b\\c\nd\tκόσμε \u{1}".to_string());
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Num(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"a": 1, "b": [true, "s"], "c": 0.5}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(j.get("c").unwrap().as_f64(), Some(0.5));
        let arr = j.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1].as_str(), Some("s"));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
