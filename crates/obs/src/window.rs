//! Windowed metrics for long-running processes: a [`WindowedHistogram`]
//! keeps a bounded **lifetime** histogram plus a ring of short **slot**
//! histograms covering a sliding recent window (default 12 × 5 s = last
//! 60 s), so an always-on server can answer both "how has this process
//! behaved since it started" and "what is happening right now" from O(1)
//! memory.
//!
//! A process-global metrics [`Registry`](crate::metrics::Registry) snapshot
//! answers neither: its histograms aggregate forever (a latency regression
//! drowns in a week of healthy samples) and resetting it loses history.
//! Windowing keeps both views live without unbounded state.

use crate::metrics::Histogram;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of ring slots in a default window.
const DEFAULT_SLOTS: usize = 12;

/// Duration of one ring slot in a default window.
const DEFAULT_SLOT_SECS: u64 = 5;

/// One ring slot: the samples recorded during one slot-duration interval.
#[derive(Debug, Clone, Default)]
struct Slot {
    /// Which slot interval (elapsed / slot_dur) this data belongs to; a
    /// slot whose index is stale gets reset before reuse.
    index: u64,
    hist: Histogram,
}

/// A histogram recorded twice: into a lifetime aggregate and into a ring of
/// time slots whose union is the sliding recent window.
///
/// Thread-safe (`record` takes `&self`); both views are bounded — the
/// lifetime side by the log-bucket structure of [`Histogram`], the window
/// side additionally by the fixed slot count.
#[derive(Debug)]
pub struct WindowedHistogram {
    start: Instant,
    slot_dur: Duration,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    lifetime: Histogram,
    slots: Vec<Slot>,
}

/// A point-in-time copy of both views of a [`WindowedHistogram`].
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// Every sample since the histogram was created.
    pub lifetime: Histogram,
    /// Samples from the sliding recent window only.
    pub window: Histogram,
    /// How much time the `window` histogram covers at most.
    pub window_dur: Duration,
}

impl Default for WindowedHistogram {
    fn default() -> WindowedHistogram {
        WindowedHistogram::new(DEFAULT_SLOTS, Duration::from_secs(DEFAULT_SLOT_SECS))
    }
}

impl WindowedHistogram {
    /// A histogram whose sliding window covers `slots * slot_dur`.
    pub fn new(slots: usize, slot_dur: Duration) -> WindowedHistogram {
        let slots = slots.max(1);
        let slot_dur = slot_dur.max(Duration::from_millis(1));
        WindowedHistogram {
            start: Instant::now(),
            slot_dur,
            inner: Mutex::new(Inner {
                lifetime: Histogram::new(),
                slots: vec![Slot::default(); slots],
            }),
        }
    }

    /// The sliding window's maximum coverage.
    pub fn window_dur(&self) -> Duration {
        let slots = self.inner.lock().unwrap_or_else(|e| e.into_inner()).slots.len() as u32;
        self.slot_dur * slots
    }

    fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Record a sample now.
    pub fn record(&self, v: f64) {
        self.record_at(v, self.elapsed());
    }

    /// Record a sample as of `elapsed` since creation (exposed so tests and
    /// replay harnesses can drive the clock; [`record`](Self::record) is the
    /// live entry point).
    pub fn record_at(&self, v: f64, elapsed: Duration) {
        let index = (elapsed.as_nanos() / self.slot_dur.as_nanos().max(1)) as u64;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.lifetime.record(v);
        let pos = (index % inner.slots.len() as u64) as usize;
        let slot = &mut inner.slots[pos];
        if slot.index != index {
            // The ring wrapped: this slot's previous interval has aged out.
            slot.index = index;
            slot.hist = Histogram::new();
        }
        slot.hist.record(v);
    }

    /// Snapshot both views now.
    pub fn snapshot(&self) -> WindowSnapshot {
        self.snapshot_at(self.elapsed())
    }

    /// Snapshot as of `elapsed` since creation: the window merges only the
    /// slots whose interval is inside `(now - window_dur, now]`.
    pub fn snapshot_at(&self, elapsed: Duration) -> WindowSnapshot {
        let current = (elapsed.as_nanos() / self.slot_dur.as_nanos().max(1)) as u64;
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let n = inner.slots.len() as u64;
        let oldest_live = (current + 1).saturating_sub(n);
        let mut window = Histogram::new();
        for slot in &inner.slots {
            if slot.index >= oldest_live && slot.index <= current && slot.hist.count() > 0 {
                window.merge(&slot.hist);
            }
        }
        WindowSnapshot {
            lifetime: inner.lifetime.clone(),
            window,
            window_dur: self.slot_dur * inner.slots.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn lifetime_aggregates_and_window_slides() {
        let w = WindowedHistogram::new(6, secs(10)); // 60 s window
        w.record_at(1.0, secs(5)); // slot 0
        w.record_at(2.0, secs(45)); // slot 4
        w.record_at(3.0, secs(95)); // slot 9

        // At t=95 s, slot 0 (t<10 s) has aged out of the 60 s window.
        let snap = w.snapshot_at(secs(95));
        assert_eq!(snap.lifetime.count(), 3);
        assert_eq!(snap.window.count(), 2);
        assert_eq!(snap.window.min(), 2.0);
        assert_eq!(snap.window_dur, secs(60));

        // Much later, the window is empty but lifetime persists.
        let snap = w.snapshot_at(secs(1_000));
        assert_eq!(snap.lifetime.count(), 3);
        assert_eq!(snap.window.count(), 0);
    }

    #[test]
    fn ring_reuse_resets_stale_slots() {
        let w = WindowedHistogram::new(2, secs(1));
        w.record_at(1.0, secs(0)); // slot index 0 → position 0
        w.record_at(2.0, secs(2)); // slot index 2 → position 0 again: reset
        let snap = w.snapshot_at(secs(2));
        assert_eq!(snap.lifetime.count(), 2);
        assert_eq!(snap.window.count(), 1, "the overwritten slot is gone from the window");
        assert_eq!(snap.window.max(), 2.0);
    }

    #[test]
    fn live_entry_points_work() {
        let w = WindowedHistogram::default();
        w.record(4.2);
        let snap = w.snapshot();
        assert_eq!(snap.lifetime.count(), 1);
        assert_eq!(snap.window.count(), 1);
        assert_eq!(w.window_dur(), secs(60));
    }
}
