//! Renders a [`PipelineTrace`] as an `EXPLAIN ANALYZE`-style text report:
//! the span tree with per-stage wall-clock times and recorded fields,
//! followed by the counters and histograms collected during the trace.

use crate::metrics::Registry;
use crate::span::{Field, PipelineTrace, SpanNode};
use std::fmt::Write;

const NAME_COL: usize = 46;

/// Render the full report (span tree + metrics).
pub fn render(trace: &PipelineTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN ANALYZE  {}  (total {:.3} ms)",
        trace.root.name,
        trace.root.elapsed_ms()
    );
    for child in &trace.root.children {
        render_span(&mut out, child, 0);
    }
    render_metrics(&mut out, &trace.metrics);
    out
}

fn render_span(out: &mut String, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth + 1);
    let label = format!("{indent}{}", node.name);
    let dots = NAME_COL.saturating_sub(label.len()).max(2);
    let _ = write!(out, "{label} {} {:>9.3} ms", ".".repeat(dots), node.elapsed_ms());
    if !node.fields.is_empty() {
        let rendered: Vec<String> =
            node.fields.iter().map(|(k, v)| format!("{k}={}", field_text(v))).collect();
        let _ = write!(out, "  [{}]", rendered.join(" "));
    }
    out.push('\n');
    for child in &node.children {
        render_span(out, child, depth + 1);
    }
}

fn field_text(f: &Field) -> String {
    match f {
        Field::Int(v) => v.to_string(),
        Field::Float(v) => format!("{v:.4}"),
        Field::Str(v) => v.clone(),
    }
}

fn render_metrics(out: &mut String, metrics: &Registry) {
    let counters: Vec<_> = metrics.counters().collect();
    if !counters.is_empty() {
        out.push_str("Counters:\n");
        for (name, value) in counters {
            let dots = NAME_COL.saturating_sub(name.len() + 2).max(2);
            let _ = writeln!(out, "  {name} {} {value:>9}", ".".repeat(dots));
        }
    }
    let histograms: Vec<_> = metrics.histograms().collect();
    if !histograms.is_empty() {
        out.push_str("Histograms:\n");
        for (name, h) in histograms {
            let s = h.summary();
            let _ = writeln!(
                out,
                "  {name}: n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;
    use crate::span::{Field, PipelineTrace, SpanNode};

    fn leaf(name: &str, elapsed_us: f64, fields: Vec<(String, Field)>) -> SpanNode {
        SpanNode { name: name.to_string(), start_us: 0.0, elapsed_us, fields, children: vec![] }
    }

    #[test]
    fn report_lists_stages_in_order_with_fields() {
        let mut metrics = Registry::new();
        metrics.add("selection.rounds", 6);
        metrics.observe("exec.scan.ms", 0.5);
        let trace = PipelineTrace {
            root: SpanNode {
                name: "pipeline".into(),
                start_us: 0.0,
                elapsed_us: 3_500.0,
                fields: vec![],
                children: vec![
                    leaf("sql.parse", 120.0, vec![]),
                    SpanNode {
                        name: "selection".into(),
                        start_us: 120.0,
                        elapsed_us: 2_000.0,
                        fields: vec![("k".into(), Field::Int(4))],
                        children: vec![leaf(
                            "query_graph",
                            300.0,
                            vec![("nodes".into(), Field::Int(3))],
                        )],
                    },
                ],
            },
            metrics,
        };
        let text = trace.render();
        assert!(text.starts_with("EXPLAIN ANALYZE  pipeline  (total 3.500 ms)"));
        let parse_at = text.find("sql.parse").unwrap();
        let sel_at = text.find("selection").unwrap();
        let qg_at = text.find("query_graph").unwrap();
        assert!(parse_at < sel_at && sel_at < qg_at);
        assert!(text.contains("[k=4]"));
        assert!(text.contains("[nodes=3]"));
        assert!(text.contains("selection.rounds"));
        assert!(text.contains("exec.scan.ms: n=1"));
    }
}
