//! # pqp-obs
//!
//! The observability substrate of the `pqp` workspace, built entirely on the
//! standard library (the build must succeed offline, so no serde, no
//! tracing, no rand):
//!
//! - [`span`](mod@span) — a lightweight hierarchical span API: `span("selection")`
//!   returns an RAII guard, guards nest into a tree, and
//!   [`span::trace_end`] yields a [`span::PipelineTrace`] with per-stage
//!   timings and recorded fields. When no trace is active every call is a
//!   cheap no-op, so instrumentation can stay in hot paths permanently.
//! - [`metrics`] — counters, gauges and bounded log-bucket histograms
//!   (p50/p95/p99/max within a documented ≈2.2% relative error, O(1)
//!   memory) in a [`metrics::Registry`], plus a process-global registry
//!   that aggregates across traces (the bench harness reads it).
//! - [`window`](mod@window) — [`WindowedHistogram`]: a lifetime histogram plus a
//!   sliding recent window (default last 60 s) for always-on processes.
//! - [`runmeta`] — the shared run-metadata block ([`run_meta`]) stamped
//!   into every `results/*.json` writer so bench files are comparable
//!   across hosts.
//! - [`json`] — a small JSON value type with a parser and printers, the
//!   serialization layer for traces, metrics and stored profiles.
//! - [`report`] — renders a span tree as an `EXPLAIN ANALYZE`-style text
//!   report.
//! - [`rng`] — a deterministic xoshiro256++ PRNG behind a minimal [`rng::Rng`]
//!   trait; the workspace's replacement for the `rand` crate in data
//!   generation and randomized tests.
//! - [`governor`] — per-query [`Budget`]s and the cooperative [`QueryCtx`]
//!   threaded through execution: deadline / rows-scanned / memory limits
//!   checked at operator loop boundaries, typed [`BudgetExceeded`] with
//!   partial-progress counters.
//! - [`failpoint`] — a zero-dep fault-injection registry: named sites fire
//!   errors, panics or delays, configured programmatically or via
//!   `PQP_FAILPOINTS`, deterministic through the in-tree xoshiro RNG.

pub mod failpoint;
pub mod governor;
pub mod json;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod runmeta;
pub mod span;
pub mod window;

pub use governor::{approx_row_bytes, Budget, BudgetExceeded, BudgetReason, Progress, QueryCtx};
pub use json::Json;
pub use metrics::{
    counter_add, gauge_set, observe, CacheSnapshot, CacheStats, Histogram, HistogramSummary,
    Registry,
};
pub use runmeta::{run_meta, RESULTS_SCHEMA_VERSION};
pub use span::{
    record, span, trace_active, trace_begin, trace_end, Field, PipelineTrace, SpanGuard, SpanNode,
};
pub use window::{WindowSnapshot, WindowedHistogram};
