//! A table = schema + heap + indexes, with insert-time constraint checking.

use crate::error::{Result, StorageError};
use crate::heap::Heap;
use crate::index::HashIndex;
use crate::page::RowId;
use crate::row::Row;
use crate::schema::TableSchema;
use crate::stats::TableStats;
use crate::value::Value;
use std::sync::Arc;

/// A stored table.
pub struct Table {
    schema: TableSchema,
    heap: Heap,
    /// Indexes; index 0, when present, is the primary-key index.
    indexes: Vec<HashIndex>,
    /// Statistics snapshot from the last `ANALYZE`, if any. Deliberately
    /// left stale across inserts/deletes until the next `ANALYZE`.
    stats: Option<Arc<TableStats>>,
}

impl Table {
    /// Create an empty table. A unique index is built for the primary key and
    /// for each declared unique constraint.
    pub fn new(schema: TableSchema) -> Table {
        let mut indexes = Vec::new();
        if !schema.primary_key.is_empty() {
            indexes.push(HashIndex::new(schema.primary_key.clone(), true));
        }
        for u in &schema.unique {
            indexes.push(HashIndex::new(u.clone(), true));
        }
        Table { schema, heap: Heap::new(), indexes, stats: None }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Add a non-unique secondary index on the named column. Existing rows
    /// are back-filled. Returns the index position.
    pub fn create_index(&mut self, column: &str) -> Result<usize> {
        let col = self.schema.column_index(column).ok_or_else(|| StorageError::UnknownColumn {
            table: self.schema.name.clone(),
            column: column.to_string(),
        })?;
        let mut idx = HashIndex::new(vec![col], false);
        for (id, row) in self.heap.iter() {
            idx.insert(&row?, id);
        }
        self.indexes.push(idx);
        Ok(self.indexes.len() - 1)
    }

    /// Find a single-column index on the named column, if any.
    pub fn index_on(&self, column: &str) -> Option<&HashIndex> {
        let col = self.schema.column_index(column)?;
        self.indexes.iter().find(|i| i.columns() == [col])
    }

    /// Validate and insert a row. Values are coerced (Int → Float) to the
    /// column types; arity, type, NOT NULL and key constraints are enforced.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        let mut coerced = Vec::with_capacity(row.len());
        for (v, col) in row.into_iter().zip(&self.schema.columns) {
            if v.is_null() {
                if !col.nullable {
                    return Err(StorageError::NullViolation {
                        table: self.schema.name.clone(),
                        column: col.name.clone(),
                    });
                }
                coerced.push(v);
                continue;
            }
            if !v.conforms_to(col.ty) {
                return Err(StorageError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    got: format!("{v:?}"),
                });
            }
            coerced.push(v.coerce_to(col.ty));
        }
        for idx in &self.indexes {
            if idx.is_unique() && idx.contains_key(&idx.key_of(&coerced)) {
                return Err(StorageError::DuplicateKey { table: self.schema.name.clone() });
            }
        }
        let id = self.heap.insert(&coerced)?;
        for idx in &mut self.indexes {
            idx.insert(&coerced, id);
        }
        Ok(id)
    }

    /// Fetch a row by id.
    pub fn get(&self, id: RowId) -> Option<Result<Row>> {
        self.heap.get(id)
    }

    /// Delete a row by id, maintaining indexes.
    pub fn delete(&mut self, id: RowId) -> Result<bool> {
        let Some(row) = self.heap.get(id) else {
            return Ok(false);
        };
        let row = row?;
        if !self.heap.delete(id) {
            return Ok(false);
        }
        for idx in &mut self.indexes {
            idx.remove(&row, id);
        }
        Ok(true)
    }

    /// Iterate over live rows.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, Result<Row>)> + '_ {
        self.heap.iter()
    }

    /// Number of heap pages (the partition unit for parallel scans).
    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }

    /// Iterate over the live rows of partition `part` of `parts` — a
    /// contiguous page range; concatenating all partitions in order equals
    /// [`Table::iter`] order (see [`Heap::iter_partition`]).
    pub fn iter_partition(
        &self,
        part: usize,
        parts: usize,
    ) -> impl Iterator<Item = (RowId, Result<Row>)> + '_ {
        self.heap.iter_partition(part, parts)
    }

    /// Materialize all rows.
    pub fn scan(&self) -> Result<Vec<Row>> {
        self.heap.scan()
    }

    /// Iterate over live rows as raw encoded bytes (batched-scan fast path;
    /// same order as [`Table::iter`]).
    pub fn iter_raw(&self) -> impl Iterator<Item = Result<&[u8]>> + '_ {
        self.heap.iter_raw()
    }

    /// Raw-bytes variant of [`Table::iter_partition`].
    pub fn iter_raw_partition(
        &self,
        part: usize,
        parts: usize,
    ) -> impl Iterator<Item = Result<&[u8]>> + '_ {
        self.heap.iter_raw_partition(part, parts)
    }

    /// Scan the table and (re)collect its statistics snapshot. Returns the
    /// fresh stats. O(rows · columns · log rows) — per-column sorts for NDV
    /// and the equi-depth histograms.
    pub fn analyze(&mut self) -> Result<Arc<TableStats>> {
        let rows = self.heap.scan()?;
        let stats = Arc::new(TableStats::collect(&rows, self.schema.arity()));
        self.stats = Some(stats.clone());
        Ok(stats)
    }

    /// The statistics snapshot from the last [`Table::analyze`], if any.
    /// May be stale relative to the live heap.
    pub fn stats(&self) -> Option<Arc<TableStats>> {
        self.stats.clone()
    }

    /// Point lookup through an index on `column`, materializing matches.
    /// Returns `None` if no index on that column exists.
    pub fn index_lookup(&self, column: &str, key: &Value) -> Option<Result<Vec<Row>>> {
        let idx = self.index_on(column)?;
        let ids = idx.lookup(std::slice::from_ref(key));
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            match self.heap.get(id) {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => return Some(Err(e)),
                None => {}
            }
        }
        Some(Ok(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn movie_table() -> Table {
        Table::new(
            TableSchema::new(
                "MOVIE",
                vec![
                    ColumnDef::new("mid", DataType::Int),
                    ColumnDef::new("title", DataType::Str),
                    ColumnDef::nullable("year", DataType::Int),
                ],
            )
            .with_primary_key(&["mid"]),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = movie_table();
        t.insert(vec![Value::Int(1), Value::str("Alien"), Value::Int(1979)]).unwrap();
        t.insert(vec![Value::Int(2), Value::str("Brazil"), Value::Null]).unwrap();
        assert_eq!(t.len(), 2);
        let rows = t.scan().unwrap();
        assert_eq!(rows[0][1], Value::str("Alien"));
        assert_eq!(rows[1][2], Value::Null);
    }

    #[test]
    fn arity_and_type_enforced() {
        let mut t = movie_table();
        assert!(matches!(t.insert(vec![Value::Int(1)]), Err(StorageError::ArityMismatch { .. })));
        assert!(matches!(
            t.insert(vec![Value::str("not an id"), Value::str("x"), Value::Null]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn null_constraint_enforced() {
        let mut t = movie_table();
        assert!(matches!(
            t.insert(vec![Value::Null, Value::str("x"), Value::Null]),
            Err(StorageError::NullViolation { .. })
        ));
    }

    #[test]
    fn primary_key_enforced() {
        let mut t = movie_table();
        t.insert(vec![Value::Int(1), Value::str("a"), Value::Null]).unwrap();
        assert!(matches!(
            t.insert(vec![Value::Int(1), Value::str("b"), Value::Null]),
            Err(StorageError::DuplicateKey { .. })
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_frees_key() {
        let mut t = movie_table();
        let id = t.insert(vec![Value::Int(1), Value::str("a"), Value::Null]).unwrap();
        assert!(t.delete(id).unwrap());
        assert!(!t.delete(id).unwrap());
        // Key 1 is reusable after delete.
        t.insert(vec![Value::Int(1), Value::str("again"), Value::Null]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn secondary_index_backfill_and_lookup() {
        let mut t = movie_table();
        t.insert(vec![Value::Int(1), Value::str("a"), Value::Int(2000)]).unwrap();
        t.insert(vec![Value::Int(2), Value::str("a"), Value::Int(2001)]).unwrap();
        t.insert(vec![Value::Int(3), Value::str("b"), Value::Int(2002)]).unwrap();
        t.create_index("title").unwrap();
        let hits = t.index_lookup("title", &Value::str("a")).unwrap().unwrap();
        assert_eq!(hits.len(), 2);
        assert!(t.index_lookup("year", &Value::Int(2000)).is_none(), "no index on year");
        // Index maintained on later inserts and deletes.
        let id = t.insert(vec![Value::Int(4), Value::str("a"), Value::Null]).unwrap();
        assert_eq!(t.index_lookup("title", &Value::str("a")).unwrap().unwrap().len(), 3);
        t.delete(id).unwrap();
        assert_eq!(t.index_lookup("title", &Value::str("a")).unwrap().unwrap().len(), 2);
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = Table::new(TableSchema::new("T", vec![ColumnDef::new("x", DataType::Float)]));
        t.insert(vec![Value::Int(2)]).unwrap();
        assert_eq!(t.scan().unwrap()[0][0], Value::Float(2.0));
    }
}
