//! Column-oriented row batches: the unit of vectorized execution.
//!
//! A [`Batch`] holds ~[`BATCH_SIZE`] rows column-wise. Each [`Column`] is a
//! typed vector (`Vec<i64>`, `Vec<f64>`, `Vec<bool>`, `Vec<Arc<str>>`) with
//! an optional null mask, falling back to a plain `Vec<Value>` for all-null
//! or mixed-type columns. Compared to the tuple representation
//! (`Vec<Vec<Value>>`) this removes the per-row heap allocation, shrinks
//! ints and floats from a 32-byte enum to 8 bytes, and makes row movement
//! through joins a *gather* — a memcpy for numeric columns and a refcount
//! bump for strings (`Arc<str>`) instead of a `String` clone per cell.
//!
//! Columns are dynamically typed with promotion: a [`BatchBuilder`] column
//! starts untyped, adopts the type of the first non-null value it sees, and
//! demotes to the `Val` fallback if a second type ever appears. Batches
//! scanned from schema-typed tables therefore always take the typed
//! representation (inserts coerce `Int` → `Float`, so a column never mixes),
//! and the fallback only pays for exotic computed columns.
//!
//! [`BatchBuilder::push_encoded`] decodes a [`crate::datum`]-encoded row
//! straight into the column vectors — the batched scan path — without ever
//! materializing a `Vec<Value>`.

use crate::datum::{
    float_from_order_key, int_from_order_key, split_str_body, take_u64, StrBody, TAG_FALSE,
    TAG_FLOAT, TAG_INT, TAG_NULL, TAG_STR, TAG_TRUE,
};
use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::value::Value;
use std::sync::Arc;

/// Target rows per batch. Large enough to amortize per-batch overhead
/// (dispatch, governor checkpoint, selection-vector allocation), small
/// enough that a batch's working set stays cache-resident. Batches are
/// soft-sized: operators may emit shorter batches (partition tails) or
/// longer ones (join fan-out) without violating any invariant.
pub const BATCH_SIZE: usize = 1024;

/// The typed payload of a [`Column`].
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// 64-bit integers; null positions hold `0`.
    Int(Vec<i64>),
    /// 64-bit floats; null positions hold `0.0`.
    Float(Vec<f64>),
    /// Booleans; null positions hold `false`.
    Bool(Vec<bool>),
    /// Strings, shared by refcount so gathers never copy bytes; null
    /// positions hold the empty string.
    Str(Vec<Arc<str>>),
    /// Fallback: boxed values, nulls stored inline as [`Value::Null`].
    /// Used for all-null columns and columns that mix types.
    Val(Vec<Value>),
}

/// One column of a [`Batch`]: typed data plus an optional null mask.
/// `nulls` is `None` when the column has no nulls (the common case) and is
/// never used with the `Val` representation (which stores nulls inline).
#[derive(Clone, Debug)]
pub struct Column {
    data: ColumnData,
    nulls: Option<Vec<bool>>,
}

impl Column {
    /// A column holding the given values, choosing the typed representation
    /// when they are uniform and the `Val` fallback otherwise.
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut b = ColBuilder::Nulls(0);
        for v in &values {
            b.push_value(v);
        }
        b.finish()
    }

    /// A column from typed data and an optional null mask. The mask, when
    /// present, must match the data length; positions flagged null should
    /// hold the representation's placeholder value.
    pub fn new(data: ColumnData, nulls: Option<Vec<bool>>) -> Column {
        debug_assert!(nulls.as_ref().is_none_or(|m| m.len() == data_len(&data)));
        debug_assert!(!(matches!(data, ColumnData::Val(_)) && nulls.is_some()));
        Column { data, nulls }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        data_len(&self.data)
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null mask, if any cell is null (never for `Val` columns).
    pub fn nulls(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    /// Whether cell `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match &self.nulls {
            Some(m) => m[i],
            None => match &self.data {
                ColumnData::Val(v) => v[i].is_null(),
                _ => false,
            },
        }
    }

    /// Materialize cell `i` as a [`Value`] (clones string bytes).
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].to_string()),
            ColumnData::Val(v) => v[i].clone(),
        }
    }

    /// A new column holding `sel`'s cells in `sel` order (indices may
    /// repeat — join fan-out). Numeric gathers are flat copies; string
    /// gathers bump refcounts.
    pub fn gather(&self, sel: &[u32]) -> Column {
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Val(v) => {
                ColumnData::Val(sel.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        let nulls = self.nulls.as_ref().map(|m| {
            let mask: Vec<bool> = sel.iter().map(|&i| m[i as usize]).collect();
            mask
        });
        let nulls = nulls.filter(|m| m.iter().any(|&b| b));
        Column { data, nulls }
    }

    /// Append `other`'s cells after this column's. Same-typed columns
    /// extend in place; a type mismatch demotes both sides to the `Val`
    /// fallback.
    pub fn append(&mut self, other: Column) {
        let self_len = self.len();
        let other_nulls = other.nulls;
        let merged_typed = |a: &mut Option<Vec<bool>>, b: Option<Vec<bool>>, blen: usize| {
            if a.is_none() && b.is_none() {
                return;
            }
            let m = a.get_or_insert_with(|| vec![false; self_len]);
            match b {
                Some(bm) => m.extend(bm),
                None => m.extend(std::iter::repeat_n(false, blen)),
            }
        };
        match (&mut self.data, other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => {
                merged_typed(&mut self.nulls, other_nulls, b.len());
                a.extend(b);
            }
            (ColumnData::Float(a), ColumnData::Float(b)) => {
                merged_typed(&mut self.nulls, other_nulls, b.len());
                a.extend(b);
            }
            (ColumnData::Bool(a), ColumnData::Bool(b)) => {
                merged_typed(&mut self.nulls, other_nulls, b.len());
                a.extend(b);
            }
            (ColumnData::Str(a), ColumnData::Str(b)) => {
                merged_typed(&mut self.nulls, other_nulls, b.len());
                a.extend(b);
            }
            (_, other_data) => {
                let mut vals = std::mem::replace(&mut self.data, ColumnData::Val(Vec::new()));
                let mut out = into_values(vals, self.nulls.take());
                vals = other_data;
                out.extend(into_values(vals, other_nulls));
                self.data = ColumnData::Val(out);
            }
        }
    }

    /// Keep only the first `n` cells.
    pub fn truncate(&mut self, n: usize) {
        match &mut self.data {
            ColumnData::Int(v) => v.truncate(n),
            ColumnData::Float(v) => v.truncate(n),
            ColumnData::Bool(v) => v.truncate(n),
            ColumnData::Str(v) => v.truncate(n),
            ColumnData::Val(v) => v.truncate(n),
        }
        if let Some(m) = &mut self.nulls {
            m.truncate(n);
        }
    }

    /// Actual compact memory footprint of the column's cells, in bytes —
    /// what the governor charges for batched intermediates (versus the
    /// [`crate::row::estimated_size`]-style per-row estimate of the tuple
    /// path).
    pub fn mem_bytes(&self) -> u64 {
        let data = match &self.data {
            ColumnData::Int(v) => 8 * v.len(),
            ColumnData::Float(v) => 8 * v.len(),
            ColumnData::Bool(v) => v.len(),
            // Pointer + shared bytes per cell (shared bytes counted once
            // per reference on purpose: each referencing batch keeps them
            // alive).
            ColumnData::Str(v) => v.iter().map(|s| 8 + s.len()).sum(),
            ColumnData::Val(v) => v.iter().map(crate::datum::datum_size).sum(),
        };
        (data + self.nulls.as_ref().map_or(0, Vec::len)) as u64
    }
}

fn data_len(data: &ColumnData) -> usize {
    match data {
        ColumnData::Int(v) => v.len(),
        ColumnData::Float(v) => v.len(),
        ColumnData::Bool(v) => v.len(),
        ColumnData::Str(v) => v.len(),
        ColumnData::Val(v) => v.len(),
    }
}

fn into_values(data: ColumnData, nulls: Option<Vec<bool>>) -> Vec<Value> {
    let materialize = |i: usize, v: Value| match &nulls {
        Some(m) if m[i] => Value::Null,
        _ => v,
    };
    match data {
        ColumnData::Int(v) => {
            v.into_iter().enumerate().map(|(i, x)| materialize(i, Value::Int(x))).collect()
        }
        ColumnData::Float(v) => {
            v.into_iter().enumerate().map(|(i, x)| materialize(i, Value::Float(x))).collect()
        }
        ColumnData::Bool(v) => {
            v.into_iter().enumerate().map(|(i, x)| materialize(i, Value::Bool(x))).collect()
        }
        ColumnData::Str(v) => v
            .into_iter()
            .enumerate()
            .map(|(i, x)| materialize(i, Value::Str(x.to_string())))
            .collect(),
        ColumnData::Val(v) => v,
    }
}

/// A column-oriented batch of rows.
#[derive(Clone, Debug)]
pub struct Batch {
    columns: Vec<Column>,
    len: usize,
}

impl Batch {
    /// A batch from pre-built columns (all must have equal length).
    pub fn from_columns(columns: Vec<Column>) -> Batch {
        let len = columns.first().map_or(0, Column::len);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        Batch { columns, len }
    }

    /// A batch holding the given rows (each of width `arity`).
    pub fn from_rows(rows: &[Row], arity: usize) -> Batch {
        let mut b = BatchBuilder::new(arity);
        for r in rows {
            b.push_row(r);
        }
        b.finish()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Take ownership of the columns (used to splice join sides together).
    pub fn into_columns(self) -> Vec<Column> {
        self.columns
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Materialize every row, appending to `out`.
    pub fn append_rows(&self, out: &mut Vec<Row>) {
        out.reserve(self.len);
        for i in 0..self.len {
            out.push(self.row(i));
        }
    }

    /// A new batch holding the selected rows in `sel` order.
    pub fn gather(&self, sel: &[u32]) -> Batch {
        Batch { columns: self.columns.iter().map(|c| c.gather(sel)).collect(), len: sel.len() }
    }

    /// Concatenate batches (all must share a column layout). Returns an
    /// empty zero-column batch for an empty input.
    pub fn concat(batches: Vec<Batch>) -> Batch {
        let mut iter = batches.into_iter();
        let Some(mut first) = iter.next() else {
            return Batch { columns: Vec::new(), len: 0 };
        };
        for b in iter {
            first.len += b.len;
            for (dst, src) in first.columns.iter_mut().zip(b.columns) {
                dst.append(src);
            }
        }
        first
    }

    /// Keep only the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        for c in &mut self.columns {
            c.truncate(n);
        }
        self.len = n;
    }

    /// Actual compact memory footprint of all cells, in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.columns.iter().map(Column::mem_bytes).sum()
    }
}

/// Incrementally builds a [`Batch`] row by row, from values or straight
/// from [`crate::datum`]-encoded bytes.
pub struct BatchBuilder {
    cols: Vec<ColBuilder>,
    len: usize,
}

enum ColBuilder {
    /// Only nulls so far (or nothing); the type is still open.
    Nulls(usize),
    Int {
        v: Vec<i64>,
        nulls: Option<Vec<bool>>,
    },
    Float {
        v: Vec<f64>,
        nulls: Option<Vec<bool>>,
    },
    Bool {
        v: Vec<bool>,
        nulls: Option<Vec<bool>>,
    },
    Str {
        v: Vec<Arc<str>>,
        nulls: Option<Vec<bool>>,
    },
    Val(Vec<Value>),
}

impl ColBuilder {
    fn push_null(&mut self) {
        match self {
            ColBuilder::Nulls(n) => *n += 1,
            ColBuilder::Int { v, nulls } => {
                push_masked_null(nulls, v.len());
                v.push(0);
            }
            ColBuilder::Float { v, nulls } => {
                push_masked_null(nulls, v.len());
                v.push(0.0);
            }
            ColBuilder::Bool { v, nulls } => {
                push_masked_null(nulls, v.len());
                v.push(false);
            }
            ColBuilder::Str { v, nulls } => {
                push_masked_null(nulls, v.len());
                v.push(Arc::from(""));
            }
            ColBuilder::Val(v) => v.push(Value::Null),
        }
    }

    fn push_int(&mut self, x: i64) {
        match self {
            ColBuilder::Nulls(n) => {
                let mut v = vec![0i64; *n];
                v.push(x);
                let nulls = (*n > 0).then(|| leading_nulls(*n));
                *self = ColBuilder::Int { v, nulls };
            }
            ColBuilder::Int { v, nulls } => {
                push_masked_live(nulls);
                v.push(x);
            }
            ColBuilder::Val(v) => v.push(Value::Int(x)),
            _ => self.demote_push(Value::Int(x)),
        }
    }

    fn push_float(&mut self, x: f64) {
        match self {
            ColBuilder::Nulls(n) => {
                let mut v = vec![0.0f64; *n];
                v.push(x);
                let nulls = (*n > 0).then(|| leading_nulls(*n));
                *self = ColBuilder::Float { v, nulls };
            }
            ColBuilder::Float { v, nulls } => {
                push_masked_live(nulls);
                v.push(x);
            }
            ColBuilder::Val(v) => v.push(Value::Float(x)),
            _ => self.demote_push(Value::Float(x)),
        }
    }

    fn push_bool(&mut self, x: bool) {
        match self {
            ColBuilder::Nulls(n) => {
                let mut v = vec![false; *n];
                v.push(x);
                let nulls = (*n > 0).then(|| leading_nulls(*n));
                *self = ColBuilder::Bool { v, nulls };
            }
            ColBuilder::Bool { v, nulls } => {
                push_masked_live(nulls);
                v.push(x);
            }
            ColBuilder::Val(v) => v.push(Value::Bool(x)),
            _ => self.demote_push(Value::Bool(x)),
        }
    }

    fn push_str(&mut self, x: Arc<str>) {
        match self {
            ColBuilder::Nulls(n) => {
                let mut v = vec![Arc::from(""); *n];
                v.push(x);
                let nulls = (*n > 0).then(|| leading_nulls(*n));
                *self = ColBuilder::Str { v, nulls };
            }
            ColBuilder::Str { v, nulls } => {
                push_masked_live(nulls);
                v.push(x);
            }
            ColBuilder::Val(v) => v.push(Value::Str(x.to_string())),
            _ => self.demote_push(Value::Str(x.to_string())),
        }
    }

    fn push_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Int(x) => self.push_int(*x),
            Value::Float(x) => self.push_float(*x),
            Value::Bool(x) => self.push_bool(*x),
            Value::Str(s) => self.push_str(Arc::from(s.as_str())),
        }
    }

    /// Mixed types in one column: fall back to boxed values.
    fn demote_push(&mut self, v: Value) {
        let old = std::mem::replace(self, ColBuilder::Val(Vec::new()));
        let mut vals = match old {
            ColBuilder::Nulls(n) => vec![Value::Null; n],
            ColBuilder::Int { v, nulls } => into_values(ColumnData::Int(v), nulls),
            ColBuilder::Float { v, nulls } => into_values(ColumnData::Float(v), nulls),
            ColBuilder::Bool { v, nulls } => into_values(ColumnData::Bool(v), nulls),
            ColBuilder::Str { v, nulls } => into_values(ColumnData::Str(v), nulls),
            ColBuilder::Val(v) => v,
        };
        vals.push(v);
        *self = ColBuilder::Val(vals);
    }

    fn finish(&mut self) -> Column {
        match std::mem::replace(self, ColBuilder::Nulls(0)) {
            ColBuilder::Nulls(n) => Column::new(ColumnData::Val(vec![Value::Null; n]), None),
            ColBuilder::Int { v, nulls } => Column::new(ColumnData::Int(v), nulls),
            ColBuilder::Float { v, nulls } => Column::new(ColumnData::Float(v), nulls),
            ColBuilder::Bool { v, nulls } => Column::new(ColumnData::Bool(v), nulls),
            ColBuilder::Str { v, nulls } => Column::new(ColumnData::Str(v), nulls),
            ColBuilder::Val(v) => Column::new(ColumnData::Val(v), None),
        }
    }
}

fn push_masked_null(nulls: &mut Option<Vec<bool>>, live_len: usize) {
    nulls.get_or_insert_with(|| vec![false; live_len]).push(true);
}

fn push_masked_live(nulls: &mut Option<Vec<bool>>) {
    if let Some(m) = nulls {
        m.push(false);
    }
}

fn leading_nulls(n: usize) -> Vec<bool> {
    let mut m = vec![true; n];
    m.push(false);
    m
}

impl BatchBuilder {
    /// A builder for batches of `arity` columns.
    pub fn new(arity: usize) -> BatchBuilder {
        BatchBuilder { cols: (0..arity).map(|_| ColBuilder::Nulls(0)).collect(), len: 0 }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rows have been pushed since the last [`BatchBuilder::finish`].
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once the builder holds at least [`BATCH_SIZE`] rows.
    pub fn is_full(&self) -> bool {
        self.len >= BATCH_SIZE
    }

    /// Push one row of values. The row's arity must match the builder's.
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.push_value(v);
        }
        self.len += 1;
    }

    /// Decode one [`crate::datum`]-encoded row straight into the column
    /// vectors. Strings become `Arc<str>` in a single allocation; no
    /// intermediate `Vec<Value>` is built.
    pub fn push_encoded(&mut self, bytes: &[u8]) -> Result<()> {
        let mut rest = bytes;
        for c in &mut self.cols {
            let Some(&tag) = rest.first() else {
                return Err(StorageError::Corrupt("row has fewer datums than columns".into()));
            };
            match tag {
                TAG_NULL => {
                    c.push_null();
                    rest = &rest[1..];
                }
                TAG_FALSE => {
                    c.push_bool(false);
                    rest = &rest[1..];
                }
                TAG_TRUE => {
                    c.push_bool(true);
                    rest = &rest[1..];
                }
                TAG_INT => {
                    let k = take_u64(&rest[1..], "int datum")?;
                    c.push_int(int_from_order_key(k));
                    rest = &rest[9..];
                }
                TAG_FLOAT => {
                    let k = take_u64(&rest[1..], "float datum")?;
                    c.push_float(float_from_order_key(k));
                    rest = &rest[9..];
                }
                TAG_STR => {
                    let (body, used) = split_str_body(&rest[1..])?;
                    let s: Arc<str> = match body {
                        StrBody::Borrowed(b) => {
                            Arc::from(std::str::from_utf8(b).map_err(|_| {
                                StorageError::Corrupt("invalid utf-8 in string datum".into())
                            })?)
                        }
                        StrBody::Owned(b) => Arc::from(
                            String::from_utf8(b)
                                .map_err(|_| {
                                    StorageError::Corrupt("invalid utf-8 in string datum".into())
                                })?
                                .as_str(),
                        ),
                    };
                    c.push_str(s);
                    rest = &rest[1 + used..];
                }
                other => {
                    return Err(StorageError::Corrupt(format!("unknown datum tag {other:#04x}")))
                }
            }
        }
        if !rest.is_empty() {
            return Err(StorageError::Corrupt("row has more datums than columns".into()));
        }
        self.len += 1;
        Ok(())
    }

    /// Take the accumulated rows as a [`Batch`], resetting the builder.
    pub fn finish(&mut self) -> Batch {
        let columns = self.cols.iter_mut().map(ColBuilder::finish).collect();
        let len = std::mem::take(&mut self.len);
        Batch { columns, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::encode_row_vec;

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::str("a"), Value::Float(1.5), Value::Bool(true)],
            vec![Value::Int(2), Value::Null, Value::Float(-0.5), Value::Bool(false)],
            vec![Value::Null, Value::str(""), Value::Null, Value::Null],
            vec![Value::Int(4), Value::str("d\0d"), Value::Float(0.0), Value::Bool(true)],
        ]
    }

    #[test]
    fn push_row_roundtrips() {
        let rows = sample_rows();
        let b = Batch::from_rows(&rows, 4);
        assert_eq!(b.len(), rows.len());
        let mut out = Vec::new();
        b.append_rows(&mut out);
        assert_eq!(out, rows);
    }

    #[test]
    fn push_encoded_matches_push_row() {
        let rows = sample_rows();
        let mut by_value = BatchBuilder::new(4);
        let mut by_bytes = BatchBuilder::new(4);
        for r in &rows {
            by_value.push_row(r);
            by_bytes.push_encoded(&encode_row_vec(r)).unwrap();
        }
        let (a, b) = (by_value.finish(), by_bytes.finish());
        let mut ra = Vec::new();
        let mut rb = Vec::new();
        a.append_rows(&mut ra);
        b.append_rows(&mut rb);
        assert_eq!(ra, rb);
        assert_eq!(ra, rows);
    }

    #[test]
    fn scan_typed_columns_stay_typed() {
        let rows = vec![vec![Value::Int(1), Value::str("x")], vec![Value::Int(2), Value::str("y")]];
        let b = Batch::from_rows(&rows, 2);
        assert!(matches!(b.column(0).data(), ColumnData::Int(_)));
        assert!(matches!(b.column(1).data(), ColumnData::Str(_)));
        assert!(b.column(0).nulls().is_none());
    }

    #[test]
    fn mixed_types_demote_to_val() {
        let rows = vec![vec![Value::Int(1)], vec![Value::str("x")], vec![Value::Null]];
        let b = Batch::from_rows(&rows, 1);
        assert!(matches!(b.column(0).data(), ColumnData::Val(_)));
        let mut out = Vec::new();
        b.append_rows(&mut out);
        assert_eq!(out, rows);
    }

    #[test]
    fn all_null_column_materializes_nulls() {
        let rows = vec![vec![Value::Null], vec![Value::Null]];
        let b = Batch::from_rows(&rows, 1);
        assert!(b.column(0).is_null(0) && b.column(0).is_null(1));
        assert_eq!(b.row(1), vec![Value::Null]);
    }

    #[test]
    fn gather_selects_and_repeats() {
        let rows = sample_rows();
        let b = Batch::from_rows(&rows, 4);
        let g = b.gather(&[3, 1, 1, 0]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.row(0), rows[3]);
        assert_eq!(g.row(1), rows[1]);
        assert_eq!(g.row(2), rows[1]);
        assert_eq!(g.row(3), rows[0]);
    }

    #[test]
    fn concat_and_truncate() {
        let rows = sample_rows();
        let b1 = Batch::from_rows(&rows[..2], 4);
        let b2 = Batch::from_rows(&rows[2..], 4);
        let mut all = Batch::concat(vec![b1, b2]);
        assert_eq!(all.len(), 4);
        let mut out = Vec::new();
        all.append_rows(&mut out);
        assert_eq!(out, rows);
        all.truncate(3);
        assert_eq!(all.len(), 3);
        assert_eq!(all.row(2), rows[2]);
    }

    #[test]
    fn concat_reconciles_mismatched_column_types() {
        let a = Batch::from_rows(&[vec![Value::Int(1)]], 1);
        let c = Batch::from_rows(&[vec![Value::str("s")]], 1);
        let merged = Batch::concat(vec![a, c]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.row(0), vec![Value::Int(1)]);
        assert_eq!(merged.row(1), vec![Value::str("s")]);
    }

    #[test]
    fn mem_bytes_is_compact() {
        let rows: Vec<Row> = (0..100).map(|i| vec![Value::Int(i)]).collect();
        let b = Batch::from_rows(&rows, 1);
        assert_eq!(b.mem_bytes(), 800, "100 ints at 8 bytes each");
    }

    #[test]
    fn push_encoded_rejects_arity_mismatch() {
        let mut b = BatchBuilder::new(2);
        let one = encode_row_vec(&[Value::Int(1)]);
        assert!(b.push_encoded(&one).is_err(), "fewer datums than columns");
        let mut b = BatchBuilder::new(1);
        let two = encode_row_vec(&[Value::Int(1), Value::Int(2)]);
        assert!(b.push_encoded(&two).is_err(), "more datums than columns");
    }
}
