//! Row representation and the binary row codec.
//!
//! Rows are stored inside slotted pages in a compact self-describing binary
//! format: a one-byte type tag per value followed by the payload. Strings are
//! length-prefixed (u32). The codec is infallible on encode and validating on
//! decode, so a corrupt page surfaces as an error rather than UB or a panic.
//!
//! All multi-byte integers are big-endian, written with the hand-rolled
//! helpers below (the workspace builds offline, so no `bytes` crate).

use crate::error::{Result, StorageError};
use crate::value::Value;

/// A materialized row.
pub type Row = Vec<Value>;

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// A cursor over the slice being decoded; every read is bounds-checked.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.data.len() < n {
            return Err(StorageError::Corrupt(format!("truncated {what}")));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn get_u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn get_u16(&mut self, what: &str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn get_u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_8_bytes(&mut self, what: &str) -> Result<[u8; 8]> {
        let b = self.take(8, what)?;
        b.try_into().map_err(|_| StorageError::Corrupt(format!("truncated 8-byte {what}")))
    }

    fn get_i64(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_be_bytes(self.get_8_bytes(what)?))
    }

    fn get_f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_be_bytes(self.get_8_bytes(what)?))
    }
}

/// Encode a row into `buf`.
pub fn encode_row(row: &[Value], buf: &mut Vec<u8>) {
    put_u16(buf, row.len() as u16);
    for v in row {
        match v {
            Value::Null => buf.push(TAG_NULL),
            Value::Bool(false) => buf.push(TAG_BOOL_FALSE),
            Value::Bool(true) => buf.push(TAG_BOOL_TRUE),
            Value::Int(i) => {
                buf.push(TAG_INT);
                put_i64(buf, *i);
            }
            Value::Float(f) => {
                buf.push(TAG_FLOAT);
                put_f64(buf, *f);
            }
            Value::Str(s) => {
                buf.push(TAG_STR);
                put_u32(buf, s.len() as u32);
                buf.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// Encode a row into a fresh buffer.
pub fn encode_row_vec(row: &[Value]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(estimated_size(row));
    encode_row(row, &mut buf);
    buf
}

/// Upper-bound estimate of a row's encoded size, used for page-fit checks.
pub fn estimated_size(row: &[Value]) -> usize {
    2 + row
        .iter()
        .map(|v| match v {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
        })
        .sum::<usize>()
}

/// Decode a row from a byte slice previously produced by [`encode_row`].
pub fn decode_row(data: &[u8]) -> Result<Row> {
    let mut r = Reader { data };
    let n = r.get_u16("row header")? as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.get_u8("value tag")?;
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            TAG_INT => Value::Int(r.get_i64("int")?),
            TAG_FLOAT => Value::Float(r.get_f64("float")?),
            TAG_STR => {
                let len = r.get_u32("string length")? as usize;
                if r.remaining() < len {
                    return Err(StorageError::Corrupt("truncated string payload".to_string()));
                }
                let bytes = r.take(len, "string payload")?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| StorageError::Corrupt("invalid utf-8 in string".to_string()))?
                    .to_owned();
                Value::Str(s)
            }
            other => return Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
        };
        row.push(v);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(row: Row) {
        let bytes = encode_row_vec(&row);
        assert!(bytes.len() <= estimated_size(&row));
        let back = decode_row(&bytes).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(3.25),
            Value::str("hello κόσμε"),
        ]);
    }

    #[test]
    fn roundtrip_empty_row() {
        roundtrip(vec![]);
    }

    #[test]
    fn roundtrip_empty_string() {
        roundtrip(vec![Value::str("")]);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_row_vec(&[Value::Int(7), Value::str("abc")]);
        for cut in 0..bytes.len() {
            // Every strict prefix must either fail or decode to a shorter row,
            // never panic.
            let _ = decode_row(&bytes[..cut]);
        }
        assert!(decode_row(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 1);
        buf.push(99);
        assert!(matches!(decode_row(&buf), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 1);
        buf.push(5); // TAG_STR
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_row(&buf).is_err());
    }
}
