//! Row representation and the binary row codec.
//!
//! A stored row is the plain concatenation of its values' datums in the
//! compact, order-preserving encoding of [`crate::datum`]. Datums are
//! self-delimiting, so the row needs no count header or offset table: the
//! page slot bounds the slice, and decode walks datums until the slice is
//! exhausted. Because each datum is memcmp-comparable within its type
//! class, encoded rows over the same schema compare byte-wise like
//! column-wise value comparison — the property batched execution and
//! composite keys build on.
//!
//! The codec is infallible on encode and validating on decode, so a corrupt
//! page surfaces as an error rather than UB or a panic.

use crate::datum::{datum_size, decode_datum, encode_datum};
use crate::error::Result;
use crate::value::Value;

/// A materialized row.
pub type Row = Vec<Value>;

/// Encode a row into `buf`: one [`crate::datum`] encoding per value,
/// concatenated.
pub fn encode_row(row: &[Value], buf: &mut Vec<u8>) {
    for v in row {
        encode_datum(v, buf);
    }
}

/// Encode a row into a fresh buffer.
pub fn encode_row_vec(row: &[Value]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(estimated_size(row));
    encode_row(row, &mut buf);
    buf
}

/// Exact encoded size of a row, used for page-fit checks.
pub fn estimated_size(row: &[Value]) -> usize {
    row.iter().map(datum_size).sum()
}

/// Decode a row from a byte slice previously produced by [`encode_row`].
/// The slice must contain exactly one row (page slots guarantee this).
pub fn decode_row(data: &[u8]) -> Result<Row> {
    let mut row = Vec::new();
    let mut rest = data;
    while !rest.is_empty() {
        let (v, used) = decode_datum(rest)?;
        row.push(v);
        rest = &rest[used..];
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::TAG_STR;

    fn roundtrip(row: Row) {
        let bytes = encode_row_vec(&row);
        assert_eq!(bytes.len(), estimated_size(&row));
        let back = decode_row(&bytes).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(3.25),
            Value::str("hello κόσμε"),
        ]);
    }

    #[test]
    fn roundtrip_empty_row() {
        roundtrip(vec![]);
    }

    #[test]
    fn roundtrip_empty_string() {
        roundtrip(vec![Value::str("")]);
    }

    #[test]
    fn rows_compare_bytewise_like_values() {
        let rows = [
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(1), Value::str("b")],
            vec![Value::Int(2), Value::str("a")],
        ];
        for a in &rows {
            for b in &rows {
                assert_eq!(encode_row_vec(a).cmp(&encode_row_vec(b)), a.cmp(b));
            }
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_row_vec(&[Value::Int(7), Value::str("abc")]);
        for cut in 0..bytes.len() {
            // Every strict prefix must either fail or decode to a shorter row,
            // never panic.
            let _ = decode_row(&bytes[..cut]);
        }
        assert!(decode_row(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert!(decode_row(&[99]).is_err());
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        assert!(decode_row(&[TAG_STR, 0xff, 0xfe, 0x00, 0x00]).is_err());
    }
}
