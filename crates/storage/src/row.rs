//! Row representation and the binary row codec.
//!
//! Rows are stored inside slotted pages in a compact self-describing binary
//! format: a one-byte type tag per value followed by the payload. Strings are
//! length-prefixed (u32). The codec is infallible on encode and validating on
//! decode, so a corrupt page surfaces as an error rather than UB or a panic.

use crate::error::{Result, StorageError};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A materialized row.
pub type Row = Vec<Value>;

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;

/// Encode a row into `buf`.
pub fn encode_row(row: &[Value], buf: &mut BytesMut) {
    buf.put_u16(row.len() as u16);
    for v in row {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
            Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64(*f);
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

/// Encode a row into a fresh buffer.
pub fn encode_row_vec(row: &[Value]) -> Bytes {
    let mut buf = BytesMut::with_capacity(estimated_size(row));
    encode_row(row, &mut buf);
    buf.freeze()
}

/// Upper-bound estimate of a row's encoded size, used for page-fit checks.
pub fn estimated_size(row: &[Value]) -> usize {
    2 + row
        .iter()
        .map(|v| match v {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
        })
        .sum::<usize>()
}

/// Decode a row from a byte slice previously produced by [`encode_row`].
pub fn decode_row(mut data: &[u8]) -> Result<Row> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if data.remaining() < 2 {
        return Err(corrupt("truncated row header"));
    }
    let n = data.get_u16() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        if data.remaining() < 1 {
            return Err(corrupt("truncated value tag"));
        }
        let tag = data.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            TAG_INT => {
                if data.remaining() < 8 {
                    return Err(corrupt("truncated int"));
                }
                Value::Int(data.get_i64())
            }
            TAG_FLOAT => {
                if data.remaining() < 8 {
                    return Err(corrupt("truncated float"));
                }
                Value::Float(data.get_f64())
            }
            TAG_STR => {
                if data.remaining() < 4 {
                    return Err(corrupt("truncated string length"));
                }
                let len = data.get_u32() as usize;
                if data.remaining() < len {
                    return Err(corrupt("truncated string payload"));
                }
                let s = std::str::from_utf8(&data[..len])
                    .map_err(|_| corrupt("invalid utf-8 in string"))?
                    .to_owned();
                data.advance(len);
                Value::Str(s)
            }
            other => return Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
        };
        row.push(v);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(row: Row) {
        let bytes = encode_row_vec(&row);
        assert!(bytes.len() <= estimated_size(&row));
        let back = decode_row(&bytes).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(3.25),
            Value::str("hello κόσμε"),
        ]);
    }

    #[test]
    fn roundtrip_empty_row() {
        roundtrip(vec![]);
    }

    #[test]
    fn roundtrip_empty_string() {
        roundtrip(vec![Value::str("")]);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_row_vec(&[Value::Int(7), Value::str("abc")]);
        for cut in 0..bytes.len() {
            // Every strict prefix must either fail or decode to a shorter row,
            // never panic.
            let _ = decode_row(&bytes[..cut]);
        }
        assert!(decode_row(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut buf = BytesMut::new();
        buf.put_u16(1);
        buf.put_u8(99);
        assert!(matches!(decode_row(&buf), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let mut buf = BytesMut::new();
        buf.put_u16(1);
        buf.put_u8(5); // TAG_STR
        buf.put_u32(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert!(decode_row(&buf).is_err());
    }
}
