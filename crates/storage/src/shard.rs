//! A sharded concurrent map: N shards, each a [`RwLock`]-protected
//! `HashMap`, with keys routed to shards by a stable hash.
//!
//! This is the storage-layer building block for per-user state that many
//! threads read and write concurrently (the serving layer's profile store):
//! contention is limited to one shard, and the closure-based accessors keep
//! lock guards from escaping — a caller can never hold two shards at once,
//! so lock ordering deadlocks are impossible by construction.

use crate::sync::RwLock;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};

/// A concurrent map split into `N` independently locked shards.
///
/// All access goes through closures scoped to one shard's lock. Iteration
/// helpers ([`ShardedMap::for_each`], [`ShardedMap::keys`]) visit shards one
/// at a time, so they observe a consistent snapshot per shard but not across
/// shards — fine for the metrics/admin uses they exist for.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Create a map with `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> ShardedMap<K, V> {
        let n = shards.max(1);
        ShardedMap { shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key routes to (stable for the life of the map).
    pub fn shard_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Run `f` under the read lock of `key`'s shard, passing the mapped
    /// value (if any).
    pub fn read<R>(&self, key: &K, f: impl FnOnce(Option<&V>) -> R) -> R {
        let shard = self.shards[self.shard_of(key)].read();
        f(shard.get(key))
    }

    /// The `shard.lock` failpoint, evaluated while a shard *write* lock is
    /// held: `delay` stretches the critical section, `panic` poisons the
    /// lock — which the [`RwLock`] wrapper then recovers from, the property
    /// the chaos suite leans on. An `error` spec cannot travel through the
    /// closure API, so it escalates to a panic (caught at the service
    /// boundary like any other).
    fn lock_failpoint() {
        if let Some(msg) = pqp_obs::failpoint::fire("shard.lock") {
            panic!("failpoint shard.lock: {msg}");
        }
    }

    /// Run `f` under the write lock of `key`'s shard, passing a mutable
    /// handle to the whole shard map (so callers can insert, remove or
    /// update the entry for `key`).
    pub fn write<R>(&self, key: &K, f: impl FnOnce(&mut HashMap<K, V>) -> R) -> R {
        let mut shard = self.shards[self.shard_of(key)].write();
        Self::lock_failpoint();
        f(&mut shard)
    }

    /// Insert a value, returning the previous one.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        let mut shard = self.shards[self.shard_of(&key)].write();
        Self::lock_failpoint();
        shard.insert(key, value)
    }

    /// Remove a key, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let mut shard = self.shards[self.shard_of(key)].write();
        Self::lock_failpoint();
        shard.remove(key)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.read(key, |v| v.is_some())
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Visit every entry, one shard's read lock at a time.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            let shard = shard.read();
            for (k, v) in shard.iter() {
                f(k, v);
            }
        }
    }

    /// Remove all entries.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

impl<K: Hash + Eq + Clone, V> ShardedMap<K, V> {
    /// All keys, shard by shard (no cross-shard snapshot guarantee).
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.for_each(|k, _| out.push(k.clone()));
        out
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// Clone the value mapped to `key`.
    pub fn get_cloned(&self, key: &K) -> Option<V> {
        self.read(key, |v| v.cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn routing_is_stable_and_in_range() {
        let m: ShardedMap<String, i32> = ShardedMap::new(8);
        for i in 0..100 {
            let k = format!("user{i}");
            let s = m.shard_of(&k);
            assert!(s < 8);
            assert_eq!(s, m.shard_of(&k), "routing must be deterministic");
        }
    }

    #[test]
    fn basic_map_operations() {
        let m: ShardedMap<String, i32> = ShardedMap::new(4);
        assert!(m.is_empty());
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        m.insert("b".into(), 3);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&"a".into()));
        assert_eq!(m.get_cloned(&"a".into()), Some(2));
        assert_eq!(m.remove(&"b".into()), Some(3));
        assert_eq!(m.get_cloned(&"b".into()), None);
        let mut keys = m.keys();
        keys.sort();
        assert_eq!(keys, vec!["a".to_string()]);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn write_closure_edits_in_place() {
        let m: ShardedMap<String, Vec<i32>> = ShardedMap::new(2);
        m.insert("k".into(), vec![1]);
        m.write(&"k".into(), |shard| shard.get_mut("k").unwrap().push(2));
        assert_eq!(m.get_cloned(&"k".into()), Some(vec![1, 2]));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let m: ShardedMap<i32, i32> = ShardedMap::new(0);
        assert_eq!(m.shard_count(), 1);
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn panic_holding_a_shard_lock_does_not_wedge_later_access() {
        // Regression: a panic while a shard's write lock is held poisons the
        // std lock; the sync wrapper must recover so subsequent queries on
        // that shard still work (and see consistent pre-panic state).
        let m: Arc<ShardedMap<String, i32>> = Arc::new(ShardedMap::new(2));
        m.insert("k".into(), 1);
        let m2 = Arc::clone(&m);
        let panicked = std::thread::spawn(move || {
            m2.write(&"k".into(), |shard| {
                shard.insert("k".into(), 2);
                panic!("boom while holding the shard lock");
            })
        })
        .join();
        assert!(panicked.is_err(), "worker must have panicked");
        // Reads and writes on the poisoned shard recover, seeing the state
        // as of the poisoning write.
        assert_eq!(m.get_cloned(&"k".into()), Some(2));
        m.insert("k".into(), 3);
        assert_eq!(m.get_cloned(&"k".into()), Some(3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn shard_lock_failpoint_panic_is_survivable() {
        let m: Arc<ShardedMap<String, i32>> = Arc::new(ShardedMap::new(2));
        m.insert("a".into(), 1);
        pqp_obs::failpoint::configure("shard.lock", "1*panic(chaos)").unwrap();
        let m2 = Arc::clone(&m);
        let r = std::thread::spawn(move || m2.insert("a".into(), 2)).join();
        pqp_obs::failpoint::remove("shard.lock");
        assert!(r.is_err(), "failpoint must panic the mutating thread");
        // The poisoned shard recovers and the pre-panic value is intact
        // (the panic fired before the insert mutated the map).
        assert_eq!(m.get_cloned(&"a".into()), Some(1));
        m.insert("a".into(), 5);
        assert_eq!(m.get_cloned(&"a".into()), Some(5));
    }

    #[test]
    fn concurrent_mixed_access() {
        let m: Arc<ShardedMap<u32, u64>> = Arc::new(ShardedMap::new(4));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..200u32 {
                        let k = t * 1000 + i;
                        m.insert(k, u64::from(k));
                        assert_eq!(m.get_cloned(&k), Some(u64::from(k)));
                    }
                });
            }
        });
        assert_eq!(m.len(), 800);
    }
}
