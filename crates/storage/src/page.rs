//! Slotted pages: the unit of row storage inside a heap.
//!
//! Layout (all offsets within one contiguous `PAGE_SIZE` buffer):
//!
//! ```text
//! +-----------+----------------------+ ...free... +-------------+---------+
//! | header    | slot directory →     |            | ← row data  | row data|
//! | (4 bytes) | (4 bytes per slot)   |            |             |         |
//! +-----------+----------------------+------------+-------------+---------+
//! ```
//!
//! The header stores the slot count and the offset of the free-space end.
//! Each slot stores `(offset: u16, len: u16)` of its row payload; a slot of
//! `(0, 0)` is a tombstone left by a delete. The offset disambiguates: live
//! payloads always sit above the 4-byte header, so offset 0 can only mean a
//! tombstone, while a zero-*length* slot at a real offset is a legitimate
//! empty row (the datum encoding of a zero-column row is zero bytes). Rows
//! grow from the tail of the page toward the slot directory.

use crate::error::{Result, StorageError};
use crate::row::{decode_row, encode_row_vec, Row};

/// Size of one page in bytes. 8 KiB, the classic default.
pub const PAGE_SIZE: usize = 8192;

const HEADER_SIZE: usize = 4;
const SLOT_SIZE: usize = 4;

/// Identifier of a row inside a heap: page number and slot number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    pub page: u32,
    pub slot: u16,
}

/// A single slotted page.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Page {
        let data = match vec![0u8; PAGE_SIZE].into_boxed_slice().try_into() {
            Ok(data) => data,
            Err(_) => unreachable!("a Vec of PAGE_SIZE bytes converts to [u8; PAGE_SIZE]"),
        };
        let mut p = Page { data };
        p.set_slot_count(0);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_free_end(&mut self, off: u16) {
        self.data[2..4].copy_from_slice(&off.to_le_bytes());
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let base = HEADER_SIZE + i as usize * SLOT_SIZE;
        let off = u16::from_le_bytes([self.data[base], self.data[base + 1]]);
        let len = u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]);
        (off, len)
    }

    fn set_slot(&mut self, i: u16, off: u16, len: u16) {
        let base = HEADER_SIZE + i as usize * SLOT_SIZE;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes of free space available for one more row (including its slot).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        (self.free_end() as usize).saturating_sub(dir_end).saturating_sub(SLOT_SIZE)
    }

    /// Number of slots (including tombstones).
    pub fn len(&self) -> u16 {
        self.slot_count()
    }

    /// True if the page holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slot_count() == 0
    }

    /// Try to insert an encoded row; returns the slot id, or `None` if the
    /// page lacks space.
    pub fn insert(&mut self, encoded: &[u8]) -> Option<u16> {
        if encoded.len() > self.free_space() || encoded.is_empty() && self.free_space() == 0 {
            return None;
        }
        let slot = self.slot_count();
        let new_end = self.free_end() as usize - encoded.len();
        self.data[new_end..new_end + encoded.len()].copy_from_slice(encoded);
        self.set_slot(slot, new_end as u16, encoded.len() as u16);
        self.set_slot_count(slot + 1);
        self.set_free_end(new_end as u16);
        Some(slot)
    }

    /// Read and decode the row in `slot`. Tombstoned or out-of-range slots
    /// yield `None`.
    pub fn get(&self, slot: u16) -> Option<Result<Row>> {
        self.get_raw(slot).map(decode_row)
    }

    /// Raw encoded bytes of the row in `slot`, if live.
    pub fn get_raw(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return None; // Tombstone: no live payload can sit in the header.
        }
        Some(&self.data[off as usize..(off + len) as usize])
    }

    /// Tombstone the row in `slot`. Returns whether a live row was deleted.
    /// The payload space is not reclaimed (no compaction), matching a
    /// classic delete-in-place heap.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (off, _) = self.slot(slot);
        if off == 0 {
            return false;
        }
        self.set_slot(slot, 0, 0);
        true
    }

    /// Iterate over live rows as `(slot, Row)`.
    pub fn iter(&self) -> impl Iterator<Item = (u16, Result<Row>)> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Iterate over live rows as raw encoded bytes, skipping the decode —
    /// the batched scan path decodes straight into column vectors instead.
    pub fn iter_raw(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get_raw(s))
    }

    /// Convenience: insert an unencoded row.
    pub fn insert_row(&mut self, row: &[crate::value::Value]) -> Option<u16> {
        self.insert(&encode_row_vec(row))
    }
}

/// Returns an error if a row is too large to ever fit in a page.
pub fn check_row_fits(encoded_len: usize) -> Result<()> {
    let max = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;
    if encoded_len > max {
        return Err(StorageError::Corrupt(format!(
            "row of {encoded_len} bytes exceeds maximum page payload of {max} bytes"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert_row(&[Value::Int(1), Value::str("a")]).unwrap();
        let s1 = p.insert_row(&[Value::Int(2), Value::str("b")]).unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0).unwrap().unwrap(), vec![Value::Int(1), Value::str("a")]);
        assert_eq!(p.get(1).unwrap().unwrap(), vec![Value::Int(2), Value::str("b")]);
        assert!(p.get(2).is_none());
    }

    #[test]
    fn fills_until_full() {
        let mut p = Page::new();
        let row = vec![Value::str("x".repeat(100))];
        let mut n = 0;
        while p.insert_row(&row).is_some() {
            n += 1;
        }
        // Each row is ~107 bytes payload + 4 bytes slot → about 70 rows/page.
        assert!(n >= 60, "expected at least 60 rows, got {n}");
        // Page must report all of them.
        assert_eq!(p.iter().count(), n);
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        p.insert_row(&[Value::Int(1)]).unwrap();
        p.insert_row(&[Value::Int(2)]).unwrap();
        assert!(p.delete(0));
        assert!(!p.delete(0), "double delete is a no-op");
        assert!(p.get(0).is_none());
        let live: Vec<_> = p.iter().map(|(s, _)| s).collect();
        assert_eq!(live, vec![1]);
    }

    #[test]
    fn empty_row_is_live_not_tombstone() {
        let mut p = Page::new();
        let s = p.insert(&[]).unwrap();
        assert_eq!(p.get(s).unwrap().unwrap(), Vec::<Value>::new());
        assert_eq!(p.get_raw(s).unwrap(), &[] as &[u8]);
        assert_eq!(p.iter().count(), 1);
        assert!(p.delete(s));
        assert!(p.get(s).is_none());
        assert!(!p.delete(s), "double delete of an empty row is a no-op");
    }

    #[test]
    fn oversized_row_rejected() {
        assert!(check_row_fits(PAGE_SIZE).is_err());
        assert!(check_row_fits(100).is_ok());
    }

    #[test]
    fn free_space_decreases_monotonically() {
        let mut p = Page::new();
        let before = p.free_space();
        p.insert_row(&[Value::Int(42)]).unwrap();
        assert!(p.free_space() < before);
    }
}
