//! The catalog: the set of tables of one database, plus schema-graph
//! metadata queries (foreign-key joins and their cardinalities) consumed by
//! the personalization layer.

use crate::error::{Result, StorageError};
use crate::schema::{Cardinality, TableSchema};
use crate::sync::RwLock;
use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared handle to a table. Readers take the lock briefly to scan; the
/// engine materializes what it needs rather than holding guards across
/// operators.
pub type TableRef = Arc<RwLock<Table>>;

/// One join of the schema graph, as derived from a foreign key: the edge is
/// usable in both directions with different cardinalities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaJoin {
    pub from_table: String,
    pub from_column: String,
    pub to_table: String,
    pub to_column: String,
    /// Cardinality of following the edge from `from` to `to`.
    pub cardinality: Cardinality,
}

/// The catalog of a database.
#[derive(Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableRef>,
    /// Bumped on every `ANALYZE` so plan caches keyed on it miss after
    /// statistics change (see `pqp-service`).
    stats_epoch: AtomicU64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Create a table from a schema. Fails if the name is taken or if a
    /// foreign key references an unknown table/column already in the catalog.
    /// (Foreign keys to tables created later are validated lazily by
    /// [`Catalog::validate_foreign_keys`].)
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableRef> {
        let key = schema.name.to_ascii_uppercase();
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableExists(schema.name));
        }
        let t = Arc::new(RwLock::new(Table::new(schema)));
        self.tables.insert(key, t.clone());
        Ok(t)
    }

    /// Look up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Result<TableRef> {
        self.tables
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_uppercase())
    }

    /// Remove a table. Fails if the table does not exist. Foreign keys of
    /// other tables referencing it are left dangling (re-validate with
    /// [`Catalog::validate_foreign_keys`] if that matters to the caller).
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(&name.to_ascii_uppercase())
            .map(|_| ())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.read().schema().name.clone()).collect()
    }

    /// A snapshot of a table's schema.
    pub fn schema_of(&self, name: &str) -> Result<TableSchema> {
        Ok(self.table(name)?.read().schema().clone())
    }

    /// Check every declared foreign key references an existing table/column.
    pub fn validate_foreign_keys(&self) -> Result<()> {
        for t in self.tables.values() {
            let t = t.read();
            let s = t.schema();
            for fk in &s.foreign_keys {
                let parent = self.table(&fk.parent_table).map_err(|_| {
                    StorageError::InvalidForeignKey(format!(
                        "`{}` references missing table `{}`",
                        s.name, fk.parent_table
                    ))
                })?;
                let parent = parent.read();
                if fk.columns.len() != fk.parent_columns.len() {
                    return Err(StorageError::InvalidForeignKey(format!(
                        "`{}`: column count mismatch in fk to `{}`",
                        s.name, fk.parent_table
                    )));
                }
                for c in &fk.columns {
                    if s.column_index(c).is_none() {
                        return Err(StorageError::InvalidForeignKey(format!(
                            "`{}`: unknown local column `{c}`",
                            s.name
                        )));
                    }
                }
                for c in &fk.parent_columns {
                    if parent.schema().column_index(c).is_none() {
                        return Err(StorageError::InvalidForeignKey(format!(
                            "`{}`: unknown column `{c}` in parent `{}`",
                            s.name, fk.parent_table
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// All joins of the schema graph, both directions of every foreign key.
    ///
    /// For a foreign key `CHILD.fk → PARENT.pk`:
    /// - `CHILD → PARENT` is **to-one** (pk is a key of PARENT);
    /// - `PARENT → CHILD` is **to-many** unless `fk` happens to be a key of
    ///   CHILD (a 1:1 relationship).
    pub fn schema_joins(&self) -> Vec<SchemaJoin> {
        let mut out = Vec::new();
        for t in self.tables.values() {
            let t = t.read();
            let s = t.schema();
            for fk in &s.foreign_keys {
                let Ok(parent) = self.schema_of(&fk.parent_table) else {
                    continue;
                };
                for (c, pc) in fk.columns.iter().zip(&fk.parent_columns) {
                    out.push(SchemaJoin {
                        from_table: s.name.clone(),
                        from_column: c.clone(),
                        to_table: parent.name.clone(),
                        to_column: pc.clone(),
                        cardinality: parent.join_cardinality_into(pc),
                    });
                    out.push(SchemaJoin {
                        from_table: parent.name.clone(),
                        from_column: pc.clone(),
                        to_table: s.name.clone(),
                        to_column: c.clone(),
                        cardinality: s.join_cardinality_into(c),
                    });
                }
            }
        }
        out
    }

    /// Monotonic counter bumped by every `ANALYZE`. Plan caches fold it into
    /// their keys so plans built against old statistics are not reused.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch.load(Ordering::Acquire)
    }

    /// `ANALYZE table`: (re)collect statistics for one table and bump the
    /// stats epoch. Takes `&self` — tables are behind locks, so analysis
    /// needs no exclusive catalog access.
    pub fn analyze_table(&self, name: &str) -> Result<()> {
        self.table(name)?.write().analyze()?;
        self.stats_epoch.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// `ANALYZE`: (re)collect statistics for every table; bumps the stats
    /// epoch once. Returns the number of tables analyzed.
    pub fn analyze_all(&self) -> Result<usize> {
        for t in self.tables.values() {
            t.write().analyze()?;
        }
        self.stats_epoch.fetch_add(1, Ordering::AcqRel);
        Ok(self.tables.len())
    }

    /// Cardinality of the join `from_table.from_col = to_table.to_col`
    /// followed from `from` to `to`: to-one iff the target column is a key of
    /// the target table. Works for arbitrary equi-joins, not just declared
    /// foreign keys.
    pub fn join_cardinality(&self, to_table: &str, to_column: &str) -> Result<Cardinality> {
        Ok(self.schema_of(to_table)?.join_cardinality_into(to_column))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::{DataType, Value};

    fn demo_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            TableSchema::new(
                "MOVIE",
                vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
            )
            .with_primary_key(&["mid"]),
        )
        .unwrap();
        c.create_table(
            TableSchema::new(
                "PLAY",
                vec![
                    ColumnDef::new("tid", DataType::Int),
                    ColumnDef::new("mid", DataType::Int),
                    ColumnDef::new("date", DataType::Str),
                ],
            )
            .with_foreign_key(&["mid"], "MOVIE", &["mid"]),
        )
        .unwrap();
        c
    }

    #[test]
    fn create_and_lookup() {
        let c = demo_catalog();
        assert!(c.contains("movie"));
        assert!(c.table("MOVIE").is_ok());
        assert!(c.table("nope").is_err());
        assert_eq!(c.table_names(), vec!["MOVIE".to_string(), "PLAY".to_string()]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = demo_catalog();
        let r = c.create_table(TableSchema::new("movie", vec![ColumnDef::new("x", DataType::Int)]));
        assert!(matches!(r, Err(StorageError::TableExists(_))));
    }

    #[test]
    fn schema_join_cardinalities() {
        let c = demo_catalog();
        let joins = c.schema_joins();
        assert_eq!(joins.len(), 2);
        let to_movie =
            joins.iter().find(|j| j.from_table == "PLAY" && j.to_table == "MOVIE").unwrap();
        assert_eq!(to_movie.cardinality, Cardinality::ToOne);
        let to_play =
            joins.iter().find(|j| j.from_table == "MOVIE" && j.to_table == "PLAY").unwrap();
        assert_eq!(to_play.cardinality, Cardinality::ToMany);
    }

    #[test]
    fn fk_validation() {
        let c = demo_catalog();
        assert!(c.validate_foreign_keys().is_ok());

        let mut bad = Catalog::new();
        bad.create_table(
            TableSchema::new("A", vec![ColumnDef::new("x", DataType::Int)]).with_foreign_key(
                &["x"],
                "MISSING",
                &["y"],
            ),
        )
        .unwrap();
        assert!(bad.validate_foreign_keys().is_err());
    }

    #[test]
    fn shared_handle_mutation() {
        let c = demo_catalog();
        let t = c.table("MOVIE").unwrap();
        t.write().insert(vec![Value::Int(1), Value::str("Alien")]).unwrap();
        assert_eq!(c.table("movie").unwrap().read().len(), 1);
    }

    #[test]
    fn join_cardinality_for_adhoc_join() {
        let c = demo_catalog();
        assert_eq!(c.join_cardinality("MOVIE", "mid").unwrap(), Cardinality::ToOne);
        assert_eq!(c.join_cardinality("PLAY", "mid").unwrap(), Cardinality::ToMany);
    }
}
