//! Table and column statistics collected by `ANALYZE`, consumed by the
//! engine's cost-based planner.
//!
//! Statistics are a *snapshot*: `ANALYZE` scans the table once and stores the
//! result on the [`crate::table::Table`]; later inserts and deletes leave it
//! stale until the next `ANALYZE`, exactly as in production systems. The
//! planner treats absent stats as "fall back to the fixed heuristics", so an
//! un-analyzed database plans exactly as it did before statistics existed.
//!
//! Per column we keep the classic quartet: distinct count (NDV), null count,
//! min/max, and a small [equi-depth histogram](Histogram) over the non-null
//! values (buckets hold roughly equal row counts, so frequent values span
//! many buckets and are visible to the equality estimator).

use crate::row::Row;
use crate::value::Value;

/// Number of buckets an equi-depth histogram aims for. Small on purpose: the
/// planner only needs coarse shape (a few percent resolution), and ANALYZE
/// must stay cheap enough to run casually in tests and benches.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// One bucket of an equi-depth histogram: the closed value range
/// `[lo, hi]` and the number of (non-null) rows that fell into it.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    pub lo: Value,
    pub hi: Value,
    pub count: usize,
}

/// An equi-depth histogram over the sorted non-null values of one column.
///
/// Built from at most [`HISTOGRAM_BUCKETS`] contiguous runs of the sorted
/// values; each bucket records its inclusive bounds and row count. A heavily
/// skewed value occupies entire buckets (`lo == hi`), which is what lets
/// [`Histogram::eq_fraction`] see skew that a plain `1/NDV` estimate misses.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    /// Total non-null rows the histogram describes.
    total: usize,
}

impl Histogram {
    /// Build from a **sorted** slice of non-null values. Returns `None` for
    /// an empty slice.
    pub fn build(sorted: &[Value]) -> Option<Histogram> {
        if sorted.is_empty() {
            return None;
        }
        let chunk = sorted.len().div_ceil(HISTOGRAM_BUCKETS).max(1);
        let buckets = sorted
            .chunks(chunk)
            .filter_map(|c| match (c.first(), c.last()) {
                (Some(lo), Some(hi)) => {
                    Some(Bucket { lo: lo.clone(), hi: hi.clone(), count: c.len() })
                }
                _ => None, // chunks() never yields an empty chunk
            })
            .collect();
        Some(Histogram { buckets, total: sorted.len() })
    }

    /// The buckets, in value order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Fraction of the described (non-null) rows whose value is **exactly**
    /// `v`, as far as the histogram can tell: the sum of buckets pinned to
    /// `v` (`lo == hi == v`). For values that don't fill a whole bucket this
    /// returns 0 — callers combine it with a uniform `1/NDV` floor.
    pub fn eq_fraction(&self, v: &Value) -> f64 {
        let pinned: usize =
            self.buckets.iter().filter(|b| b.lo == *v && b.hi == *v).map(|b| b.count).sum();
        pinned as f64 / self.total as f64
    }

    /// Total fraction of described rows sitting in pinned buckets
    /// (`lo == hi`), plus the number of distinct values doing the pinning.
    /// This is the histogram's implicit most-common-values set: the
    /// equality estimator spreads the *remaining* mass over the remaining
    /// distinct values.
    pub fn pinned_mass(&self) -> (f64, usize) {
        let mut count = 0usize;
        let mut values = 0usize;
        let mut prev: Option<&Value> = None;
        for b in &self.buckets {
            if b.lo == b.hi {
                count += b.count;
                if prev != Some(&b.lo) {
                    values += 1;
                    prev = Some(&b.lo);
                }
            }
        }
        (count as f64 / self.total as f64, values)
    }

    /// Fraction of the described (non-null) rows with value `< v`
    /// (`inclusive = false`) or `<= v` (`inclusive = true`).
    ///
    /// Full buckets below `v` count whole; the bucket containing `v` is
    /// credited by linear interpolation when its bounds are numeric, or half
    /// its count otherwise.
    pub fn fraction_below(&self, v: &Value, inclusive: bool) -> f64 {
        let mut hit = 0.0;
        for b in &self.buckets {
            if b.hi < *v || (inclusive && b.hi == *v) {
                hit += b.count as f64;
            } else if b.lo < *v || (inclusive && b.lo == *v) {
                // v splits this bucket.
                hit += b.count as f64 * partial_credit(&b.lo, &b.hi, v);
            }
        }
        (hit / self.total as f64).clamp(0.0, 1.0)
    }
}

/// How much of a bucket `[lo, hi]` lies below a splitting value `v`: linear
/// interpolation for numeric bounds, one half otherwise.
fn partial_credit(lo: &Value, hi: &Value, v: &Value) -> f64 {
    match (lo.as_f64(), hi.as_f64(), v.as_f64()) {
        (Some(lo), Some(hi), Some(v)) if hi > lo => ((v - lo) / (hi - lo)).clamp(0.0, 1.0),
        _ => 0.5,
    }
}

/// Statistics for one column, over a snapshot of `rows` table rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Distinct non-null values.
    pub distinct: usize,
    /// Null count.
    pub nulls: usize,
    /// Non-null count (`rows - nulls` at collection time).
    pub non_null: usize,
    /// Smallest non-null value, if any.
    pub min: Option<Value>,
    /// Largest non-null value, if any.
    pub max: Option<Value>,
    /// Equi-depth histogram over the non-null values, if any.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Collect stats for one column given its (unsorted) values.
    fn collect(mut values: Vec<Value>) -> ColumnStats {
        let total = values.len();
        values.retain(|v| !v.is_null());
        let nulls = total - values.len();
        values.sort();
        let distinct = count_distinct_sorted(&values);
        ColumnStats {
            distinct,
            nulls,
            non_null: values.len(),
            min: values.first().cloned(),
            max: values.last().cloned(),
            histogram: Histogram::build(&values),
        }
    }

    /// Fraction of the column's NULLs among all rows of the snapshot.
    pub fn null_fraction(&self) -> f64 {
        let rows = self.nulls + self.non_null;
        if rows == 0 {
            0.0
        } else {
            self.nulls as f64 / rows as f64
        }
    }

    /// Estimated selectivity of `column = v` over all rows (NULLs never
    /// match). The histogram's pinned buckets act as a most-common-values
    /// set: a value that pins buckets is credited its pinned mass (with a
    /// uniform `1/NDV` floor against under-pinning at bucket boundaries);
    /// a value that pins nothing gets the *residual* mass spread over the
    /// non-pinned distinct values — so rare values in a skewed, low-NDV
    /// column are not inflated to `1/NDV`.
    pub fn eq_selectivity(&self, v: &Value) -> f64 {
        if v.is_null() || self.non_null == 0 {
            return 0.0;
        }
        if let (Some(min), Some(max)) = (&self.min, &self.max) {
            if v < min || v > max {
                return 0.0;
            }
        }
        let non_null_frac = 1.0 - self.null_fraction();
        let uniform = 1.0 / self.distinct.max(1) as f64;
        let frac = match &self.histogram {
            Some(h) => {
                let pinned = h.eq_fraction(v);
                if pinned > 0.0 {
                    pinned.max(uniform)
                } else {
                    let (pinned_total, pinned_values) = h.pinned_mass();
                    let rest = (self.distinct.saturating_sub(pinned_values)).max(1);
                    ((1.0 - pinned_total) / rest as f64).max(0.0)
                }
            }
            None => uniform,
        };
        (frac * non_null_frac).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `column < v` (or `<=` when `inclusive`) over
    /// all rows; NULLs never match.
    pub fn lt_selectivity(&self, v: &Value, inclusive: bool) -> f64 {
        if v.is_null() || self.non_null == 0 {
            return 0.0;
        }
        let non_null_frac = 1.0 - self.null_fraction();
        match &self.histogram {
            Some(h) => h.fraction_below(v, inclusive) * non_null_frac,
            None => non_null_frac / 3.0,
        }
    }

    /// Estimated selectivity of `column > v` (or `>=` when `inclusive`) over
    /// all rows; NULLs never match.
    pub fn gt_selectivity(&self, v: &Value, inclusive: bool) -> f64 {
        if v.is_null() || self.non_null == 0 {
            return 0.0;
        }
        let non_null_frac = 1.0 - self.null_fraction();
        // > v ≡ not (<= v), within the non-null population.
        match &self.histogram {
            Some(h) => (1.0 - h.fraction_below(v, !inclusive)) * non_null_frac,
            None => non_null_frac / 3.0,
        }
    }
}

fn count_distinct_sorted(sorted: &[Value]) -> usize {
    let mut n = 0;
    let mut prev: Option<&Value> = None;
    for v in sorted {
        if prev != Some(v) {
            n += 1;
            prev = Some(v);
        }
    }
    n
}

/// Statistics for one table: the snapshot row count plus per-column stats in
/// schema column order.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Rows at collection time.
    pub rows: usize,
    /// One entry per schema column.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect statistics over a materialized snapshot of a table's rows.
    /// `arity` is the schema arity (used when `rows` is empty).
    pub fn collect(rows: &[Row], arity: usize) -> TableStats {
        let columns = (0..arity)
            .map(|c| ColumnStats::collect(rows.iter().map(|r| r[c].clone()).collect()))
            .collect();
        TableStats { rows: rows.len(), columns }
    }

    /// Stats for column `c`, if in range.
    pub fn column(&self, c: usize) -> Option<&ColumnStats> {
        self.columns.get(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn empty_table_stats() {
        let s = TableStats::collect(&[], 2);
        assert_eq!(s.rows, 0);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.columns[0].distinct, 0);
        assert!(s.columns[0].histogram.is_none());
        assert_eq!(s.columns[0].eq_selectivity(&Value::Int(1)), 0.0);
    }

    #[test]
    fn basic_column_stats() {
        let rows: Vec<Row> =
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(2)], vec![Value::Null]];
        let s = TableStats::collect(&rows, 1);
        let c = &s.columns[0];
        assert_eq!((c.distinct, c.nulls, c.non_null), (2, 1, 3));
        assert_eq!(c.min, Some(Value::Int(1)));
        assert_eq!(c.max, Some(Value::Int(2)));
        assert!((c.null_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn equi_depth_histogram_shape() {
        // 160 values 0..160: 16 buckets of 10.
        let vals = ints(&(0..160).collect::<Vec<_>>());
        let h = Histogram::build(&vals).unwrap();
        assert_eq!(h.buckets().len(), HISTOGRAM_BUCKETS);
        assert!(h.buckets().iter().all(|b| b.count == 10));
    }

    #[test]
    fn histogram_sees_skew() {
        // 900 copies of 7, 100 distinct others: the value 7 pins most buckets.
        let mut vals = vec![7i64; 900];
        vals.extend(1000..1100);
        let mut vals = ints(&vals);
        vals.sort();
        let h = Histogram::build(&vals).unwrap();
        let skew = h.eq_fraction(&Value::Int(7));
        assert!(skew > 0.8, "skewed value should dominate buckets, got {skew}");
        assert_eq!(h.eq_fraction(&Value::Int(1005)), 0.0, "rare value pins no bucket");
    }

    #[test]
    fn eq_selectivity_skew_vs_rare() {
        let mut vals = vec![7i64; 900];
        vals.extend(1000..1100);
        let rows: Vec<Row> = vals.into_iter().map(|i| vec![Value::Int(i)]).collect();
        let s = TableStats::collect(&rows, 1);
        let c = &s.columns[0];
        let common = c.eq_selectivity(&Value::Int(7));
        let rare = c.eq_selectivity(&Value::Int(1005));
        assert!(common > 0.8, "common: {common}");
        // Rare value gets the residual (non-pinned) mass spread over the
        // 100 non-pinned distinct values — well under the uniform 1/101.
        assert!(rare > 0.0 && rare < 1.0 / 101.0, "rare: {rare}");
        assert_eq!(c.eq_selectivity(&Value::Int(99_999)), 0.0, "out of [min, max]");
        assert_eq!(c.eq_selectivity(&Value::Null), 0.0, "= NULL never matches");
    }

    #[test]
    fn range_selectivity_uniform() {
        let rows: Vec<Row> = (0..1000).map(|i| vec![Value::Int(i)]).collect();
        let s = TableStats::collect(&rows, 1);
        let c = &s.columns[0];
        let half = c.lt_selectivity(&Value::Int(500), false);
        assert!((half - 0.5).abs() < 0.05, "x < 500 over 0..1000 ≈ 0.5, got {half}");
        let q = c.gt_selectivity(&Value::Int(750), false);
        assert!((q - 0.25).abs() < 0.05, "x > 750 over 0..1000 ≈ 0.25, got {q}");
        assert!(c.lt_selectivity(&Value::Int(-5), false) < 0.01);
        assert!(c.gt_selectivity(&Value::Int(5000), true) < 0.01);
    }

    #[test]
    fn range_selectivity_discounts_nulls() {
        let mut rows: Vec<Row> = (0..500).map(|i| vec![Value::Int(i)]).collect();
        rows.extend((0..500).map(|_| vec![Value::Null]));
        let s = TableStats::collect(&rows, 1);
        let c = &s.columns[0];
        // Half the rows are NULL; `< 250` matches a quarter of all rows.
        let sel = c.lt_selectivity(&Value::Int(250), false);
        assert!((sel - 0.25).abs() < 0.05, "got {sel}");
    }

    #[test]
    fn string_histogram_uses_half_bucket_credit() {
        // Strings have no numeric interpolation; just check bounds sanity.
        let rows: Vec<Row> = ('a'..='z').map(|ch| vec![Value::str(ch.to_string())]).collect();
        let s = TableStats::collect(&rows, 1);
        let c = &s.columns[0];
        let below = c.lt_selectivity(&Value::str("m"), false);
        assert!(below > 0.0 && below < 1.0);
    }
}
