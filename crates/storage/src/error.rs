//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    UnknownTable(String),
    /// No column with this name exists in the referenced table.
    UnknownColumn { table: String, column: String },
    /// A row's arity does not match the table schema.
    ArityMismatch { table: String, expected: usize, got: usize },
    /// A value's type does not match the column type.
    TypeMismatch { table: String, column: String, expected: String, got: String },
    /// A NULL was inserted into a non-nullable column.
    NullViolation { table: String, column: String },
    /// A row violates a uniqueness constraint (primary key).
    DuplicateKey { table: String },
    /// A foreign-key declaration references a missing table or column.
    InvalidForeignKey(String),
    /// A row failed to decode from its page representation.
    Corrupt(String),
    /// A filesystem operation failed (WAL append/sync, snapshot install).
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(t) => write!(f, "table `{t}` already exists"),
            StorageError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StorageError::ArityMismatch { table, expected, got } => {
                write!(f, "row arity mismatch in `{table}`: expected {expected} values, got {got}")
            }
            StorageError::TypeMismatch { table, column, expected, got } => {
                write!(f, "type mismatch for `{table}.{column}`: expected {expected}, got {got}")
            }
            StorageError::NullViolation { table, column } => {
                write!(f, "NULL in non-nullable column `{table}.{column}`")
            }
            StorageError::DuplicateKey { table } => {
                write!(f, "duplicate primary key in table `{table}`")
            }
            StorageError::InvalidForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::Io(msg) => write!(f, "storage i/o failed: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias used across the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;
