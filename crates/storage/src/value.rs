//! The runtime value model shared by the storage layer, the SQL engine and
//! the personalization layer.
//!
//! Values form a single dynamically-typed domain with a *total* order (needed
//! for sorting and grouping, including over `NULL` and mixed numeric types)
//! and a hash that is consistent with equality (needed for hash joins, hash
//! aggregation and hash indexes). Numeric comparison is cross-type: an `Int`
//! and a `Float` holding the same mathematical number compare (and hash)
//! equal, mirroring SQL numeric semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string. Dates in the movies schema are stored as ISO strings;
    /// the paper's framework only ever compares them for equality.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A dynamically-typed runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value; equal to itself for
    /// grouping purposes (three-valued logic lives in the expression
    /// evaluator, not here).
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// A convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The runtime type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value may be stored in a column of type `ty`.
    ///
    /// An `Int` is accepted by a `Float` column (lossless widening handled at
    /// insert time); everything else must match exactly.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Str(_), DataType::Str)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// Coerce the value to the given column type (widening `Int` → `Float`).
    /// Callers must have checked [`Value::conforms_to`] first.
    pub fn coerce_to(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Float) => Value::Float(i as f64),
            (v, _) => v,
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different types: NULL < BOOL < numeric < TEXT.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Cross-type numeric comparison via total_cmp on f64. Exactness
            // is not a concern at the magnitudes this engine stores (ids fit
            // in 2^53), and total_cmp keeps the order total even with NaN.
            (Int(a), Float(b)) => fcmp(*a as f64, *b),
            (Float(a), Int(b)) => fcmp(*a, *b as f64),
            (Float(a), Float(b)) => fcmp(*a, *b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

/// Total float comparison with `-0.0 == 0.0` (total_cmp alone would order
/// them, breaking consistency with the hash). Public so the engine's batched
/// comparison kernels order floats exactly like [`Value::cmp`].
pub fn total_fcmp(a: f64, b: f64) -> Ordering {
    fcmp(a, b)
}

fn fcmp(a: f64, b: f64) -> Ordering {
    let norm = |x: f64| if x == 0.0 { 0.0 } else { x };
    norm(a).total_cmp(&norm(b))
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Float must hash identically when they compare equal, so
            // both hash through the f64 bit pattern (normalizing -0.0).
            Value::Int(i) => {
                state.write_u8(2);
                let f = *i as f64;
                state.write_u64(if f == 0.0 { 0 } else { f.to_bits() });
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(if *f == 0.0 { 0 } else { f.to_bits() });
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn zero_hashes_consistently() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(hash_of(&Value::Int(0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn total_order_across_types() {
        let mut vs = vec![
            Value::str("abc"),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(5),
                Value::str("abc"),
            ]
        );
    }

    #[test]
    fn conformance_and_coercion() {
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Str));
        assert_eq!(Value::Int(2).coerce_to(DataType::Float), Value::Float(2.0));
    }

    #[test]
    fn display_round_trips_visibly() {
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Float(1.5).data_type(), Some(DataType::Float));
    }
}
