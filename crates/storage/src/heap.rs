//! A heap file: an append-oriented collection of slotted pages.

use crate::error::{Result, StorageError};
use crate::page::{check_row_fits, Page, RowId};
use crate::row::{encode_row_vec, Row};
use crate::value::Value;

/// A heap of pages storing encoded rows.
#[derive(Default)]
pub struct Heap {
    pages: Vec<Page>,
    live_rows: usize,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live_rows
    }

    /// True if no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Insert a row, appending a new page if the last one is full.
    pub fn insert(&mut self, row: &[Value]) -> Result<RowId> {
        let encoded = encode_row_vec(row);
        check_row_fits(encoded.len())?;
        // Append-only fill discipline: try the last page only. Scanning all
        // pages for holes would make bulk loads quadratic.
        if let Some(last) = self.pages.last_mut() {
            if let Some(slot) = last.insert(&encoded) {
                self.live_rows += 1;
                return Ok(RowId { page: (self.pages.len() - 1) as u32, slot });
            }
        }
        let mut page = Page::new();
        let slot = page.insert(&encoded).ok_or_else(|| {
            StorageError::Corrupt("fresh page rejected a size-checked row".into())
        })?;
        self.pages.push(page);
        self.live_rows += 1;
        Ok(RowId { page: (self.pages.len() - 1) as u32, slot })
    }

    /// Fetch a row by id. `None` for tombstones and out-of-range ids.
    pub fn get(&self, id: RowId) -> Option<Result<Row>> {
        self.pages.get(id.page as usize)?.get(id.slot)
    }

    /// Delete a row by id. Returns whether a live row was removed.
    pub fn delete(&mut self, id: RowId) -> bool {
        let Some(page) = self.pages.get_mut(id.page as usize) else {
            return false;
        };
        let deleted = page.delete(id.slot);
        if deleted {
            self.live_rows -= 1;
        }
        deleted
    }

    /// The `storage.scan` failpoint: when armed, a scan yields one injected
    /// corrupt-row error before any real row, exercising the executor's
    /// error path (including inside parallel scan workers).
    fn scan_failpoint() -> Option<(RowId, Result<Row>)> {
        pqp_obs::failpoint::fire("storage.scan").map(|msg| {
            let err = StorageError::Corrupt(format!("injected: {msg}"));
            (RowId { page: u32::MAX, slot: u16::MAX }, Err(err))
        })
    }

    /// Iterate over all live rows with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, Result<Row>)> + '_ {
        Self::scan_failpoint().into_iter().chain(self.pages.iter().enumerate().flat_map(
            |(pno, page)| {
                page.iter().map(move |(slot, row)| (RowId { page: pno as u32, slot }, row))
            },
        ))
    }

    /// Iterate over the live rows of partition `part` of `parts`.
    ///
    /// Partitions are contiguous page ranges (the morsel unit is a page), so
    /// concatenating partitions `0..parts` in order yields exactly the
    /// [`Heap::iter`] order — the property the parallel executor relies on
    /// to keep partitioned scans deterministic. `parts` may exceed the page
    /// count; surplus partitions are empty.
    pub fn iter_partition(
        &self,
        part: usize,
        parts: usize,
    ) -> impl Iterator<Item = (RowId, Result<Row>)> + '_ {
        let (start, end) = self.partition_bounds(part, parts);
        Self::scan_failpoint().into_iter().chain(
            self.pages[start..end].iter().enumerate().flat_map(move |(off, page)| {
                page.iter()
                    .map(move |(slot, row)| (RowId { page: (start + off) as u32, slot }, row))
            }),
        )
    }

    /// Iterate over all live rows as raw encoded bytes (same order as
    /// [`Heap::iter`]). The batched executor decodes these straight into
    /// column vectors, skipping the per-row `Vec<Value>` allocation. The
    /// `storage.scan` failpoint fires here exactly as it does in
    /// [`Heap::iter`].
    pub fn iter_raw(&self) -> impl Iterator<Item = Result<&[u8]>> + '_ {
        Self::raw_failpoint()
            .into_iter()
            .chain(self.pages.iter().flat_map(|page| page.iter_raw().map(Ok)))
    }

    /// Raw-bytes variant of [`Heap::iter_partition`]: the live rows of
    /// partition `part` of `parts` as encoded bytes, in the same order.
    /// Concatenating partitions `0..parts` yields the [`Heap::iter_raw`]
    /// order.
    pub fn iter_raw_partition(
        &self,
        part: usize,
        parts: usize,
    ) -> impl Iterator<Item = Result<&[u8]>> + '_ {
        let (start, end) = self.partition_bounds(part, parts);
        Self::raw_failpoint()
            .into_iter()
            .chain(self.pages[start..end].iter().flat_map(|page| page.iter_raw().map(Ok)))
    }

    /// The `storage.scan` failpoint for the raw iterators (same site and
    /// semantics as [`Heap::scan_failpoint`], different item type).
    fn raw_failpoint<'a>() -> Option<Result<&'a [u8]>> {
        pqp_obs::failpoint::fire("storage.scan")
            .map(|msg| Err(StorageError::Corrupt(format!("injected: {msg}"))))
    }

    /// The page range `[start, end)` of partition `part` of `parts`: a
    /// balanced contiguous split (the first `n % parts` partitions get one
    /// extra page).
    fn partition_bounds(&self, part: usize, parts: usize) -> (usize, usize) {
        let parts = parts.max(1);
        assert!(part < parts, "partition {part} out of range for {parts} partitions");
        let n = self.pages.len();
        let base = n / parts;
        let extra = n % parts;
        let start = part * base + part.min(extra);
        let len = base + usize::from(part < extra);
        (start, start + len)
    }

    /// Materialize all live rows, failing on the first corrupt row.
    pub fn scan(&self) -> Result<Vec<Row>> {
        self.iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_across_pages() {
        let mut h = Heap::new();
        let row = vec![Value::str("y".repeat(1000))];
        let mut ids = Vec::new();
        for _ in 0..50 {
            ids.push(h.insert(&row).unwrap());
        }
        assert_eq!(h.len(), 50);
        assert!(h.page_count() > 1, "1000-byte rows must spill to multiple pages");
        for id in &ids {
            assert_eq!(h.get(*id).unwrap().unwrap(), row);
        }
    }

    #[test]
    fn scan_returns_insertion_order() {
        let mut h = Heap::new();
        for i in 0..100 {
            h.insert(&[Value::Int(i)]).unwrap();
        }
        let rows = h.scan().unwrap();
        assert_eq!(rows.len(), 100);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn delete_reduces_len_and_scan() {
        let mut h = Heap::new();
        let a = h.insert(&[Value::Int(1)]).unwrap();
        let b = h.insert(&[Value::Int(2)]).unwrap();
        assert!(h.delete(a));
        assert!(!h.delete(a));
        assert_eq!(h.len(), 1);
        assert_eq!(h.scan().unwrap(), vec![vec![Value::Int(2)]]);
        assert!(h.get(a).is_none());
        assert!(h.get(b).is_some());
    }

    #[test]
    fn oversized_row_is_rejected() {
        let mut h = Heap::new();
        let row = vec![Value::str("z".repeat(20_000))];
        assert!(h.insert(&row).is_err());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn partitions_concatenate_to_full_iteration_order() {
        let mut h = Heap::new();
        // Wide rows so the heap spans many pages.
        for i in 0..400 {
            h.insert(&[Value::Int(i), Value::str("x".repeat(100))]).unwrap();
        }
        assert!(h.page_count() >= 4, "need a multi-page heap to partition");
        let full: Vec<Row> = h.scan().unwrap();
        for parts in [1, 2, 3, 5, 8, h.page_count(), h.page_count() + 7] {
            let mut merged = Vec::new();
            for p in 0..parts {
                for (_, row) in h.iter_partition(p, parts) {
                    merged.push(row.unwrap());
                }
            }
            assert_eq!(merged, full, "partition concat must equal iter() for parts={parts}");
        }
    }

    #[test]
    fn partitions_of_empty_heap_are_empty() {
        let h = Heap::new();
        for p in 0..4 {
            assert_eq!(h.iter_partition(p, 4).count(), 0);
        }
    }

    #[test]
    fn partitions_skip_tombstones() {
        let mut h = Heap::new();
        let mut ids = Vec::new();
        for i in 0..200 {
            ids.push(h.insert(&[Value::Int(i), Value::str("y".repeat(120))]).unwrap());
        }
        for id in ids.iter().step_by(3) {
            assert!(h.delete(*id));
        }
        let full: Vec<Row> = h.scan().unwrap();
        let merged: Vec<Row> =
            (0..4).flat_map(|p| h.iter_partition(p, 4).map(|(_, r)| r.unwrap())).collect();
        assert_eq!(merged, full);
    }

    #[test]
    fn get_out_of_range() {
        let h = Heap::new();
        assert!(h.get(RowId { page: 0, slot: 0 }).is_none());
        assert!(h.get(RowId { page: 9, slot: 3 }).is_none());
    }
}
