//! # pqp-storage
//!
//! The storage substrate of the `pqp` workspace: an in-memory relational
//! store with a value model, table schemas carrying key/foreign-key metadata,
//! slotted pages, heap tables, hash indexes and a catalog.
//!
//! The paper's prototype ran on Oracle 9i; this crate (together with
//! `pqp-engine`) is the from-scratch substitute. Beyond plain storage it
//! exposes the one piece of metadata the personalization model needs from the
//! database: the **schema graph** with per-direction join *cardinalities*
//! ([`Catalog::schema_joins`]), which drive conflict detection and
//! tuple-variable allocation in `pqp-core`.

pub mod catalog;
pub mod error;
pub mod heap;
pub mod index;
pub mod page;
pub mod row;
pub mod schema;
pub mod shard;
pub mod sync;
pub mod table;
pub mod value;

pub use catalog::{Catalog, SchemaJoin, TableRef};
pub use error::{Result, StorageError};
pub use heap::Heap;
pub use index::HashIndex;
pub use page::{Page, RowId, PAGE_SIZE};
pub use row::{decode_row, encode_row, encode_row_vec, Row};
pub use schema::{Cardinality, ColumnDef, ForeignKey, TableSchema};
pub use shard::ShardedMap;
pub use table::Table;
pub use value::{DataType, Value};
