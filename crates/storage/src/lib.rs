//! # pqp-storage
//!
//! The storage substrate of the `pqp` workspace: an in-memory relational
//! store with a value model, table schemas carrying key/foreign-key metadata,
//! slotted pages, heap tables, hash indexes and a catalog.
//!
//! The paper's prototype ran on Oracle 9i; this crate (together with
//! `pqp-engine`) is the from-scratch substitute. Beyond plain storage it
//! exposes the one piece of metadata the personalization model needs from the
//! database: the **schema graph** with per-direction join *cardinalities*
//! ([`Catalog::schema_joins`]), which drive conflict detection and
//! tuple-variable allocation in `pqp-core`.
//!
//! ```
//! use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .create_table(
//!         TableSchema::new(
//!             "GENRE",
//!             vec![
//!                 ColumnDef::new("mid", DataType::Int),
//!                 ColumnDef::new("genre", DataType::Str),
//!             ],
//!         )
//!         .with_primary_key(&["mid", "genre"]),
//!     )
//!     .unwrap();
//!
//! let genre = catalog.table("GENRE").unwrap();
//! {
//!     let mut genre = genre.write();
//!     genre.insert(vec![1.into(), "comedy".into()]).unwrap();
//!     genre.insert(vec![1.into(), "drama".into()]).unwrap();
//!     // The primary key is enforced at insert time.
//!     assert!(genre.insert(vec![1.into(), "comedy".into()]).is_err());
//! }
//!
//! let genre = genre.read();
//! assert_eq!(genre.len(), 2);
//! assert_eq!(genre.scan().unwrap()[0], vec![Value::Int(1), Value::str("comedy")]);
//! ```

pub mod batch;
pub mod catalog;
pub mod datum;
pub mod error;
pub mod heap;
pub mod index;
pub mod page;
pub mod row;
pub mod schema;
pub mod shard;
pub mod stats;
pub mod sync;
pub mod table;
pub mod value;
pub mod wal;

pub use batch::{Batch, BatchBuilder, Column, ColumnData, BATCH_SIZE};
pub use catalog::{Catalog, SchemaJoin, TableRef};
pub use datum::{datum_size, decode_datum, encode_datum, encode_key};
pub use error::{Result, StorageError};
pub use heap::Heap;
pub use index::HashIndex;
pub use page::{Page, RowId, PAGE_SIZE};
pub use row::{decode_row, encode_row, encode_row_vec, Row};
pub use schema::{Cardinality, ColumnDef, ForeignKey, TableSchema};
pub use shard::ShardedMap;
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::Table;
pub use value::{total_fcmp, DataType, Value};
pub use wal::{Wal, WalRecord, WalRecovery, WalSnapshot};
