//! Table schemas, key constraints and join-cardinality metadata.
//!
//! The personalization layer needs one piece of information beyond what a
//! plain schema graph offers: for every join edge, whether following it in a
//! given direction is *to-one* or *to-many* (paper §5/§6 use this both for
//! conflict detection and for tuple-variable allocation). That information is
//! derived here from primary keys, unique constraints and foreign keys.

use crate::error::{Result, StorageError};
use crate::value::DataType;
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef { name: name.into(), ty, nullable: false }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef { name: name.into(), ty, nullable: true }
    }
}

/// A foreign-key constraint: `columns` of this table reference
/// `parent_columns` of `parent_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub columns: Vec<String>,
    pub parent_table: String,
    pub parent_columns: Vec<String>,
}

/// Cardinality of following a join edge in a particular direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// Each row on the near side matches at most one row on the far side
    /// (the far-side join columns are a key).
    ToOne,
    /// Each row on the near side may match many rows on the far side.
    ToMany,
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cardinality::ToOne => write!(f, "to-one"),
            Cardinality::ToMany => write!(f, "to-many"),
        }
    }
}

/// Schema of a single table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Column positions forming the primary key (may be empty).
    pub primary_key: Vec<usize>,
    /// Extra unique constraints, each a set of column positions.
    pub unique: Vec<Vec<usize>>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Create a schema with the given columns and no keys.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            unique: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Builder-style: set the primary key by column name.
    pub fn with_primary_key(mut self, cols: &[&str]) -> TableSchema {
        self.primary_key = cols
            .iter()
            .map(|c| {
                self.column_index(c).unwrap_or_else(|| panic!("no column `{c}` in `{}`", self.name))
            })
            .collect();
        self
    }

    /// Builder-style: add a unique constraint by column name.
    pub fn with_unique(mut self, cols: &[&str]) -> TableSchema {
        let idx = cols
            .iter()
            .map(|c| {
                self.column_index(c).unwrap_or_else(|| panic!("no column `{c}` in `{}`", self.name))
            })
            .collect();
        self.unique.push(idx);
        self
    }

    /// Builder-style: add a foreign key.
    pub fn with_foreign_key(
        mut self,
        cols: &[&str],
        parent: &str,
        parent_cols: &[&str],
    ) -> TableSchema {
        self.foreign_keys.push(ForeignKey {
            columns: cols.iter().map(|s| s.to_string()).collect(),
            parent_table: parent.to_string(),
            parent_columns: parent_cols.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The column definition by name, as a `Result` for caller convenience.
    pub fn column(&self, name: &str) -> Result<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i]).ok_or_else(|| {
            StorageError::UnknownColumn { table: self.name.clone(), column: name.to_string() }
        })
    }

    /// Whether the given set of column positions contains a key (the primary
    /// key or a unique constraint): if yes, at most one row matches any
    /// assignment of those columns.
    pub fn is_key(&self, cols: &[usize]) -> bool {
        let covers = |key: &[usize]| !key.is_empty() && key.iter().all(|k| cols.contains(k));
        covers(&self.primary_key) || self.unique.iter().any(|u| covers(u))
    }

    /// Whether a single named column is a key by itself.
    pub fn is_key_column(&self, name: &str) -> bool {
        match self.column_index(name) {
            Some(i) => self.is_key(&[i]),
            None => false,
        }
    }

    /// Cardinality of joining **into** this table on the named column: to-one
    /// if the column is a key of this table, to-many otherwise.
    pub fn join_cardinality_into(&self, column: &str) -> Cardinality {
        if self.is_key_column(column) {
            Cardinality::ToOne
        } else {
            Cardinality::ToMany
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie() -> TableSchema {
        TableSchema::new(
            "MOVIE",
            vec![
                ColumnDef::new("mid", DataType::Int),
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("year", DataType::Int),
            ],
        )
        .with_primary_key(&["mid"])
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let m = movie();
        assert_eq!(m.column_index("MID"), Some(0));
        assert_eq!(m.column_index("Title"), Some(1));
        assert_eq!(m.column_index("nope"), None);
        assert!(m.column("nope").is_err());
    }

    #[test]
    fn key_detection() {
        let m = movie();
        assert!(m.is_key(&[0]));
        assert!(m.is_key(&[0, 1]));
        assert!(!m.is_key(&[1]));
        assert!(m.is_key_column("mid"));
        assert!(!m.is_key_column("title"));
    }

    #[test]
    fn unique_constraint_counts_as_key() {
        let s = TableSchema::new(
            "T",
            vec![ColumnDef::new("a", DataType::Int), ColumnDef::new("b", DataType::Int)],
        )
        .with_unique(&["b"]);
        assert!(s.is_key(&[1]));
        assert!(!s.is_key(&[0]));
    }

    #[test]
    fn join_cardinality() {
        let m = movie();
        assert_eq!(m.join_cardinality_into("mid"), Cardinality::ToOne);
        assert_eq!(m.join_cardinality_into("title"), Cardinality::ToMany);
    }

    #[test]
    fn empty_key_is_not_a_key() {
        let s = TableSchema::new("T", vec![ColumnDef::new("a", DataType::Int)]);
        assert!(!s.is_key(&[0]));
    }

    #[test]
    fn foreign_key_builder() {
        let s = TableSchema::new("PLAY", vec![ColumnDef::new("mid", DataType::Int)])
            .with_foreign_key(&["mid"], "MOVIE", &["mid"]);
        assert_eq!(s.foreign_keys.len(), 1);
        assert_eq!(s.foreign_keys[0].parent_table, "MOVIE");
    }
}
