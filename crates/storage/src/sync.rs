//! A thin wrapper over [`std::sync::RwLock`] with the `parking_lot` calling
//! convention: `.read()` / `.write()` return guards directly instead of a
//! `Result`. Poisoning is deliberately ignored — a panic mid-write in this
//! in-memory store leaves data no more suspect than the panic itself, and
//! every caller in the workspace treats the lock as infallible.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards are infallible to acquire.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn survives_a_poisoning_panic() {
        let lock = Arc::new(RwLock::new(7));
        let held = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = held.write();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: later readers still get through.
        assert_eq!(*lock.read(), 7);
    }
}
