//! Compact, order-preserving datum encoding.
//!
//! Every [`Value`] encodes to a type-tagged byte sequence with two
//! properties the rest of the workspace builds on:
//!
//! 1. **Self-delimiting**: a datum's length is recoverable from its own
//!    bytes, so rows are plain concatenations of datums with no offset
//!    table, and composite keys are plain concatenations of column datums.
//! 2. **Memcmp-comparable within a type class**: for two values `a`, `b`
//!    drawn from the same type class (both `Int`, both `Float`, both `Str`,
//!    both `Bool`, or either `NULL`), `memcmp(encode(a), encode(b))` equals
//!    `a.cmp(b)`. Byte comparison of encoded rows therefore sorts like
//!    column-wise value comparison over any schema-typed prefix.
//!
//! The per-type grammar (first byte is the tag; tags sort like
//! `Value`'s type rank — NULL < BOOL < numeric < TEXT):
//!
//! | value | encoding |
//! |---|---|
//! | `NULL` | `0x00` |
//! | `FALSE` / `TRUE` | `0x01` / `0x02` (value folded into the tag) |
//! | `Int(i)` | `0x03` then `(i as u64) ^ 1<<63` big-endian — flipping the sign bit maps `i64::MIN..=i64::MAX` onto `0..=u64::MAX`, so unsigned byte order equals signed order |
//! | `Float(f)` | `0x04` then the sign-flip trick on the IEEE-754 bits: negative floats have **all** bits inverted (descending magnitude → ascending order), non-negative floats have only the sign bit set; the result orders exactly like `f64::total_cmp`. `-0.0` is normalized to `0.0` before encoding, matching the engine's `-0.0 == 0.0` comparison and hash semantics |
//! | `Str(s)` | `0x05` then the UTF-8 bytes with `0x00` escaped as `0x00 0xFF`, terminated by `0x00 0x00` — the terminator sorts below every continuation byte, so prefixes sort first and embedded NULs keep their order |
//!
//! **Deliberate limit**: `Int` and `Float` carry different tags, so *mixed*
//! numeric comparisons are not memcmp-faithful (every `Int` sorts below
//! every `Float`). They cannot be: `Value` treats `Int(5)` and
//! `Float(5.0)` as equal, and a round-trippable encoding cannot map two
//! distinguishable values to identical bytes. This never bites in
//! practice because encoded comparisons happen over *schema-typed*
//! columns — an `Int` datum is never stored in a `FLOAT` column (inserts
//! widen) and vice versa. See DESIGN.md §15 for the full argument.

use crate::error::{Result, StorageError};
use crate::value::Value;

/// Tag byte for `NULL`. Tags are public so the batched decoders in
/// [`crate::batch`] can dispatch without re-deriving the grammar.
pub const TAG_NULL: u8 = 0x00;
/// Tag byte for `FALSE` (the boolean is folded into the tag).
pub const TAG_FALSE: u8 = 0x01;
/// Tag byte for `TRUE`.
pub const TAG_TRUE: u8 = 0x02;
/// Tag byte for a 64-bit signed integer.
pub const TAG_INT: u8 = 0x03;
/// Tag byte for a 64-bit IEEE-754 float.
pub const TAG_FLOAT: u8 = 0x04;
/// Tag byte for a UTF-8 string.
pub const TAG_STR: u8 = 0x05;

const SIGN: u64 = 1 << 63;

/// Map an `i64` to a `u64` whose unsigned byte order equals signed order.
#[inline]
pub fn int_order_key(i: i64) -> u64 {
    (i as u64) ^ SIGN
}

/// Invert [`int_order_key`].
#[inline]
pub fn int_from_order_key(k: u64) -> i64 {
    (k ^ SIGN) as i64
}

/// Map an `f64` to a `u64` whose unsigned byte order equals
/// `f64::total_cmp` order (`-0.0` normalized to `0.0` first).
#[inline]
pub fn float_order_key(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    let bits = f.to_bits();
    if bits & SIGN != 0 {
        !bits
    } else {
        bits | SIGN
    }
}

/// Invert [`float_order_key`].
#[inline]
pub fn float_from_order_key(k: u64) -> f64 {
    let bits = if k & SIGN != 0 { k & !SIGN } else { !k };
    f64::from_bits(bits)
}

/// Append the encoding of one datum to `buf`.
pub fn encode_datum(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(false) => buf.push(TAG_FALSE),
        Value::Bool(true) => buf.push(TAG_TRUE),
        Value::Int(i) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&int_order_key(*i).to_be_bytes());
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            buf.extend_from_slice(&float_order_key(*f).to_be_bytes());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            encode_str_body(s.as_bytes(), buf);
        }
    }
}

/// Append the escaped + terminated body of a string datum (everything after
/// the tag byte).
fn encode_str_body(bytes: &[u8], buf: &mut Vec<u8>) {
    for &b in bytes {
        buf.push(b);
        if b == 0x00 {
            buf.push(0xFF);
        }
    }
    buf.extend_from_slice(&[0x00, 0x00]);
}

/// Exact encoded size of one datum in bytes.
pub fn datum_size(v: &Value) -> usize {
    match v {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Str(s) => 3 + s.len() + s.as_bytes().iter().filter(|&&b| b == 0x00).count(),
    }
}

/// Read the 8-byte big-endian order key at the front of `data`, failing
/// with [`StorageError::Corrupt`] if the input is truncated.
pub(crate) fn take_u64(data: &[u8], what: &str) -> Result<u64> {
    let bytes: [u8; 8] = data
        .get(..8)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| StorageError::Corrupt(format!("truncated {what}")))?;
    Ok(u64::from_be_bytes(bytes))
}

/// Decode one datum from the front of `data`. Returns the value and the
/// number of bytes consumed. Every read is bounds-checked; malformed input
/// surfaces as [`StorageError::Corrupt`].
pub fn decode_datum(data: &[u8]) -> Result<(Value, usize)> {
    let Some(&tag) = data.first() else {
        return Err(StorageError::Corrupt("empty datum".into()));
    };
    match tag {
        TAG_NULL => Ok((Value::Null, 1)),
        TAG_FALSE => Ok((Value::Bool(false), 1)),
        TAG_TRUE => Ok((Value::Bool(true), 1)),
        TAG_INT => {
            let k = take_u64(&data[1..], "int datum")?;
            Ok((Value::Int(int_from_order_key(k)), 9))
        }
        TAG_FLOAT => {
            let k = take_u64(&data[1..], "float datum")?;
            Ok((Value::Float(float_from_order_key(k)), 9))
        }
        TAG_STR => {
            let (body, consumed) = split_str_body(&data[1..])?;
            let s = match body {
                StrBody::Borrowed(b) => std::str::from_utf8(b)
                    .map_err(|_| StorageError::Corrupt("invalid utf-8 in string datum".into()))?
                    .to_owned(),
                StrBody::Owned(b) => String::from_utf8(b)
                    .map_err(|_| StorageError::Corrupt("invalid utf-8 in string datum".into()))?,
            };
            Ok((Value::Str(s), 1 + consumed))
        }
        other => Err(StorageError::Corrupt(format!("unknown datum tag {other:#04x}"))),
    }
}

/// The unescaped body of a string datum: borrowed straight from the input
/// when no byte was escaped (the overwhelmingly common case), owned when
/// unescaping had to copy.
pub enum StrBody<'a> {
    /// No `0x00` appeared in the string: the input slice is the body.
    Borrowed(&'a [u8]),
    /// The body after collapsing `0x00 0xFF` escapes.
    Owned(Vec<u8>),
}

/// Split the escaped, terminated body of a string datum (input starts just
/// *after* the tag). Returns the unescaped bytes and the total number of
/// input bytes consumed, including the two-byte terminator.
pub fn split_str_body(data: &[u8]) -> Result<(StrBody<'_>, usize)> {
    let mut i = 0;
    // Fast path: scan to the first 0x00. If it starts the terminator, the
    // body is a clean borrow of everything before it.
    while i < data.len() {
        if data[i] == 0x00 {
            match data.get(i + 1) {
                Some(0x00) => return Ok((StrBody::Borrowed(&data[..i]), i + 2)),
                Some(0xFF) => break, // escaped NUL: fall through to the copying path
                _ => return Err(StorageError::Corrupt("bad escape in string datum".into())),
            }
        }
        i += 1;
    }
    if i >= data.len() {
        return Err(StorageError::Corrupt("unterminated string datum".into()));
    }
    // Copying path: at least one escaped NUL.
    let mut out = data[..i].to_vec();
    while i < data.len() {
        match data[i] {
            0x00 => match data.get(i + 1) {
                Some(0x00) => return Ok((StrBody::Owned(out), i + 2)),
                Some(0xFF) => {
                    out.push(0x00);
                    i += 2;
                }
                _ => return Err(StorageError::Corrupt("bad escape in string datum".into())),
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Err(StorageError::Corrupt("unterminated string datum".into()))
}

/// Encode a composite key: the concatenation of each value's datum. Because
/// datums are self-delimiting and memcmp-comparable within a type class,
/// two keys over the same column types compare byte-wise exactly like
/// column-wise [`Value`] comparison.
pub fn encode_key(values: &[Value], buf: &mut Vec<u8>) {
    for v in values {
        encode_datum(v, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn enc(v: &Value) -> Vec<u8> {
        let mut b = Vec::new();
        encode_datum(v, &mut b);
        assert_eq!(b.len(), datum_size(v), "datum_size must be exact for {v:?}");
        b
    }

    fn roundtrip(v: &Value) -> Value {
        let b = enc(v);
        let (back, used) = decode_datum(&b).unwrap();
        assert_eq!(used, b.len(), "decode must consume the whole datum for {v:?}");
        back
    }

    #[test]
    fn roundtrips_exactly() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.0),
            Value::Float(-3.5),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(f64::NAN),
            Value::str(""),
            Value::str("hello κόσμε"),
            Value::str("embedded\0nul\0s"),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
        // -0.0 normalizes to 0.0 (equal under Value semantics, and the
        // normalized form is what the hash uses too).
        assert_eq!(roundtrip(&Value::Float(-0.0)).as_f64().unwrap().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn memcmp_matches_value_cmp_within_type_class() {
        let ints: Vec<Value> =
            [i64::MIN, i64::MIN + 1, -1, 0, 1, 42, i64::MAX - 1, i64::MAX].map(Value::Int).into();
        let floats: Vec<Value> =
            [f64::NEG_INFINITY, -1.5, -0.0, 0.0, f64::MIN_POSITIVE, 1.0, f64::INFINITY, f64::NAN]
                .map(Value::Float)
                .into();
        let strs: Vec<Value> = ["", "a", "a\0", "a\0b", "ab", "b", "κ"].map(Value::str).into();
        let bools = vec![Value::Bool(false), Value::Bool(true)];
        for class in [ints, floats, strs, bools] {
            let mut with_null = class.clone();
            with_null.push(Value::Null);
            for a in &with_null {
                for b in &with_null {
                    assert_eq!(
                        enc(a).cmp(&enc(b)),
                        a.cmp(b),
                        "memcmp order diverged for {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn composite_keys_compare_columnwise() {
        let keys = [
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(1), Value::str("ab")],
            vec![Value::Int(2), Value::str("")],
            vec![Value::Null, Value::str("z")],
        ];
        let enc_key = |k: &[Value]| {
            let mut b = Vec::new();
            encode_key(k, &mut b);
            b
        };
        for a in &keys {
            for b in &keys {
                let expect = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| x.cmp(y))
                    .find(|o| *o != Ordering::Equal)
                    .unwrap_or(Ordering::Equal);
                assert_eq!(enc_key(a).cmp(&enc_key(b)), expect, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(decode_datum(&[]).is_err());
        assert!(decode_datum(&[0x99]).is_err(), "unknown tag");
        assert!(decode_datum(&[TAG_INT, 1, 2]).is_err(), "truncated int");
        assert!(decode_datum(&[TAG_STR, b'a']).is_err(), "unterminated string");
        assert!(decode_datum(&[TAG_STR, 0x00, 0x7F]).is_err(), "bad escape");
        assert!(decode_datum(&[TAG_STR, 0xFF, 0xFE, 0x00, 0x00]).is_err(), "invalid utf-8");
    }
}
