//! Crash-safe append-only mutation log (WAL) with CRC-per-record framing,
//! torn-tail truncation on recovery, and snapshot + replay compaction.
//!
//! The log is payload-agnostic: callers append opaque byte records (the
//! serving layer encodes profile mutations with the wire codec) and get
//! back a monotone sequence number. Durability is explicit — [`Wal::append`]
//! buffers in the OS, [`Wal::sync`] makes everything appended so far
//! durable — so callers choose their ack point.
//!
//! # On-disk layout
//!
//! A WAL directory holds two files:
//!
//! - `wal.log` — the record log. Each record is framed as
//!   `len:u32be | crc:u32be | seq:u64be | payload`, where `len` counts the
//!   `seq + payload` bytes and `crc` is the IEEE CRC-32 of those bytes.
//!   Sequence numbers start at 1 and are contiguous.
//! - `snapshot.bin` — an optional compaction point, framed as
//!   `crc:u32be | last_seq:u64be | data`, written to a temp file and
//!   atomically renamed. It captures the state after applying records
//!   `1..=last_seq`; the log then restarts at `last_seq + 1`.
//!
//! # Recovery
//!
//! [`Wal::open`] loads the snapshot (if any), then scans the log from the
//! start. The scan stops at the first frame that is short, oversized,
//! fails its CRC, or breaks sequence contiguity; everything from that
//! offset on is truncated (the torn tail of an interrupted append — or a
//! corrupted suffix, which is indistinguishable and equally untrusted).
//! Everything before the truncation point is intact and replayable. A
//! snapshot that fails its own CRC is unrecoverable state and surfaces as
//! [`StorageError::Corrupt`] — it is never silently dropped.
//!
//! # Failpoints
//!
//! `wal.append` fires before a record is written, `wal.fsync` before the
//! data sync; both surface as [`StorageError::Io`] on an `error` action,
//! and a `delay` action widens the crash window for kill-based tests.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::{Result, StorageError};

/// The record log file name inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";
/// The snapshot file name inside a WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Ceiling on a single record's framed length (seq + payload). A `len`
/// field above this is treated as corruption, not an allocation request.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of record framing before the payload: `len:u32 | crc:u32`.
const FRAME_HEADER: usize = 8;
/// Bytes of the sequence number inside the CRC-protected region.
const SEQ_BYTES: usize = 8;

// ---- CRC-32 (IEEE, reflected) ---------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 (the zlib/gzip polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---- records ---------------------------------------------------------------

/// One recovered log record: its sequence number and opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number (1-based, contiguous).
    pub seq: u64,
    /// The caller's opaque payload bytes.
    pub payload: Vec<u8>,
}

/// A loaded snapshot: the state after applying records `1..=last_seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSnapshot {
    /// The last sequence number the snapshot covers.
    pub last_seq: u64,
    /// The caller's opaque snapshot bytes.
    pub data: Vec<u8>,
}

/// What [`Wal::open`] found on disk: replay the snapshot first (if any),
/// then every record, in order.
#[derive(Debug, Clone)]
pub struct WalRecovery {
    /// The compaction point, if a snapshot was installed.
    pub snapshot: Option<WalSnapshot>,
    /// Intact records after the snapshot point, in sequence order.
    pub records: Vec<WalRecord>,
    /// Bytes dropped from the tail of the log (torn final append or a
    /// corrupted suffix). Zero on a clean shutdown.
    pub truncated_bytes: u64,
}

/// The crash-safe append-only log. One writer per directory; see the
/// module docs for the framing and recovery contract.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    /// Sequence the next append receives.
    next_seq: u64,
    /// The snapshot's `last_seq` (0 = no snapshot); the log holds
    /// `base_seq + 1 ..= last_seq()`.
    base_seq: u64,
    /// Highest sequence number known durable (covered by a completed
    /// [`Wal::sync`]). The snapshot point is always durable.
    synced_seq: u64,
    /// Current byte length of the log file.
    log_bytes: u64,
    /// Start offset of each live record: `offsets[i]` is the file offset
    /// of record `base_seq + 1 + i`, so catch-up reads seek instead of
    /// rescanning the whole log.
    offsets: Vec<u64>,
}

impl Wal {
    /// Open (or create) the WAL in `dir`, recovering whatever an earlier
    /// process left behind. The directory is created if missing. Returns
    /// the writable log positioned after the last intact record, plus the
    /// recovery view to replay.
    pub fn open(dir: &Path) -> Result<(Wal, WalRecovery)> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create wal dir", e))?;
        let snapshot = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let base_seq = snapshot.as_ref().map_or(0, |s| s.last_seq);

        let log_path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)
            .map_err(|e| io_err("open wal.log", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err("read wal.log", e))?;

        let (records, offsets, good_bytes) = scan_records(&bytes, base_seq);
        let truncated_bytes = bytes.len() as u64 - good_bytes;
        if truncated_bytes > 0 {
            file.set_len(good_bytes).map_err(|e| io_err("truncate torn wal tail", e))?;
            file.sync_data().map_err(|e| io_err("sync truncated wal", e))?;
        }
        file.seek(SeekFrom::Start(good_bytes)).map_err(|e| io_err("seek wal end", e))?;

        let last_seq = records.last().map_or(base_seq, |r| r.seq);
        let wal = Wal {
            dir: dir.to_path_buf(),
            file,
            next_seq: last_seq + 1,
            base_seq,
            // Everything that survived recovery is on disk by definition.
            synced_seq: last_seq,
            log_bytes: good_bytes,
            offsets,
        };
        Ok((wal, WalRecovery { snapshot, records, truncated_bytes }))
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The last appended sequence number (0 = empty log, no snapshot).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// The highest sequence number known durable (see [`Wal::sync`]).
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// The snapshot compaction point (0 = no snapshot). Records at or
    /// below this are only available through the snapshot.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Current byte length of the log file.
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Append one record, returning its sequence number. The record is
    /// *not* durable until the next [`Wal::sync`] completes.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if let Some(msg) = pqp_obs::failpoint::fire("wal.append") {
            return Err(StorageError::Io(format!("wal.append failpoint: {msg}")));
        }
        let framed_len = SEQ_BYTES + payload.len();
        if framed_len > MAX_RECORD_LEN as usize {
            return Err(StorageError::Io(format!(
                "wal record of {framed_len} bytes exceeds the {MAX_RECORD_LEN}-byte limit"
            )));
        }
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(FRAME_HEADER + framed_len);
        frame.extend_from_slice(&(framed_len as u32).to_be_bytes());
        frame.extend_from_slice(&[0u8; 4]); // crc placeholder
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(payload);
        let crc = crc32(&frame[FRAME_HEADER..]);
        frame[4..8].copy_from_slice(&crc.to_be_bytes());
        self.file.write_all(&frame).map_err(|e| io_err("append wal record", e))?;
        self.next_seq += 1;
        self.offsets.push(self.log_bytes);
        self.log_bytes += frame.len() as u64;
        Ok(seq)
    }

    /// Make every appended record durable (`fdatasync`). After `Ok`,
    /// [`Wal::synced_seq`] equals [`Wal::last_seq`].
    pub fn sync(&mut self) -> Result<()> {
        if let Some(msg) = pqp_obs::failpoint::fire("wal.fsync") {
            return Err(StorageError::Io(format!("wal.fsync failpoint: {msg}")));
        }
        self.file.sync_data().map_err(|e| io_err("fsync wal", e))?;
        self.synced_seq = self.last_seq();
        Ok(())
    }

    /// Re-read intact records with `seq >= from` from the log file (the
    /// catch-up path for a lagging follower). Returns `None` when `from`
    /// falls at or below the snapshot point — the caller must ship the
    /// snapshot instead. The in-memory offset index turns this into one
    /// seek + a tail read, so catch-up costs O(bytes shipped), not
    /// O(total log bytes).
    pub fn read_from(&self, from: u64) -> Result<Option<Vec<WalRecord>>> {
        if from <= self.base_seq {
            return Ok(None);
        }
        if from > self.last_seq() {
            return Ok(Some(Vec::new()));
        }
        let offset = self.offsets[(from - self.base_seq - 1) as usize];
        let bytes = self.read_tail(offset)?;
        let (records, _, _) = scan_records(&bytes, from - 1);
        Ok(Some(records))
    }

    /// Read the single record at `seq`. `None` when `seq` is outside the
    /// live log range (compacted into the snapshot, or past the tip).
    pub fn read_record(&self, seq: u64) -> Result<Option<WalRecord>> {
        if seq <= self.base_seq || seq > self.last_seq() {
            return Ok(None);
        }
        let offset = self.offsets[(seq - self.base_seq - 1) as usize];
        let bytes = self.read_tail(offset)?;
        let (records, _, _) = scan_records(&bytes, seq - 1);
        Ok(records.into_iter().next())
    }

    /// Drop every record with sequence `>= from` (log-conflict resolution:
    /// a follower discovered its suffix diverges from the new leader's
    /// log). Returns the number of records removed. Truncating into the
    /// snapshot (`from <= base_seq`) is refused — the caller must fall
    /// back to a full snapshot transfer.
    pub fn truncate_from(&mut self, from: u64) -> Result<u64> {
        if from <= self.base_seq {
            return Err(StorageError::Io(format!(
                "cannot truncate log from seq {from}: records at or below the snapshot \
                 point {} exist only in the snapshot",
                self.base_seq
            )));
        }
        if from > self.last_seq() {
            return Ok(0);
        }
        let removed = self.last_seq() - from + 1;
        let offset = self.offsets[(from - self.base_seq - 1) as usize];
        self.file.set_len(offset).map_err(|e| io_err("truncate wal suffix", e))?;
        self.file.sync_data().map_err(|e| io_err("sync truncated wal", e))?;
        self.file.seek(SeekFrom::Start(offset)).map_err(|e| io_err("seek wal end", e))?;
        self.offsets.truncate((from - self.base_seq - 1) as usize);
        self.next_seq = from;
        self.synced_seq = self.synced_seq.min(from - 1);
        self.log_bytes = offset;
        Ok(removed)
    }

    /// Re-read the snapshot file (`None` when no snapshot is installed).
    /// Used to rebuild in-memory state after a conflict truncation.
    pub fn read_snapshot(&self) -> Result<Option<WalSnapshot>> {
        read_snapshot(&self.dir.join(SNAPSHOT_FILE))
    }

    /// Read the log file from `offset` to its current end.
    fn read_tail(&self, offset: u64) -> Result<Vec<u8>> {
        let mut file =
            File::open(self.dir.join(WAL_FILE)).map_err(|e| io_err("reopen wal.log", e))?;
        file.seek(SeekFrom::Start(offset)).map_err(|e| io_err("seek wal tail", e))?;
        let mut bytes = Vec::with_capacity((self.log_bytes - offset) as usize);
        file.take(self.log_bytes - offset)
            .read_to_end(&mut bytes)
            .map_err(|e| io_err("read wal tail", e))?;
        Ok(bytes)
    }

    /// Install a snapshot covering everything appended so far and truncate
    /// the log: `data` must capture the state after applying records
    /// `1..=last_seq()`. The snapshot is written to a temp file, synced,
    /// and atomically renamed before the log is cut.
    pub fn install_snapshot(&mut self, data: &[u8]) -> Result<()> {
        let last = self.last_seq();
        self.write_snapshot_files(last, data)?;
        self.base_seq = last;
        self.synced_seq = last;
        Ok(())
    }

    /// Replace this WAL's entire state with a snapshot received from a
    /// peer: install `data` at `last_seq` and restart the (empty) log at
    /// `last_seq + 1`. Used by a follower too far behind to catch up from
    /// the leader's log.
    pub fn reset_to(&mut self, last_seq: u64, data: &[u8]) -> Result<()> {
        self.write_snapshot_files(last_seq, data)?;
        self.base_seq = last_seq;
        self.next_seq = last_seq + 1;
        self.synced_seq = last_seq;
        Ok(())
    }

    fn write_snapshot_files(&mut self, last_seq: u64, data: &[u8]) -> Result<()> {
        let mut body = Vec::with_capacity(SEQ_BYTES + data.len());
        body.extend_from_slice(&last_seq.to_be_bytes());
        body.extend_from_slice(data);
        let crc = crc32(&body);
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create snapshot.tmp", e))?;
            f.write_all(&crc.to_be_bytes()).map_err(|e| io_err("write snapshot crc", e))?;
            f.write_all(&body).map_err(|e| io_err("write snapshot body", e))?;
            f.sync_data().map_err(|e| io_err("sync snapshot", e))?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))
            .map_err(|e| io_err("rename snapshot", e))?;
        self.file.set_len(0).map_err(|e| io_err("truncate wal after snapshot", e))?;
        self.file.seek(SeekFrom::Start(0)).map_err(|e| io_err("seek wal start", e))?;
        self.file.sync_data().map_err(|e| io_err("sync truncated wal", e))?;
        self.log_bytes = 0;
        self.offsets.clear();
        Ok(())
    }
}

/// Scan `bytes` for intact, contiguous records following `base_seq`.
/// Returns the records, their start offsets within `bytes`, and the byte
/// offset of the first frame that is torn, corrupt, or out of sequence
/// (== `bytes.len()` on a clean log).
fn scan_records(bytes: &[u8], base_seq: u64) -> (Vec<WalRecord>, Vec<u64>, u64) {
    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = 0usize;
    let mut expected = base_seq + 1;
    while bytes.len() - pos >= FRAME_HEADER {
        let len = u32::from_be_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc =
            u32::from_be_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        if len < SEQ_BYTES || len > MAX_RECORD_LEN as usize {
            break; // corrupt length field
        }
        let body_start = pos + FRAME_HEADER;
        if bytes.len() - body_start < len {
            break; // torn tail: record announced more bytes than exist
        }
        let body = &bytes[body_start..body_start + len];
        if crc32(body) != crc {
            break; // checksum mismatch: bit rot or a torn overwrite
        }
        let seq = u64::from_be_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        if seq != expected {
            break; // sequence discontinuity: the suffix is not trustworthy
        }
        records.push(WalRecord { seq, payload: body[SEQ_BYTES..].to_vec() });
        offsets.push(pos as u64);
        expected += 1;
        pos = body_start + len;
    }
    (records, offsets, pos as u64)
}

fn read_snapshot(path: &Path) -> Result<Option<WalSnapshot>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read snapshot", e)),
    };
    if bytes.len() < 4 + SEQ_BYTES {
        return Err(StorageError::Corrupt(format!(
            "wal snapshot too short: {} bytes",
            bytes.len()
        )));
    }
    let crc = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let body = &bytes[4..];
    if crc32(body) != crc {
        return Err(StorageError::Corrupt("wal snapshot checksum mismatch".to_string()));
    }
    let last_seq = u64::from_be_bytes([
        body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
    ]);
    Ok(Some(WalSnapshot { last_seq, data: body[SEQ_BYTES..].to_vec() }))
}

fn io_err(what: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{what}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pqp-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_sync_reopen_replays_everything() {
        let dir = tmpdir("replay");
        {
            let (mut wal, rec) = Wal::open(&dir).unwrap();
            assert!(rec.snapshot.is_none());
            assert!(rec.records.is_empty());
            assert_eq!(rec.truncated_bytes, 0);
            assert_eq!(wal.append(b"one").unwrap(), 1);
            assert_eq!(wal.append(b"two").unwrap(), 2);
            assert_eq!(wal.synced_seq(), 0);
            wal.sync().unwrap();
            assert_eq!(wal.synced_seq(), 2);
        }
        let (wal, rec) = Wal::open(&dir).unwrap();
        assert_eq!(wal.last_seq(), 2);
        assert_eq!(rec.truncated_bytes, 0);
        let payloads: Vec<&[u8]> = rec.records.iter().map(|r| r.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"one".as_slice(), b"two".as_slice()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_appendable() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(b"keep-1").unwrap();
            wal.append(b"keep-2").unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: a partial frame at the tail.
        let log = dir.join(WAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[0x00, 0x00, 0x00, 0x20, 0xDE, 0xAD]).unwrap();
        drop(f);

        let (mut wal, rec) = Wal::open(&dir).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.truncated_bytes, 6);
        // The log is whole again: appends continue from the next seq.
        assert_eq!(wal.append(b"keep-3").unwrap(), 3);
        wal.sync().unwrap();
        let (_, rec) = Wal::open(&dir).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_cuts_recovery_at_the_corrupt_record() {
        let dir = tmpdir("bitflip");
        let second_record_offset;
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(b"intact").unwrap();
            second_record_offset = wal.log_bytes();
            wal.append(b"corrupted").unwrap();
            wal.append(b"unreachable").unwrap();
            wal.sync().unwrap();
        }
        let log = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&log).unwrap();
        // Flip one bit inside the second record's payload.
        let idx = second_record_offset as usize + FRAME_HEADER + SEQ_BYTES;
        bytes[idx] ^= 0x01;
        std::fs::write(&log, &bytes).unwrap();

        let (wal, rec) = Wal::open(&dir).unwrap();
        // Recovery keeps the intact prefix and drops the corrupt suffix
        // (including the record *after* the flipped one — nothing past the
        // first bad frame is trusted).
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].payload, b"intact");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(wal.last_seq(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_recovery_replays_snapshot_plus_tail() {
        let dir = tmpdir("snapshot");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for i in 0..5u32 {
                wal.append(format!("r{i}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
            wal.install_snapshot(b"state-after-5").unwrap();
            assert_eq!(wal.base_seq(), 5);
            assert_eq!(wal.log_bytes(), 0);
            assert_eq!(wal.append(b"r5").unwrap(), 6);
            wal.sync().unwrap();
        }
        let (wal, rec) = Wal::open(&dir).unwrap();
        let snap = rec.snapshot.expect("snapshot present");
        assert_eq!(snap.last_seq, 5);
        assert_eq!(snap.data, b"state-after-5");
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].seq, 6);
        assert_eq!(wal.last_seq(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_from_serves_catch_up_and_signals_compaction() {
        let dir = tmpdir("readfrom");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        for i in 0..4u32 {
            wal.append(format!("r{i}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        let tail = wal.read_from(3).unwrap().expect("available");
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
        wal.install_snapshot(b"s").unwrap();
        // Everything ≤ base_seq is compacted away: catch-up must go
        // through the snapshot.
        assert!(wal.read_from(4).unwrap().is_none());
        assert_eq!(wal.read_from(5).unwrap().expect("empty tail"), Vec::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_from_cuts_the_suffix_and_the_log_stays_appendable() {
        let dir = tmpdir("truncfrom");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for i in 0..5u32 {
                wal.append(format!("r{i}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.truncate_from(6).unwrap(), 0, "past-tip truncation is a no-op");
            assert_eq!(wal.truncate_from(3).unwrap(), 3);
            assert_eq!(wal.last_seq(), 2);
            assert_eq!(wal.synced_seq(), 2);
            // Appends resume at the truncation point with fresh payloads.
            assert_eq!(wal.append(b"r2'").unwrap(), 3);
            wal.sync().unwrap();
            assert_eq!(wal.read_record(3).unwrap().unwrap().payload, b"r2'");
        }
        let (wal, rec) = Wal::open(&dir).unwrap();
        assert_eq!(wal.last_seq(), 3);
        assert_eq!(rec.truncated_bytes, 0, "truncation left a clean log");
        assert_eq!(rec.records.last().unwrap().payload, b"r2'");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_into_the_snapshot_is_refused() {
        let dir = tmpdir("truncsnap");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(b"a").unwrap();
        wal.sync().unwrap();
        wal.install_snapshot(b"s").unwrap();
        assert!(matches!(wal.truncate_from(1), Err(StorageError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_record_seeks_one_record_by_sequence() {
        let dir = tmpdir("readone");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        for i in 0..4u32 {
            wal.append(format!("r{i}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.read_record(2).unwrap().unwrap().payload, b"r1");
        assert_eq!(wal.read_record(4).unwrap().unwrap().payload, b"r3");
        assert!(wal.read_record(5).unwrap().is_none(), "past the tip");
        wal.install_snapshot(b"s").unwrap();
        assert!(wal.read_record(2).unwrap().is_none(), "compacted away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn offset_index_survives_reopen() {
        let dir = tmpdir("offsets");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for i in 0..6u32 {
                wal.append(format!("rec-{i}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
        }
        let (wal, _) = Wal::open(&dir).unwrap();
        let tail = wal.read_from(5).unwrap().unwrap();
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![5, 6]);
        assert_eq!(tail[0].payload, b"rec-4");
        assert_eq!(wal.read_record(1).unwrap().unwrap().payload, b"rec-0");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error_never_silent() {
        let dir = tmpdir("badsnap");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(b"x").unwrap();
            wal.sync().unwrap();
            wal.install_snapshot(b"good").unwrap();
        }
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        match Wal::open(&dir) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_to_adopts_a_peer_snapshot() {
        let dir = tmpdir("reset");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(b"stale").unwrap();
        wal.sync().unwrap();
        wal.reset_to(42, b"leader-state").unwrap();
        assert_eq!(wal.last_seq(), 42);
        assert_eq!(wal.base_seq(), 42);
        assert_eq!(wal.append(b"next").unwrap(), 43);
        wal.sync().unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir).unwrap();
        assert_eq!(rec.snapshot.expect("snapshot").last_seq, 42);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].seq, 43);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failpoints_surface_as_typed_io_errors() {
        let dir = tmpdir("failpoint");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        pqp_obs::failpoint::configure("wal.append", "1*error(disk full)").unwrap();
        match wal.append(b"x") {
            Err(StorageError::Io(msg)) => assert!(msg.contains("disk full")),
            other => panic!("expected Io error, got {other:?}"),
        }
        // One-shot spec: the next append goes through.
        assert_eq!(wal.append(b"x").unwrap(), 1);
        pqp_obs::failpoint::configure("wal.fsync", "1*error(sync lost)").unwrap();
        match wal.sync() {
            Err(StorageError::Io(msg)) => assert!(msg.contains("sync lost")),
            other => panic!("expected Io error, got {other:?}"),
        }
        assert_eq!(wal.synced_seq(), 0, "failed sync must not advance durability");
        wal.sync().unwrap();
        assert_eq!(wal.synced_seq(), 1);
        pqp_obs::failpoint::remove("wal.append");
        pqp_obs::failpoint::remove("wal.fsync");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
