//! Property tests over the storage layer: the row codec, slotted pages and
//! heaps must preserve arbitrary rows through any interleaving of inserts
//! and deletes.

use pqp_storage::{decode_row, encode_row_vec, Heap, Page, RowId, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        ".{0,40}".prop_map(Value::Str),
    ]
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn codec_roundtrip(row in arb_row()) {
        let bytes = encode_row_vec(&row);
        let back = decode_row(&bytes).unwrap();
        prop_assert_eq!(back, row);
    }

    #[test]
    fn codec_rejects_any_truncation(row in arb_row()) {
        let bytes = encode_row_vec(&row);
        // No strict prefix may decode to the same row (either error or a
        // different/shorter row), and none may panic.
        for cut in 0..bytes.len() {
            if let Ok(decoded) = decode_row(&bytes[..cut]) {
                prop_assert_ne!(&decoded, &row, "prefix of {} bytes decoded equal", cut);
            }
        }
    }

    #[test]
    fn page_preserves_rows(rows in prop::collection::vec(arb_row(), 1..30)) {
        let mut page = Page::new();
        let mut stored = Vec::new();
        for row in &rows {
            if let Some(slot) = page.insert_row(row) {
                stored.push((slot, row.clone()));
            }
        }
        for (slot, row) in &stored {
            prop_assert_eq!(page.get(*slot).unwrap().unwrap(), row.clone());
        }
        prop_assert_eq!(page.iter().count(), stored.len());
    }

    #[test]
    fn heap_insert_delete_scan(
        rows in prop::collection::vec(arb_row(), 1..40),
        delete_mask in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut heap = Heap::new();
        let mut ids: Vec<(RowId, Vec<Value>)> = Vec::new();
        for row in &rows {
            // Oversized rows are legitimately rejected; skip them.
            if let Ok(id) = heap.insert(row) {
                ids.push((id, row.clone()));
            }
        }
        let mut surviving = Vec::new();
        for (i, (id, row)) in ids.iter().enumerate() {
            if *delete_mask.get(i).unwrap_or(&false) {
                prop_assert!(heap.delete(*id));
                prop_assert!(heap.get(*id).is_none());
            } else {
                surviving.push(row.clone());
            }
        }
        prop_assert_eq!(heap.len(), surviving.len());
        let mut scanned = heap.scan().unwrap();
        let mut expected = surviving;
        scanned.sort();
        expected.sort();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot form): a ≤ b ≤ c ⇒ a ≤ c.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // Hash consistency with equality.
        if a == b {
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = std::collections::hash_map::DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            prop_assert_eq!(h(&a), h(&b));
        }
    }
}
