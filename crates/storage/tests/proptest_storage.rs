//! Randomized tests over the storage layer: the row codec, slotted pages and
//! heaps must preserve arbitrary rows through any interleaving of inserts
//! and deletes. Driven by a seeded PRNG so failures reproduce exactly.

use pqp_obs::rng::{Rng, SmallRng};
use pqp_storage::{decode_row, encode_row_vec, Heap, Page, RowId, Value};

fn arb_value(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0..5u32) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.next_u64() as i64),
        3 => {
            // A finite float spanning many magnitudes.
            let m = rng.gen_range(-1.0e6..1.0e6);
            Value::Float(m)
        }
        _ => {
            let len = rng.gen_range(0..40usize);
            let s: String = (0..len)
                .map(|_| char::from_u32(rng.gen_range(0x20..0x2FF_u32)).unwrap_or('x'))
                .collect();
            Value::Str(s)
        }
    }
}

fn arb_row(rng: &mut SmallRng) -> Vec<Value> {
    let n = rng.gen_range(0..8usize);
    (0..n).map(|_| arb_value(rng)).collect()
}

#[test]
fn codec_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xC0DEC);
    for _ in 0..256 {
        let row = arb_row(&mut rng);
        let bytes = encode_row_vec(&row);
        let back = decode_row(&bytes).unwrap();
        assert_eq!(back, row);
    }
}

#[test]
fn codec_rejects_any_truncation() {
    let mut rng = SmallRng::seed_from_u64(0x7242C);
    for _ in 0..64 {
        let row = arb_row(&mut rng);
        let bytes = encode_row_vec(&row);
        // No strict prefix may decode to the same row (either error or a
        // different/shorter row), and none may panic.
        for cut in 0..bytes.len() {
            if let Ok(decoded) = decode_row(&bytes[..cut]) {
                assert_ne!(decoded, row, "prefix of {cut} bytes decoded equal");
            }
        }
    }
}

#[test]
fn page_preserves_rows() {
    let mut rng = SmallRng::seed_from_u64(0x9A6E);
    for _ in 0..64 {
        let n = rng.gen_range(1..30usize);
        let rows: Vec<_> = (0..n).map(|_| arb_row(&mut rng)).collect();
        let mut page = Page::new();
        let mut stored = Vec::new();
        for row in &rows {
            if let Some(slot) = page.insert_row(row) {
                stored.push((slot, row.clone()));
            }
        }
        for (slot, row) in &stored {
            assert_eq!(&page.get(*slot).unwrap().unwrap(), row);
        }
        assert_eq!(page.iter().count(), stored.len());
    }
}

#[test]
fn heap_insert_delete_scan() {
    let mut rng = SmallRng::seed_from_u64(0x48EA9);
    for _ in 0..64 {
        let n = rng.gen_range(1..40usize);
        let rows: Vec<_> = (0..n).map(|_| arb_row(&mut rng)).collect();
        let delete_mask: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let mut heap = Heap::new();
        let mut ids: Vec<(RowId, Vec<Value>)> = Vec::new();
        for row in &rows {
            // Oversized rows are legitimately rejected; skip them.
            if let Ok(id) = heap.insert(row) {
                ids.push((id, row.clone()));
            }
        }
        let mut surviving = Vec::new();
        for (i, (id, row)) in ids.iter().enumerate() {
            if *delete_mask.get(i).unwrap_or(&false) {
                assert!(heap.delete(*id));
                assert!(heap.get(*id).is_none());
            } else {
                surviving.push(row.clone());
            }
        }
        assert_eq!(heap.len(), surviving.len());
        let mut scanned = heap.scan().unwrap();
        let mut expected = surviving;
        scanned.sort();
        expected.sort();
        assert_eq!(scanned, expected);
    }
}

#[test]
fn value_ordering_is_total_and_consistent() {
    use std::cmp::Ordering;
    let mut rng = SmallRng::seed_from_u64(0x0217D);
    for _ in 0..512 {
        let a = arb_value(&mut rng);
        let b = arb_value(&mut rng);
        let c = arb_value(&mut rng);
        // Antisymmetry.
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot form): a ≤ b ≤ c ⇒ a ≤ c.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // Hash consistency with equality.
        if a == b {
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = std::collections::hash_map::DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            assert_eq!(h(&a), h(&b));
        }
    }
}
