//! Micro-benchmarks of the serving layer (`pqp-service`):
//!
//! - `query_cold` vs `query_warm`: the personalized-plan cache's win on
//!   repeated queries (cold clears both caches every iteration, warm runs
//!   against a primed cache, so the ratio is the cache speedup);
//! - `sequential_200` vs `batch_200_w8`: a 200-request mixed-user workload
//!   through a sequential request loop vs `Service::query_batch` with 8
//!   workers (request collapsing + plan cache; on multi-core hosts the
//!   workers parallelize on top).
//!
//! Writes `results/micro_service.json` (with a `derived` block holding both
//! speedups) and `results/metrics.json`, whose `service.plan_cache.*` /
//! `service.prepared_cache.*` counters come from the caches under test.

use pqp_bench::microbench::{write_metrics_json, MicroBench};
use pqp_core::PersonalizeOptions;
use pqp_datagen::{
    generate, generate_profiles, generate_queries, MovieDbConfig, ProfileGenConfig, QueryGenConfig,
};
use pqp_obs::Json;
use pqp_service::{Service, ServiceConfig, UserId};
use std::path::{Path, PathBuf};

const USERS: usize = 20;
const BATCH_REQUESTS: usize = 200;
const BATCH_WORKERS: usize = 8;

fn setup() -> (Service, Vec<String>, Vec<UserId>) {
    let m = generate(MovieDbConfig { movies: 300, theatres: 10, ..Default::default() });
    let service = Service::with_config(
        m.db,
        ServiceConfig {
            options: PersonalizeOptions::builder().k(8).l(1).build(),
            ..ServiceConfig::default()
        },
    );
    let profiles = generate_profiles(
        "user",
        USERS,
        &m.pools,
        &ProfileGenConfig { selections: 60, seed: 11, ..Default::default() },
    );
    let users: Vec<UserId> = profiles.iter().map(|p| UserId::from(p.user.as_str())).collect();
    for p in profiles {
        service.install_profile(p).expect("generated profiles validate");
    }
    let sqls: Vec<String> = generate_queries(8, &m.pools, &QueryGenConfig::default())
        .iter()
        .map(|q| q.to_string())
        .collect();
    (service, sqls, users)
}

fn main() {
    let (service, sqls, users) = setup();
    let session = service.session(users[0].clone());
    let sql = sqls[0].as_str();

    // 200 requests over 20 users and 4 query texts (80 distinct pairs, so
    // each repeats ~2.5x): the shape of real serving traffic, and what both
    // the plan cache and request collapsing exist for.
    let requests: Vec<(UserId, String)> = (0..BATCH_REQUESTS)
        .map(|i| (users[i % users.len()].clone(), sqls[(i / users.len()) % 4].clone()))
        .collect();

    let mut group = MicroBench::new("service").sample_size(20);
    group.bench("query_cold", || {
        service.clear_caches();
        session.query(sql).unwrap()
    });
    session.query(sql).unwrap(); // prime
    group.bench("query_warm", || session.query(sql).unwrap());

    group.bench("sequential_200", || {
        service.clear_caches();
        for (user, sql) in &requests {
            service.session(user.clone()).query(sql).unwrap();
        }
    });
    group.bench(format!("batch_200_w{BATCH_WORKERS}"), || {
        service.clear_caches();
        let answers = service.query_batch(&requests, BATCH_WORKERS);
        assert!(answers.iter().all(|a| a.is_ok()));
    });

    let stats = service.cache_stats();
    println!(
        "plan cache: {} hits / {} misses / {} stale (hit rate {:.1}%)",
        stats.plans.hits,
        stats.plans.misses,
        stats.plans.stale,
        100.0 * stats.plans.hit_rate()
    );
    // Benches run with the package as CWD; write under the workspace root's
    // `results/` like every other experiment output.
    let dir = workspace_results_dir();
    match group.write_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write micro_service.json: {err}"),
    }
    annotate_speedups(&dir.join("micro_service.json"));
    match write_metrics_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write metrics.json: {err}"),
    }
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}

/// Re-open the written JSON and add a `derived` block with the two
/// headline ratios, so the result file states them directly.
fn annotate_speedups(path: &Path) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let Ok(doc) = Json::parse(&text) else { return };
    let mean = |name: &str| -> Option<f64> {
        doc.get("benchmarks")?
            .as_array()?
            .iter()
            .find_map(|b| (b.get("name")?.as_str()? == name).then(|| b.get("mean_ms")?.as_f64())?)
    };
    let (Some(cold), Some(warm), Some(seq), Some(batch)) = (
        mean("query_cold"),
        mean("query_warm"),
        mean("sequential_200"),
        mean(&format!("batch_200_w{BATCH_WORKERS}")),
    ) else {
        return;
    };
    let derived = Json::obj()
        .set("plan_cache_speedup", cold / warm)
        .set("batch_vs_sequential_speedup", seq / batch)
        .set("batch_workers", BATCH_WORKERS as i64)
        .set("batch_requests", BATCH_REQUESTS as i64);
    println!(
        "plan-cache speedup: {:.2}x   batch({BATCH_WORKERS} workers) vs sequential: {:.2}x",
        cold / warm,
        seq / batch
    );
    let doc = doc.set("derived", derived);
    let _ = std::fs::write(path, doc.pretty());
}
