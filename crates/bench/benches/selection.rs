//! Micro-benchmarks of the preference-selection algorithm
//! (the operation behind Figure 6).

use pqp_bench::context::schema_only_db;
use pqp_bench::microbench::MicroBench;
use pqp_core::prelude::*;
use pqp_core::{select_preferences, InterestCriterion, QueryGraph};
use pqp_datagen::{
    generate, generate_profile, generate_queries, MovieDbConfig, ProfileGenConfig, QueryGenConfig,
};

fn main() {
    let pool = generate(MovieDbConfig { movies: 300, theatres: 8, ..Default::default() });
    let query = &generate_queries(5, &pool.pools, &QueryGenConfig::default())[0];
    let qg = QueryGraph::from_select(query.as_select().unwrap(), pool.db.catalog()).unwrap();

    let mut group = MicroBench::new("preference_selection").sample_size(30);
    for size in [10usize, 50, 100] {
        let profile = generate_profile(
            "bench",
            &pool.pools,
            &ProfileGenConfig { selections: size, seed: size as u64, ..Default::default() },
        );
        let memory = InMemoryGraph::build(&profile, pool.db.catalog()).unwrap();
        group.bench(format!("in_memory_k10/{size}"), || {
            select_preferences(&qg, &memory, &InterestCriterion::TopK(10))
        });
        let mut host = schema_only_db();
        StoredProfileGraph::store(&mut host, &profile).unwrap();
        let stored = StoredProfileGraph::open(&host, "bench");
        group.bench(format!("stored_k10/{size}"), || {
            select_preferences(&qg, &stored, &InterestCriterion::TopK(10))
        });
    }
    group.finish();
}
