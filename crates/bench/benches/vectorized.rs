//! Micro-benchmarks of batched (vectorized) execution versus the
//! tuple-at-a-time reference path: the 4-way join over the movies schema
//! (THEATRE ⋈ PLAY ⋈ MOVIE ⋈ GENRE), a broad filtered scan, and a
//! selective filtered scan, each run with `ExecOptions::batched(true)` and
//! `batched(false)` under the same serial budget.
//!
//! The fixture deliberately carries **no indexes** and is ANALYZE'd, so
//! every plan is pure Scan/Filter/HashJoin — the operators the batched path
//! vectorizes — rather than the index paths both modes share. Both modes
//! are asserted row-identical before timing.
//!
//! Writes `results/micro_vectorized.json` with a `derived` block holding
//! `join4_vectorized_speedup` (the ISSUE's ≥ 2x target), the scan speedups
//! and `host_cores`.

use pqp_bench::microbench::{write_metrics_json, MicroBench};
use pqp_datagen::Zipf;
use pqp_engine::{Database, ExecOptions};
use pqp_obs::rng::{Rng, SmallRng};
use pqp_obs::Json;
use pqp_sql::parse_query;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};
use std::path::{Path, PathBuf};

const FOUR_WAY_JOIN: &str = "select TH.name, MV.title, GE.genre \
     from THEATRE TH, PLAY PL, MOVIE MV, GENRE GE \
     where TH.tid = PL.tid and PL.mid = MV.mid and MV.mid = GE.mid";

const BROAD_SCAN: &str = "select MV.title, MV.year from MOVIE MV where MV.year > 1950";

const SELECTIVE_SCAN: &str =
    "select MV.title from MOVIE MV where MV.year >= 1990 and MV.year < 1994";

/// The movies schema without primary keys (hence without indexes), filled
/// with a Zipf-skewed instance and ANALYZE'd: the planner gets real
/// statistics, the executor gets no index shortcuts.
fn unindexed_movies(movies: usize, theatres: usize) -> Database {
    let mut c = Catalog::new();
    c.create_table(TableSchema::new(
        "THEATRE",
        vec![
            ColumnDef::new("tid", DataType::Int),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("region", DataType::Str),
        ],
    ))
    .unwrap();
    c.create_table(TableSchema::new(
        "PLAY",
        vec![
            ColumnDef::new("tid", DataType::Int),
            ColumnDef::new("mid", DataType::Int),
            ColumnDef::new("date", DataType::Str),
        ],
    ))
    .unwrap();
    c.create_table(TableSchema::new(
        "MOVIE",
        vec![
            ColumnDef::new("mid", DataType::Int),
            ColumnDef::new("title", DataType::Str),
            ColumnDef::new("year", DataType::Int),
        ],
    ))
    .unwrap();
    c.create_table(TableSchema::new(
        "GENRE",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
    ))
    .unwrap();

    let mut rng = SmallRng::seed_from_u64(0x5EED_CAFE);
    let popularity = Zipf::new(movies, 0.8);
    let genres = pqp_datagen::GENRES;
    let regions = pqp_datagen::REGIONS;
    {
        let t = c.table("MOVIE").unwrap();
        let mut t = t.write();
        for mid in 0..movies {
            t.insert(vec![
                Value::Int(mid as i64),
                Value::str(format!("Movie {mid}")),
                Value::Int(1940 + (rng.next_u32() % 80) as i64),
            ])
            .unwrap();
        }
        t.analyze().unwrap();
    }
    {
        let t = c.table("GENRE").unwrap();
        let mut t = t.write();
        for mid in 0..movies {
            let n = 1 + (rng.next_u32() % 3) as usize;
            for _ in 0..n {
                let g = genres[rng.next_u32() as usize % genres.len()];
                t.insert(vec![Value::Int(mid as i64), Value::str(g)]).unwrap();
            }
        }
        t.analyze().unwrap();
    }
    {
        let t = c.table("THEATRE").unwrap();
        let mut t = t.write();
        for tid in 0..theatres {
            t.insert(vec![
                Value::Int(tid as i64),
                Value::str(format!("Theatre {tid}")),
                Value::str(regions[tid % regions.len()]),
            ])
            .unwrap();
        }
        t.analyze().unwrap();
    }
    {
        let t = c.table("PLAY").unwrap();
        let mut t = t.write();
        for tid in 0..theatres {
            for day in 0..14 {
                for _ in 0..6 {
                    let mid = popularity.sample(&mut rng);
                    t.insert(vec![
                        Value::Int(tid as i64),
                        Value::Int(mid as i64),
                        Value::str(format!("2004-03-{:02}", day + 1)),
                    ])
                    .unwrap();
                }
            }
        }
        t.analyze().unwrap();
    }
    Database::new(c)
}

fn main() {
    let db = unindexed_movies(4_000, 60);
    let join_plan = db.plan(&parse_query(FOUR_WAY_JOIN).unwrap()).unwrap();
    let broad_plan = db.plan(&parse_query(BROAD_SCAN).unwrap()).unwrap();
    let sel_plan = db.plan(&parse_query(SELECTIVE_SCAN).unwrap()).unwrap();
    let tuple = ExecOptions::serial().batched(false);
    let batched = ExecOptions::serial().batched(true);

    // Both modes must agree exactly before either is worth timing.
    let join_rows = db.run_plan_with(&join_plan, &tuple).unwrap().rows;
    assert_eq!(
        join_rows,
        db.run_plan_with(&join_plan, &batched).unwrap().rows,
        "batched join diverged from tuple join"
    );
    for plan in [&broad_plan, &sel_plan] {
        assert_eq!(
            db.run_plan_with(plan, &tuple).unwrap().rows,
            db.run_plan_with(plan, &batched).unwrap().rows,
            "batched scan diverged from tuple scan"
        );
    }
    println!("4-way join output: {} rows", join_rows.len());

    let mut group = MicroBench::new("vectorized").sample_size(20);
    group.bench("join4_tuple", || db.run_plan_with(&join_plan, &tuple).unwrap());
    group.bench("join4_batched", || db.run_plan_with(&join_plan, &batched).unwrap());
    group.bench("scan_broad_tuple", || db.run_plan_with(&broad_plan, &tuple).unwrap());
    group.bench("scan_broad_batched", || db.run_plan_with(&broad_plan, &batched).unwrap());
    group.bench("scan_selective_tuple", || db.run_plan_with(&sel_plan, &tuple).unwrap());
    group.bench("scan_selective_batched", || db.run_plan_with(&sel_plan, &batched).unwrap());

    let dir = workspace_results_dir();
    match group.write_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write micro_vectorized.json: {err}"),
    }
    annotate_speedups(&dir.join("micro_vectorized.json"), join_rows.len());
    match write_metrics_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write metrics.json: {err}"),
    }
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}

/// Re-open the written JSON and add a `derived` block: batched-over-tuple
/// speedups per workload, the join output size, and the host's core count
/// (serial benchmarks, but recorded for apples-to-apples comparisons with
/// `micro_parallel.json`).
fn annotate_speedups(path: &Path, join_rows: usize) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let Ok(doc) = Json::parse(&text) else { return };
    let mean = |name: &str| -> Option<f64> {
        doc.get("benchmarks")?
            .as_array()?
            .iter()
            .find_map(|b| (b.get("name")?.as_str()? == name).then(|| b.get("mean_ms")?.as_f64())?)
    };
    let (Some(jt), Some(jb), Some(bt), Some(bb), Some(st), Some(sb)) = (
        mean("join4_tuple"),
        mean("join4_batched"),
        mean("scan_broad_tuple"),
        mean("scan_broad_batched"),
        mean("scan_selective_tuple"),
        mean("scan_selective_batched"),
    ) else {
        return;
    };
    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let derived = Json::obj()
        .set("join4_vectorized_speedup", jt / jb)
        .set("scan_broad_vectorized_speedup", bt / bb)
        .set("scan_selective_vectorized_speedup", st / sb)
        .set("join4_rows", join_rows as i64)
        .set("host_cores", host_cores as i64);
    println!(
        "vectorized speedup: {:.2}x (4-way join), {:.2}x (broad scan), {:.2}x (selective scan) \
         [host cores: {host_cores}]",
        jt / jb,
        bt / bb,
        st / sb
    );
    let doc = doc.set("derived", derived);
    let _ = std::fs::write(path, doc.pretty());
}
