//! Macro load harness: a closed-loop, multi-worker driver putting the
//! serving layer under sustained skewed traffic — the missing complement to
//! the per-operation micro-benchmarks.
//!
//! N simulated users (zipf-skewed popularity: a few hot users dominate, as
//! in real traffic) issue a zipf-skewed mix of generated queries against a
//! generated movie database. Each worker runs closed-loop: issue a query,
//! wait for the answer, issue the next.
//!
//! Two modes, selected by `PQP_LOAD_MODE`:
//!
//! - `inproc` (default): workers call `Session::query` directly. Latency
//!   quantiles and SLO counts come from the service's own telemetry
//!   ([`pqp_service::Telemetry`]) — the harness measures what an operator
//!   would see. Writes `results/macro_load.json`.
//! - `tcp`: the same service is fronted by an in-process `pqp-server` on an
//!   ephemeral port and every worker drives blocking `pqp-wire` clients
//!   over real sockets (one connection per simulated user, as sessions are
//!   user-bound). Latency is measured client-side, so it includes framing,
//!   syscalls and loopback round-trips. Writes `results/macro_load_tcp.json`.
//!
//! Environment knobs (defaults in parentheses): `PQP_LOAD_USERS` (50),
//! `PQP_LOAD_WORKERS` (4), `PQP_LOAD_SECONDS` (5), `PQP_LOAD_ZIPF` (1.0),
//! `PQP_LOAD_QUERIES` (8 distinct texts), `PQP_LOAD_MODE` (inproc). CI runs
//! a seconds-long smoke configuration of both modes and asserts the JSON
//! reports non-zero throughput.

use pqp_core::PersonalizeOptions;
use pqp_datagen::{
    generate, generate_profiles, generate_queries, MovieDbConfig, ProfileGenConfig, QueryGenConfig,
    Zipf,
};
use pqp_obs::rng::SmallRng;
use pqp_obs::{Histogram, Json};
use pqp_server::{Server, ServerConfig, ServerHandle};
use pqp_service::{QueryApi, Service, ServiceConfig, UserId};
use pqp_wire::{Client, ClientConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    InProc,
    Tcp,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::InProc => "inproc",
            Mode::Tcp => "tcp",
        }
    }
}

struct LoadConfig {
    users: usize,
    workers: usize,
    seconds: f64,
    zipf_s: f64,
    query_texts: usize,
    mode: Mode,
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl LoadConfig {
    fn from_env() -> LoadConfig {
        let mode = match std::env::var("PQP_LOAD_MODE").unwrap_or_default().trim() {
            "tcp" => Mode::Tcp,
            _ => Mode::InProc,
        };
        LoadConfig {
            users: env_or("PQP_LOAD_USERS", 50_usize).max(1),
            workers: env_or("PQP_LOAD_WORKERS", 4_usize).max(1),
            seconds: env_or("PQP_LOAD_SECONDS", 5.0_f64).max(0.1),
            zipf_s: env_or("PQP_LOAD_ZIPF", 1.0_f64).max(0.0),
            query_texts: env_or("PQP_LOAD_QUERIES", 8_usize).max(1),
            mode,
        }
    }
}

fn setup(cfg: &LoadConfig) -> (Service, Vec<UserId>, Vec<String>) {
    let m = generate(MovieDbConfig { movies: 300, theatres: 10, ..Default::default() });
    let service = Service::with_config(
        m.db,
        ServiceConfig {
            options: PersonalizeOptions::builder().k(8).l(1).build(),
            ..ServiceConfig::default()
        },
    );
    let profiles = generate_profiles(
        "user",
        cfg.users,
        &m.pools,
        &ProfileGenConfig { selections: 60, seed: 11, ..Default::default() },
    );
    let users: Vec<UserId> = profiles.iter().map(|p| UserId::from(p.user.as_str())).collect();
    for p in profiles {
        service.install_profile(p).expect("generated profiles validate");
    }
    let sqls: Vec<String> = generate_queries(cfg.query_texts, &m.pools, &QueryGenConfig::default())
        .iter()
        .map(|q| q.to_string())
        .collect();
    (service, users, sqls)
}

fn main() {
    let cfg = LoadConfig::from_env();
    let (service, users, sqls) = setup(&cfg);
    let service = Arc::new(service);
    println!(
        "macro load [{}]: {} users x {} queries, zipf s={}, {} workers, {:.1}s closed-loop",
        cfg.mode.label(),
        cfg.users,
        sqls.len(),
        cfg.zipf_s,
        cfg.workers,
        cfg.seconds
    );

    // In TCP mode the same service is served over loopback sockets and the
    // workers become wire clients.
    let server: Option<ServerHandle> = match cfg.mode {
        Mode::InProc => None,
        Mode::Tcp => {
            let config =
                ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() };
            let server = Server::bind(Arc::clone(&service), config).expect("bind loopback");
            Some(server.spawn().expect("spawn accept loop"))
        }
    };

    let user_zipf = Zipf::new(users.len(), cfg.zipf_s);
    let query_zipf = Zipf::new(sqls.len(), cfg.zipf_s);
    let run_dur = Duration::from_secs_f64(cfg.seconds);
    let completed = AtomicU64::new(0);
    let errored = AtomicU64::new(0);
    // Client-side latency, recorded per worker and merged (TCP mode; the
    // in-proc mode reads the service telemetry instead).
    let client_latency = Mutex::new(Histogram::new());

    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..cfg.workers {
            let (service, users, sqls) = (&service, &users, &sqls);
            let (user_zipf, query_zipf) = (&user_zipf, &query_zipf);
            let (completed, errored, client_latency) = (&completed, &errored, &client_latency);
            let addr = server.as_ref().map(|s| s.addr());
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xC10C + worker as u64);
                let deadline = Instant::now() + run_dur;
                // Sessions are user-bound, so the TCP worker keeps one
                // connection per simulated user it has played so far.
                let mut clients: HashMap<usize, Client> = HashMap::new();
                let mut latency = Histogram::new();
                while Instant::now() < deadline {
                    let user_idx = user_zipf.sample(&mut rng);
                    let sql = &sqls[query_zipf.sample(&mut rng)];
                    let result = match addr {
                        None => service.session(users[user_idx].clone()).query(sql).map(|_| ()),
                        Some(addr) => {
                            let entry = clients.entry(user_idx).or_insert_with(|| {
                                Client::connect(addr, ClientConfig::new(users[user_idx].as_str()))
                                    .expect("connect to in-process server")
                            });
                            let sent = Instant::now();
                            let result = entry.query(sql).map(|_| ());
                            latency.record(sent.elapsed().as_secs_f64() * 1e3);
                            result
                        }
                    };
                    match result {
                        Ok(()) => completed.fetch_add(1, Ordering::Relaxed),
                        Err(_) => errored.fetch_add(1, Ordering::Relaxed),
                    };
                }
                for (_, client) in clients.drain() {
                    client.close();
                }
                if latency.count() > 0 {
                    let mut merged = client_latency.lock().expect("latency mutex");
                    merged.merge(&latency);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let completed = completed.load(Ordering::Relaxed);
    let errored = errored.load(Ordering::Relaxed);
    assert!(completed > 0, "a closed-loop run must complete at least one query");

    // The harness reports what the service itself observed: latency
    // quantiles and SLO counts come from the always-on telemetry, the cache
    // hit rates from the cache counters. In TCP mode the latency quantiles
    // are the client-side ones (they include the wire).
    let telemetry = service.telemetry().snapshot();
    assert_eq!(
        telemetry.queries,
        completed + errored,
        "the query log saw every request the workers issued"
    );
    let client_latency = client_latency.into_inner().expect("latency mutex");
    let latency: &Histogram = match cfg.mode {
        Mode::InProc => &telemetry.latency_ms.lifetime,
        Mode::Tcp => &client_latency,
    };
    let caches = service.cache_stats();
    let throughput_qps = completed as f64 / elapsed;
    println!(
        "{completed} queries ({errored} errors) in {elapsed:.2}s = {throughput_qps:.0} qps   \
         p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms   plan-cache hit rate {:.1}%",
        latency.p50(),
        latency.p95(),
        latency.p99(),
        100.0 * caches.plans.hit_rate()
    );

    let (meta_name, file_name, latency_source) = match cfg.mode {
        Mode::InProc => ("macro_load", "macro_load.json", "service-telemetry"),
        Mode::Tcp => ("macro_load_tcp", "macro_load_tcp.json", "client"),
    };
    let doc = Json::obj()
        .set("meta", pqp_obs::run_meta(meta_name))
        .set(
            "config",
            Json::obj()
                .set("mode", cfg.mode.label())
                .set("users", cfg.users)
                .set("workers", cfg.workers)
                .set("seconds", cfg.seconds)
                .set("zipf_s", cfg.zipf_s)
                .set("query_texts", sqls.len()),
        )
        .set("throughput_qps", throughput_qps)
        .set("completed", completed)
        .set("errors", errored)
        .set("elapsed_s", elapsed)
        .set(
            "latency_ms",
            Json::obj()
                .set("source", latency_source)
                .set("count", latency.count())
                .set("mean", latency.mean())
                .set("p50", latency.p50())
                .set("p95", latency.p95())
                .set("p99", latency.p99())
                .set("max", latency.max()),
        )
        .set(
            "caches",
            Json::obj()
                .set("plan_hit_rate", caches.plans.hit_rate())
                .set("prepared_hit_rate", caches.prepared.hit_rate()),
        )
        .set(
            "slo",
            Json::obj()
                .set("slow", telemetry.slow)
                .set("degraded", telemetry.degraded)
                .set("over_deadline", telemetry.over_deadline)
                .set("budget_exceeded", telemetry.budget_exceeded)
                .set("overloaded", telemetry.overloaded)
                .set("panics_caught", telemetry.panics_caught),
        );
    if let Some(server) = server {
        server.shutdown();
    }
    let dir = workspace_results_dir();
    let path = dir.join(file_name);
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("failed to create {}: {err}", dir.display());
        std::process::exit(1);
    }
    match std::fs::write(&path, doc.pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("failed to write {file_name}: {err}");
            std::process::exit(1);
        }
    }
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}
