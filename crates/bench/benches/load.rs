//! Macro load harness: a closed-loop, multi-worker driver putting the
//! serving layer under sustained skewed traffic — the missing complement to
//! the per-operation micro-benchmarks.
//!
//! N simulated users (zipf-skewed popularity: a few hot users dominate, as
//! in real traffic) issue a zipf-skewed mix of generated queries against a
//! generated movie database. Each worker runs closed-loop: issue a query,
//! wait for the answer, issue the next. The run consumes the service's own
//! telemetry ([`pqp_service::Telemetry`]) for its latency quantiles and SLO
//! counts — the harness measures what an operator would see — and writes
//! `results/macro_load.json` with throughput, p50/p95/p99 latency, cache
//! hit rates and degrade/error counts, stamped with the shared run-metadata
//! block.
//!
//! Environment knobs (defaults in parentheses): `PQP_LOAD_USERS` (50),
//! `PQP_LOAD_WORKERS` (4), `PQP_LOAD_SECONDS` (5), `PQP_LOAD_ZIPF` (1.0),
//! `PQP_LOAD_QUERIES` (8 distinct texts). CI runs a seconds-long smoke
//! configuration and asserts the JSON reports non-zero throughput.

use pqp_core::PersonalizeOptions;
use pqp_datagen::{
    generate, generate_profiles, generate_queries, MovieDbConfig, ProfileGenConfig, QueryGenConfig,
    Zipf,
};
use pqp_obs::rng::SmallRng;
use pqp_obs::Json;
use pqp_service::{Service, ServiceConfig, UserId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct LoadConfig {
    users: usize,
    workers: usize,
    seconds: f64,
    zipf_s: f64,
    query_texts: usize,
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl LoadConfig {
    fn from_env() -> LoadConfig {
        LoadConfig {
            users: env_or("PQP_LOAD_USERS", 50_usize).max(1),
            workers: env_or("PQP_LOAD_WORKERS", 4_usize).max(1),
            seconds: env_or("PQP_LOAD_SECONDS", 5.0_f64).max(0.1),
            zipf_s: env_or("PQP_LOAD_ZIPF", 1.0_f64).max(0.0),
            query_texts: env_or("PQP_LOAD_QUERIES", 8_usize).max(1),
        }
    }
}

fn setup(cfg: &LoadConfig) -> (Service, Vec<UserId>, Vec<String>) {
    let m = generate(MovieDbConfig { movies: 300, theatres: 10, ..Default::default() });
    let service = Service::with_config(
        m.db,
        ServiceConfig {
            options: PersonalizeOptions::builder().k(8).l(1).build(),
            ..ServiceConfig::default()
        },
    );
    let profiles = generate_profiles(
        "user",
        cfg.users,
        &m.pools,
        &ProfileGenConfig { selections: 60, seed: 11, ..Default::default() },
    );
    let users: Vec<UserId> = profiles.iter().map(|p| UserId::from(p.user.as_str())).collect();
    for p in profiles {
        service.install_profile(p).expect("generated profiles validate");
    }
    let sqls: Vec<String> = generate_queries(cfg.query_texts, &m.pools, &QueryGenConfig::default())
        .iter()
        .map(|q| q.to_string())
        .collect();
    (service, users, sqls)
}

fn main() {
    let cfg = LoadConfig::from_env();
    let (service, users, sqls) = setup(&cfg);
    println!(
        "macro load: {} users x {} queries, zipf s={}, {} workers, {:.1}s closed-loop",
        cfg.users,
        sqls.len(),
        cfg.zipf_s,
        cfg.workers,
        cfg.seconds
    );

    let user_zipf = Zipf::new(users.len(), cfg.zipf_s);
    let query_zipf = Zipf::new(sqls.len(), cfg.zipf_s);
    let run_dur = Duration::from_secs_f64(cfg.seconds);
    let completed = AtomicU64::new(0);
    let errored = AtomicU64::new(0);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..cfg.workers {
            let (service, users, sqls) = (&service, &users, &sqls);
            let (user_zipf, query_zipf) = (&user_zipf, &query_zipf);
            let (completed, errored) = (&completed, &errored);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xC10C + worker as u64);
                let deadline = Instant::now() + run_dur;
                while Instant::now() < deadline {
                    let user = &users[user_zipf.sample(&mut rng)];
                    let sql = &sqls[query_zipf.sample(&mut rng)];
                    match service.session(user.clone()).query(sql) {
                        Ok(_) => completed.fetch_add(1, Ordering::Relaxed),
                        Err(_) => errored.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let completed = completed.load(Ordering::Relaxed);
    let errored = errored.load(Ordering::Relaxed);
    assert!(completed > 0, "a closed-loop run must complete at least one query");

    // The harness reports what the service itself observed: latency
    // quantiles and SLO counts come from the always-on telemetry, the cache
    // hit rates from the cache counters.
    let telemetry = service.telemetry().snapshot();
    let latency = &telemetry.latency_ms.lifetime;
    assert_eq!(
        telemetry.queries,
        completed + errored,
        "the query log saw every request the workers issued"
    );
    let caches = service.cache_stats();
    let throughput_qps = completed as f64 / elapsed;
    println!(
        "{completed} queries ({errored} errors) in {elapsed:.2}s = {throughput_qps:.0} qps   \
         p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms   plan-cache hit rate {:.1}%",
        latency.p50(),
        latency.p95(),
        latency.p99(),
        100.0 * caches.plans.hit_rate()
    );

    let doc = Json::obj()
        .set("meta", pqp_obs::run_meta("macro_load"))
        .set(
            "config",
            Json::obj()
                .set("users", cfg.users)
                .set("workers", cfg.workers)
                .set("seconds", cfg.seconds)
                .set("zipf_s", cfg.zipf_s)
                .set("query_texts", sqls.len()),
        )
        .set("throughput_qps", throughput_qps)
        .set("completed", completed)
        .set("errors", errored)
        .set("elapsed_s", elapsed)
        .set(
            "latency_ms",
            Json::obj()
                .set("count", latency.count())
                .set("mean", latency.mean())
                .set("p50", latency.p50())
                .set("p95", latency.p95())
                .set("p99", latency.p99())
                .set("max", latency.max()),
        )
        .set(
            "caches",
            Json::obj()
                .set("plan_hit_rate", caches.plans.hit_rate())
                .set("prepared_hit_rate", caches.prepared.hit_rate()),
        )
        .set(
            "slo",
            Json::obj()
                .set("slow", telemetry.slow)
                .set("degraded", telemetry.degraded)
                .set("over_deadline", telemetry.over_deadline)
                .set("budget_exceeded", telemetry.budget_exceeded)
                .set("overloaded", telemetry.overloaded)
                .set("panics_caught", telemetry.panics_caught),
        );
    let dir = workspace_results_dir();
    let path = dir.join("macro_load.json");
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("failed to create {}: {err}", dir.display());
        std::process::exit(1);
    }
    match std::fs::write(&path, doc.pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("failed to write macro_load.json: {err}");
            std::process::exit(1);
        }
    }
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}
