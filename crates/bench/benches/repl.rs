//! Replication overhead of the profile mutation path: what does
//! durability cost, and what does each follower in the ack quorum add?
//!
//! Four rungs, same steady-state mutation (a doi update on one stored
//! preference, so the profile does not grow across iterations):
//!
//! - `in_memory` — `Service::add_selection` straight into the store (the
//!   pre-replication baseline).
//! - `wal_quorum1` — through [`ReplNode`]: WAL append + fsync, no
//!   followers (leader-only durability).
//! - `quorum<N+1>_followers<N>` for N ∈ {1, 2, 3} — leader + N real
//!   follower servers over loopback TCP, quorum N+1: the client ack
//!   waits for every follower, so this is the full ship+ack round trip.
//!
//! Writes `results/micro_repl.json` (schema_version 2 `meta` block with
//! `host_cores`) plus a `derived.quorum_curve` block carrying the
//! p50/p95 ack-latency curve and the fsync overhead factor.
//!
//! `PQP_REPL_SMOKE=1` shrinks the sample counts for the CI smoke gate.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pqp_bench::microbench::{write_metrics_json, MicroBench};
use pqp_datagen::{generate, MovieDbConfig};
use pqp_obs::Json;
use pqp_server::{ReplConfig, ReplNode, Server, ServerConfig, ServerHandle};
use pqp_service::{Service, UserId};
use pqp_storage::Value;
use pqp_wire::repl::Role;
use pqp_wire::ProfileOp;

fn samples() -> usize {
    if std::env::var("PQP_REPL_SMOKE").is_ok_and(|v| v != "0") {
        20
    } else {
        200
    }
}

fn service() -> Arc<Service> {
    Arc::new(Service::new(generate(MovieDbConfig::default()).db))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqp_bench_repl_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The steady-state mutation: overwrite one preference's doi, cycling
/// through a handful of values so every call is a real update.
fn op(i: usize) -> ProfileOp {
    ProfileOp::AddSelection {
        table: "MOVIE".into(),
        column: "year".into(),
        value: Value::Int(1999),
        doi: 0.1 + (i % 9) as f64 * 0.1,
    }
}

/// A follower node: service + replication engine + TCP server on an
/// ephemeral loopback port.
struct Follower {
    dir: PathBuf,
    handle: Option<ServerHandle>,
    addr: String,
}

impl Follower {
    fn start(tag: &str) -> Follower {
        let dir = tempdir(tag);
        let svc = service();
        let mut config = ReplConfig::new(tag, &dir);
        config.role = Role::Follower;
        let node = ReplNode::open(Arc::clone(&svc), config).expect("follower recovery");
        let server_config =
            ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() };
        let handle = Server::bind_replicated(svc, server_config, Some(node))
            .expect("follower bind")
            .spawn()
            .expect("follower spawn");
        let addr = handle.addr().to_string();
        Follower { dir, handle: Some(handle), addr }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn p50_p95(samples_ms: &mut [f64]) -> (f64, f64) {
    samples_ms.sort_by(|a, b| a.total_cmp(b));
    let at = |q: f64| samples_ms[((samples_ms.len() - 1) as f64 * q).round() as usize];
    (at(0.50), at(0.95))
}

fn main() {
    let n = samples();
    let user = UserId::from("bench");
    let mut group = MicroBench::new("repl").sample_size(n);
    let mut curve: Vec<Json> = Vec::new();

    // Rung 1: the in-memory baseline.
    let svc = service();
    let mut i = 0usize;
    group.bench("in_memory", || {
        i += 1;
        if let ProfileOp::AddSelection { table, column, value, doi } = op(i) {
            svc.add_selection(user.clone(), &table, &column, value, doi).unwrap();
        }
    });

    // Rung 2: WAL append + fsync, leader-only durability.
    {
        let dir = tempdir("quorum1");
        let node = ReplNode::open(service(), ReplConfig::new("bench-leader", &dir))
            .expect("leader recovery");
        let mut i = 0usize;
        group.bench("wal_quorum1", || {
            i += 1;
            node.client_mutate(&user, op(i)).unwrap();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Rungs 3..5: leader + N followers over loopback, full-quorum acks.
    for followers in 1..=3usize {
        let peers: Vec<Follower> =
            (0..followers).map(|f| Follower::start(&format!("f{followers}_{f}"))).collect();
        let dir = tempdir(&format!("leader_n{followers}"));
        let mut config = ReplConfig::new(format!("bench-leader-n{followers}"), &dir);
        config.peers = peers.iter().map(|p| p.addr.clone()).collect();
        config.quorum = followers + 1;
        config.ship_timeout = Duration::from_millis(2_000);
        let node = ReplNode::open(service(), config).expect("leader recovery");

        let label = format!("quorum{}_followers{followers}", followers + 1);
        let mut latencies: Vec<f64> = Vec::with_capacity(n);
        let mut i = 0usize;
        group.bench(&label, || {
            i += 1;
            let t = Instant::now();
            node.client_mutate(&user, op(i)).unwrap();
            latencies.push(t.elapsed().as_secs_f64() * 1e3);
        });
        // The closure also ran during warm-up (where the peer links get
        // established); the curve is over the timed iterations only.
        let warmups = 3.min(n);
        let (p50, p95) = p50_p95(&mut latencies[warmups..]);
        println!("{label}: ack latency p50 {p50:.4} ms, p95 {p95:.4} ms");
        curve.push(
            Json::obj()
                .set("followers", followers as i64)
                .set("quorum", (followers + 1) as i64)
                .set("ack_p50_ms", p50)
                .set("ack_p95_ms", p95),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    let dir = workspace_results_dir();
    match group.write_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write micro_repl.json: {err}"),
    }
    annotate(&dir.join("micro_repl.json"), curve);
    match write_metrics_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write metrics.json: {err}"),
    }
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}

/// Add the `derived` block: the ack-quorum latency curve and the cost of
/// durability (WAL'd vs in-memory mutation, leader only).
fn annotate(path: &Path, curve: Vec<Json>) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let Ok(doc) = Json::parse(&text) else { return };
    let mean = |name: &str| -> Option<f64> {
        doc.get("benchmarks")?
            .as_array()?
            .iter()
            .find_map(|b| (b.get("name")?.as_str()? == name).then(|| b.get("mean_ms")?.as_f64())?)
    };
    let mut derived = Json::obj().set("quorum_curve", Json::Arr(curve));
    if let (Some(mem), Some(wal)) = (mean("in_memory"), mean("wal_quorum1")) {
        if mem > 0.0 {
            println!("durability overhead (wal_quorum1 / in_memory): {:.2}x", wal / mem);
            derived = derived.set("durability_overhead_factor", wal / mem);
        }
    }
    let doc = doc.set("derived", derived);
    if std::fs::write(path, doc.pretty()).is_err() {
        eprintln!("failed to annotate {}", path.display());
    }
}
