//! Criterion micro-benchmarks of preference integration: SQ vs MQ query
//! construction (the operation behind Figures 8 and 9, left panels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqp_core::prelude::*;
use pqp_core::Personalized;
use pqp_datagen::{
    generate, generate_profile, generate_queries, MovieDbConfig, ProfileGenConfig, QueryGenConfig,
};

fn personalized(k: usize, l: usize) -> Personalized {
    let pool = generate(MovieDbConfig { movies: 300, theatres: 8, ..Default::default() });
    let query = &generate_queries(3, &pool.pools, &QueryGenConfig::default())[0];
    let profile = generate_profile(
        "bench",
        &pool.pools,
        &ProfileGenConfig { selections: 80, seed: 9, ..Default::default() },
    );
    let graph = InMemoryGraph::build(&profile, pool.db.catalog()).unwrap();
    personalize(query, &graph, pool.db.catalog(), PersonalizeOptions::top_k(k, l)).unwrap()
}

fn bench_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("preference_integration");
    group.sample_size(30);
    for (k, l) in [(10usize, 1usize), (30, 1), (60, 1), (10, 3), (10, 5)] {
        let p = personalized(k, l);
        group.bench_with_input(
            BenchmarkId::new("sq", format!("k{k}_l{l}")),
            &p,
            |b, p| b.iter(|| p.sq().unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("mq", format!("k{k}_l{l}")),
            &p,
            |b, p| b.iter(|| p.mq().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_integration);
criterion_main!(benches);
