//! Micro-benchmarks of preference integration: SQ vs MQ query
//! construction (the operation behind Figures 8 and 9, left panels).

use pqp_bench::microbench::MicroBench;
use pqp_core::prelude::*;
use pqp_core::Personalized;
use pqp_datagen::{
    generate, generate_profile, generate_queries, MovieDbConfig, ProfileGenConfig, QueryGenConfig,
};

fn personalized(k: usize, l: usize) -> Personalized {
    let pool = generate(MovieDbConfig { movies: 300, theatres: 8, ..Default::default() });
    let query = &generate_queries(3, &pool.pools, &QueryGenConfig::default())[0];
    let profile = generate_profile(
        "bench",
        &pool.pools,
        &ProfileGenConfig { selections: 80, seed: 9, ..Default::default() },
    );
    let graph = InMemoryGraph::build(&profile, pool.db.catalog()).unwrap();
    personalize(query, &graph, pool.db.catalog(), PersonalizeOptions::builder().k(k).l(l).build())
        .unwrap()
}

fn main() {
    let mut group = MicroBench::new("preference_integration").sample_size(30);
    for (k, l) in [(10usize, 1usize), (30, 1), (60, 1), (10, 3), (10, 5)] {
        let p = personalized(k, l);
        group.bench(format!("sq/k{k}_l{l}"), || p.sq().unwrap());
        group.bench(format!("mq/k{k}_l{l}"), || p.mq().unwrap());
    }
    group.finish();
}
