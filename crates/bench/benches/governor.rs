//! Micro-benchmark of query-governor overhead: the 4-way join over the
//! movies schema (THEATRE ⋈ PLAY ⋈ MOVIE ⋈ GENRE) executed ungoverned and
//! under a fully-armed (but generous) [`Budget`] — deadline, row cap and
//! memory cap all active, so every cooperative checkpoint and charge in
//! the operator loops pays its real cost.
//!
//! Writes `results/micro_governor.json` with a `derived` block holding the
//! measured overhead percentage. Target: < 2% on the 4-way join (the
//! charges are batched at `CHARGE_BATCH_ROWS` and checkpoints strided, so
//! the per-row cost is a couple of atomic adds).

use pqp_bench::microbench::{write_metrics_json, MicroBench};
use pqp_datagen::{generate, MovieDbConfig};
use pqp_engine::ExecOptions;
use pqp_obs::{Budget, Json, QueryCtx};
use pqp_sql::parse_query;
use std::path::{Path, PathBuf};

const FOUR_WAY_JOIN: &str = "select TH.name, MV.title, GE.genre \
     from THEATRE TH, PLAY PL, MOVIE MV, GENRE GE \
     where TH.tid = PL.tid and PL.mid = MV.mid and MV.mid = GE.mid";

/// Generous limits: never trip, but keep every check armed.
fn armed_budget() -> Budget {
    Budget::unlimited().deadline_ms(600_000).max_rows(u64::MAX / 2).max_memory_bytes(u64::MAX / 2)
}

fn main() {
    let m = generate(MovieDbConfig { movies: 4_000, theatres: 60, ..Default::default() });
    let db = &m.db;
    let plan = db.plan(&parse_query(FOUR_WAY_JOIN).unwrap()).unwrap();
    let opts = ExecOptions::default();

    let rows = db.run_plan(&plan).unwrap().rows.len();
    let governed = db.run_plan_ctx(&plan, &opts, &QueryCtx::new(armed_budget())).unwrap();
    assert_eq!(governed.rows.len(), rows, "the governed run must not change the answer");
    println!("4-way join output: {rows} rows");

    let mut group = MicroBench::new("governor").sample_size(30);
    group.bench("join4_ungoverned", || db.run_plan(&plan).unwrap());
    group.bench("join4_governed", || {
        db.run_plan_ctx(&plan, &opts, &QueryCtx::new(armed_budget())).unwrap()
    });

    // Sequential sampling drifts far more than the effect under test on a
    // busy host, so the headline number is *paired*: alternate governed /
    // ungoverned runs and take the median per-pair ratio, which cancels
    // slow drift.
    let overhead_pct = paired_overhead_pct(
        || {
            db.run_plan(&plan).unwrap();
        },
        || {
            db.run_plan_ctx(&plan, &opts, &QueryCtx::new(armed_budget())).unwrap();
        },
    );
    println!("governor overhead on the 4-way join: {overhead_pct:+.2}% (paired, target < 2%)");

    let dir = workspace_results_dir();
    match group.write_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write micro_governor.json: {err}"),
    }
    annotate_overhead(&dir.join("micro_governor.json"), rows, overhead_pct);
    match write_metrics_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write metrics.json: {err}"),
    }
}

/// Median per-pair overhead of `governed` over `plain`, in percent, from
/// `PAIRS` alternating plain/governed runs (plus one warmup pair).
fn paired_overhead_pct(mut plain: impl FnMut(), mut governed: impl FnMut()) -> f64 {
    const PAIRS: usize = 30;
    let time = |f: &mut dyn FnMut()| {
        let t = std::time::Instant::now();
        f();
        t.elapsed().as_secs_f64()
    };
    plain();
    governed();
    let mut ratios: Vec<f64> = (0..PAIRS)
        .map(|i| {
            // Alternate which side goes first within the pair so neither
            // systematically benefits from a warmer cache.
            if i % 2 == 0 {
                let p = time(&mut plain);
                let g = time(&mut governed);
                g / p
            } else {
                let g = time(&mut governed);
                let p = time(&mut plain);
                g / p
            }
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (ratios[PAIRS / 2] - 1.0) * 100.0
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}

/// Re-open the written JSON and add a `derived` block: the paired-median
/// overhead (the headline number) plus the crude sequential-means ratio
/// for comparison.
fn annotate_overhead(path: &Path, join_rows: usize, paired_overhead_pct: f64) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let Ok(doc) = Json::parse(&text) else { return };
    let mean = |name: &str| -> Option<f64> {
        doc.get("benchmarks")?
            .as_array()?
            .iter()
            .find_map(|b| (b.get("name")?.as_str()? == name).then(|| b.get("mean_ms")?.as_f64())?)
    };
    let (Some(plain), Some(governed)) = (mean("join4_ungoverned"), mean("join4_governed")) else {
        return;
    };
    let derived = Json::obj()
        .set("overhead_pct_paired_median", paired_overhead_pct)
        .set("overhead_pct_sequential_means", (governed / plain - 1.0) * 100.0)
        .set("join4_rows", join_rows as i64)
        .set("target_pct", 2.0);
    let _ = std::fs::write(path, doc.set("derived", derived).pretty());
}
