//! K/L sweep of the three execution strategies for a ranked personalized
//! query: SQ, MQ, and the native rank operator (`Plan::TopK`).
//!
//! One query — the paper's running example, "movies playing tonight"
//! (`MOVIE ⋈ PLAY` with a date filter, the mandatory part every strategy
//! repeats or pushes down), one profile with 16 genre preferences
//! reachable through the MOVIE→GENRE join, and a sweep over
//! K ∈ {6, 8, 10, 12, 14, 16} selected preferences × L ∈ {1..4}
//! at-least-L matching. MQ and native run in their ranked top-N form
//! (`LIMIT 20` — where the operator's threshold-style early termination
//! pays off); SQ cannot rank, so its point is the unranked matching form
//! (the paper's own comparison), and it is skipped where `C(K, L)`
//! explodes past the practical OR-expansion size (skips are printed — no
//! silent caps).
//!
//! MQ and native are asserted equivalent (canonical rank order) before
//! anything is timed. Writes `results/micro_topk.json` (schema_version 2
//! `meta` block) with a `derived` block: per-corner speedups, the cost
//! model's per-point choice, and the measured-cheapest strategy at both
//! sweep ends.
//!
//! `PQP_TOPK_SMOKE=1` shrinks the sweep to its two ends — K ∈ {6, 14},
//! L ∈ {1, 3} — and the sample count to 3, for the CI/verify smoke gate
//! (the same equivalence assertion and output schema, a fraction of the
//! wall-clock).

use pqp_bench::microbench::{write_metrics_json, MicroBench};
use pqp_core::{
    build_execution, choose, personalize, InMemoryGraph, PersonalizeOptions, Personalized, Profile,
    Rewrite, StrategyChoice,
};
use pqp_engine::Database;
use pqp_obs::rng::{Rng, SmallRng};
use pqp_obs::Json;
use pqp_sql::parse_query;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};
use std::path::{Path, PathBuf};

const MOVIES: usize = 20_000;
const PLAYS: usize = 60_000;
const DATES: usize = 30;
const N_GENRES: usize = 16;
/// Fraction (percent) of movies carrying genre annotations: sparse,
/// like real attribute data, which keeps the witness sub-plans small.
const ANNOTATED_PCT: u32 = 10;

/// The paper's running example: what plays tonight. The `MOVIE ⋈ PLAY`
/// join plus the date filter is the *mandatory* work — the SQ/MQ rewrites
/// repeat it in every disjunct/partial, the native operator runs it once
/// and evaluates the K optional preferences as witness probes.
const TONIGHT_SQL: &str = "select MV.title from MOVIE MV, PLAY PL \
     where MV.mid = PL.mid and PL.date = 'd00'";
const TOP_N: u64 = 20;
/// SQ is benched only while `C(K, L)` stays below this many disjuncts —
/// each disjunct repeats the mandatory join, so large combinations take
/// whole seconds per run.
const SQ_DISJUNCT_CAP: u128 = 150;

/// The sweep axes: the full grid, or its two ends under `PQP_TOPK_SMOKE`.
fn sweep() -> (Vec<usize>, Vec<usize>, usize) {
    if std::env::var("PQP_TOPK_SMOKE").is_ok_and(|v| v != "0") {
        (vec![6, 14], vec![1, 3], 3)
    } else {
        (vec![6, 8, 10, 12, 14, 16], vec![1, 2, 3, 4], 6)
    }
}

fn genre_name(i: usize) -> String {
    format!("genre{i:02}")
}

/// MOVIE(mid, title) + PLAY(mid, date) + GENRE(mid, genre): no indexes,
/// ANALYZE'd. PLAY spreads uniformly over `DATES` dates, so the mandatory
/// date filter admits ~`PLAYS / DATES` rows. Only `ANNOTATED_PCT`% of
/// movies carry genres, but those carry a *run* of 3–6 consecutive
/// genres, so even at-least-4 matching against the top-K preferred genres
/// stays non-empty.
fn fixture() -> Database {
    let mut c = Catalog::new();
    c.create_table(TableSchema::new(
        "MOVIE",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
    ))
    .unwrap();
    c.create_table(TableSchema::new(
        "PLAY",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("date", DataType::Str)],
    ))
    .unwrap();
    c.create_table(TableSchema::new(
        "GENRE",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
    ))
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(0x709C_5EED);
    {
        let t = c.table("MOVIE").unwrap();
        let mut t = t.write();
        for mid in 0..MOVIES {
            t.insert(vec![Value::Int(mid as i64), Value::str(format!("Movie {mid:05}"))]).unwrap();
        }
        t.analyze().unwrap();
    }
    {
        let t = c.table("PLAY").unwrap();
        let mut t = t.write();
        for _ in 0..PLAYS {
            let mid = rng.next_u32() as usize % MOVIES;
            let date = rng.next_u32() as usize % DATES;
            t.insert(vec![Value::Int(mid as i64), Value::str(format!("d{date:02}"))]).unwrap();
        }
        t.analyze().unwrap();
    }
    {
        let t = c.table("GENRE").unwrap();
        let mut t = t.write();
        for mid in 0..MOVIES {
            if rng.next_u32() % 100 >= ANNOTATED_PCT {
                continue;
            }
            let n = 3 + (rng.next_u32() % 4) as usize;
            let first = rng.next_u32() as usize % N_GENRES;
            for j in 0..n {
                let g = genre_name((first + j) % N_GENRES);
                t.insert(vec![Value::Int(mid as i64), Value::str(g)]).unwrap();
            }
        }
        t.analyze().unwrap();
    }
    Database::new(c)
}

/// 16 genre preferences with geometrically decaying degrees (Zipf-like
/// user interest), all reachable through one MOVIE→GENRE join edge: K
/// selects exactly the top-K genres. The decay matters: the operator's
/// termination bound over the unprobed suffix is `1 − ∏(1 − dᵢ)`, which
/// only collapses below the running top-N floor when the tail degrees are
/// genuinely small. A near-flat profile keeps every witness relevant and
/// forces all K probes — same work as MQ, by design.
fn profile() -> Profile {
    let mut p = Profile::new("sweep");
    p.add_join("MOVIE", "mid", "GENRE", "mid", 1.0).unwrap();
    for i in 0..N_GENRES {
        p.add_selection("GENRE", "genre", genre_name(i), 0.9 * 0.6f64.powi(i as i32)).unwrap();
    }
    p
}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    (0..k.min(n - k)).fold(1u128, |acc, i| acc * (n - i) / (i + 1))
}

fn personalized(
    db: &Database,
    graph: &InMemoryGraph,
    k: usize,
    l: usize,
    rank: bool,
) -> Personalized {
    let q = parse_query(TONIGHT_SQL).unwrap();
    let opts = PersonalizeOptions::builder().k(k).l(l).build();
    let opts = if rank { opts.ranked() } else { opts };
    personalize(&q, graph, db.catalog(), opts).unwrap()
}

/// Canonical rank order: interest desc (NULL last), then title asc.
fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        let key = |r: &Vec<Value>| match r.last() {
            Some(Value::Float(f)) => (0u8, -f),
            _ => (1u8, 0.0),
        };
        key(a).partial_cmp(&key(b)).unwrap().then_with(|| a[0].cmp(&b[0]))
    });
    rows
}

fn main() {
    let db = fixture();
    let graph = InMemoryGraph::build(&profile(), db.catalog()).unwrap();

    // Equivalence gate before any timing: native ≡ ranked MQ (canonical
    // order) at a mid-sweep point, unlimited so LIMIT tie-picking cannot
    // mask a divergence.
    {
        let p = personalized(&db, &graph, 10, 2, true);
        let native = build_execution(&db, &p, Rewrite::NativeRank, None).unwrap();
        assert_eq!(native.rewrite, Rewrite::NativeRank, "fixture must support the native operator");
        let mq = build_execution(&db, &p, Rewrite::Mq, None).unwrap();
        let a = canonical(db.run_plan(&native.plan).unwrap().rows);
        let b = canonical(db.run_plan(&mq.plan).unwrap().rows);
        assert_eq!(a, b, "native diverged from ranked MQ at K=10 L=2");
        println!("equivalence gate: native ≡ ranked MQ on {} rows", a.len());
    }

    let (k_sweep, l_sweep, samples) = sweep();
    let mut group = MicroBench::new("topk").sample_size(samples);
    // (k, l, strategy label, estimated cost) plus the cost model's pick.
    let mut points: Vec<Json> = Vec::new();
    for &k in &k_sweep {
        for &l in &l_sweep {
            let ranked = personalized(&db, &graph, k, l, true);
            let mq = build_execution(&db, &ranked, Rewrite::Mq, Some(TOP_N)).unwrap();
            let native = build_execution(&db, &ranked, Rewrite::NativeRank, Some(TOP_N)).unwrap();
            assert_eq!(native.rewrite, Rewrite::NativeRank, "native unsupported at K={k} L={l}");
            group.bench(format!("k{k}_l{l}_mq"), || db.run_plan(&mq.plan).unwrap());
            group.bench(format!("k{k}_l{l}_native"), || db.run_plan(&native.plan).unwrap());
            let sq: Option<StrategyChoice> = if binomial(k as u128, l as u128) <= SQ_DISJUNCT_CAP {
                let unranked = personalized(&db, &graph, k, l, false);
                let sq = build_execution(&db, &unranked, Rewrite::Sq, None).unwrap();
                group.bench(format!("k{k}_l{l}_sq"), || db.run_plan(&sq.plan).unwrap());
                Some(sq)
            } else {
                println!(
                    "k{k}_l{l}_sq skipped: C({k},{l}) = {} disjuncts exceeds cap {}",
                    binomial(k as u128, l as u128),
                    SQ_DISJUNCT_CAP
                );
                None
            };
            let chosen = choose(&db, &ranked, Some(TOP_N)).unwrap();
            let mut point = Json::obj()
                .set("k", k as i64)
                .set("l", l as i64)
                .set("est_cost_mq", mq.cost)
                .set("est_cost_native", native.cost)
                .set("cost_model_choice", chosen.rewrite.label());
            if let Some(sq) = &sq {
                point = point.set("est_cost_sq", sq.cost);
            }
            points.push(point);
        }
    }

    let dir = workspace_results_dir();
    match group.write_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write micro_topk.json: {err}"),
    }
    annotate(&dir.join("micro_topk.json"), points);
    match write_metrics_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write metrics.json: {err}"),
    }
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}

/// Add the `derived` block: the sweep table (per-point estimated costs and
/// cost-model choice), the ISSUE's K=14 L=3 corner speedup (native vs the
/// best of SQ/MQ), and the measured-cheapest strategy at both sweep ends.
fn annotate(path: &Path, points: Vec<Json>) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let Ok(doc) = Json::parse(&text) else { return };
    let mean = |name: &str| -> Option<f64> {
        doc.get("benchmarks")?
            .as_array()?
            .iter()
            .find_map(|b| (b.get("name")?.as_str()? == name).then(|| b.get("mean_ms")?.as_f64())?)
    };
    // Only the ranked candidates (the ones the cost model actually chooses
    // between for a ranked query) — SQ stays in the table but cannot rank.
    let measured_winner = |k: usize, l: usize| -> Option<(String, f64)> {
        ["mq", "native"]
            .iter()
            .filter_map(|s| mean(&format!("k{k}_l{l}_{s}")).map(|m| (s.to_string(), m)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    };
    let corner = |k: usize, l: usize| -> Option<f64> {
        let native = mean(&format!("k{k}_l{l}_native"))?;
        let best_sql = [mean(&format!("k{k}_l{l}_mq")), mean(&format!("k{k}_l{l}_sq"))]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        (best_sql.is_finite()).then(|| best_sql / native)
    };
    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let end = |p: &Json| Some((p.get("k")?.as_i64()? as usize, p.get("l")?.as_i64()? as usize));
    let low_end = points.first().and_then(end);
    let high_end = points.last().and_then(end);
    let mut derived = Json::obj()
        .set("top_n", TOP_N as i64)
        .set("sweep", Json::Arr(points))
        .set("host_cores", host_cores as i64);
    if let Some(s) = corner(14, 3) {
        println!("native speedup vs best of SQ/MQ at K=14 L=3: {s:.2}x");
        derived = derived.set("native_speedup_k14_l3", s);
    }
    if let Some(s) = corner(6, 1) {
        derived = derived.set("native_speedup_k6_l1", s);
    }
    // The two ends of whatever sweep actually ran (the smoke sweep is a
    // sub-grid): at both, the measured winner should be the cost model's
    // pick for that point.
    for (p, key) in
        [(low_end, "measured_cheapest_low_end"), (high_end, "measured_cheapest_high_end")]
    {
        let Some((k, l)) = p else { continue };
        if let Some((name, ms)) = measured_winner(k, l) {
            println!("measured cheapest at K={k} L={l}: {name} ({ms:.3} ms)");
            derived = derived.set(
                key,
                Json::obj().set("k", k as i64).set("l", l as i64).set("strategy", name.as_str()),
            );
        }
    }
    let doc = doc.set("derived", derived);
    let _ = std::fs::write(path, doc.pretty());
}
