//! Micro-benchmarks of intra-query parallelism: a 4-way join over the
//! movies schema (THEATRE ⋈ PLAY ⋈ MOVIE ⋈ GENRE) and a broad filtered
//! scan, executed serially and under 2- and 4-thread [`ExecOptions`]
//! budgets.
//!
//! Writes `results/micro_parallel.json` with a `derived` block holding the
//! measured speedups and `host_cores` (`std::thread::available_parallelism`)
//! — speedups are only meaningful relative to the cores actually available:
//! on a single-core host the parallel runs measure partitioning overhead,
//! not speedup (see EXPERIMENTS.md).

use pqp_bench::microbench::{write_metrics_json, MicroBench};
use pqp_datagen::{generate, MovieDbConfig};
use pqp_engine::ExecOptions;
use pqp_obs::Json;
use pqp_sql::parse_query;
use std::path::{Path, PathBuf};

/// Threshold used for the parallel budgets: low enough that every scan and
/// join in the workload actually fans out (recorded in the JSON).
const MIN_PARALLEL_ROWS: usize = 512;

const FOUR_WAY_JOIN: &str = "select TH.name, MV.title, GE.genre \
     from THEATRE TH, PLAY PL, MOVIE MV, GENRE GE \
     where TH.tid = PL.tid and PL.mid = MV.mid and MV.mid = GE.mid";

const BROAD_SCAN: &str = "select MV.title, MV.year from MOVIE MV where MV.year > 1950";

fn main() {
    let m = generate(MovieDbConfig { movies: 4_000, theatres: 60, ..Default::default() });
    let db = &m.db;
    let join_plan = db.plan(&parse_query(FOUR_WAY_JOIN).unwrap()).unwrap();
    let scan_plan = db.plan(&parse_query(BROAD_SCAN).unwrap()).unwrap();
    let budget =
        |threads: usize| ExecOptions::with_threads(threads).min_parallel_rows(MIN_PARALLEL_ROWS);

    let rows = db.run_plan(&join_plan).unwrap().rows.len();
    println!("4-way join output: {rows} rows");
    for threads in [1, 2, 4] {
        assert_eq!(
            db.run_plan_with(&join_plan, &budget(threads)).unwrap().rows.len(),
            rows,
            "parallel join diverged at {threads} threads"
        );
    }

    let mut group = MicroBench::new("parallel").sample_size(20);
    group.bench("join4_serial", || db.run_plan(&join_plan).unwrap());
    group.bench("join4_t2", || db.run_plan_with(&join_plan, &budget(2)).unwrap());
    group.bench("join4_t4", || db.run_plan_with(&join_plan, &budget(4)).unwrap());
    group.bench("scan_serial", || db.run_plan(&scan_plan).unwrap());
    group.bench("scan_t4", || db.run_plan_with(&scan_plan, &budget(4)).unwrap());

    let dir = workspace_results_dir();
    match group.write_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write micro_parallel.json: {err}"),
    }
    annotate_speedups(&dir.join("micro_parallel.json"), rows);
    match write_metrics_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write metrics.json: {err}"),
    }
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}

/// Re-open the written JSON and add a `derived` block: the speedups, the
/// join output size, the threshold in force, and the host's core count.
fn annotate_speedups(path: &Path, join_rows: usize) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let Ok(doc) = Json::parse(&text) else { return };
    let mean = |name: &str| -> Option<f64> {
        doc.get("benchmarks")?
            .as_array()?
            .iter()
            .find_map(|b| (b.get("name")?.as_str()? == name).then(|| b.get("mean_ms")?.as_f64())?)
    };
    let (Some(js), Some(j2), Some(j4), Some(ss), Some(s4)) = (
        mean("join4_serial"),
        mean("join4_t2"),
        mean("join4_t4"),
        mean("scan_serial"),
        mean("scan_t4"),
    ) else {
        return;
    };
    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let derived = Json::obj()
        .set("join4_speedup_t2", js / j2)
        .set("join4_speedup_t4", js / j4)
        .set("scan_speedup_t4", ss / s4)
        .set("join4_rows", join_rows as i64)
        .set("min_parallel_rows", MIN_PARALLEL_ROWS as i64)
        .set("host_cores", host_cores as i64);
    println!(
        "4-way join speedup: {:.2}x (2 threads), {:.2}x (4 threads); scan: {:.2}x (4 threads) \
         [host cores: {host_cores}]",
        js / j2,
        js / j4,
        ss / s4
    );
    let doc = doc.set("derived", derived);
    let _ = std::fs::write(path, doc.pretty());
}
