//! Micro-benchmark of statistics-driven planning: a skewed 4-way join
//! where the fallback heuristics pick the wrong starting factor and real
//! statistics flip the join order (and unlock index access paths).
//!
//! Three measurements:
//!
//! 1. Wall time of the plan produced **without** statistics (planned
//!    before `ANALYZE`, so the fixed 0.05 boost favors the small table
//!    whose predicate keeps 90% of its rows).
//! 2. Wall time of the plan produced **with** statistics (starts at the
//!    genuinely selective factor, may promote `IndexJoin`).
//! 3. Max per-operator Q-error (`max(est/actual, actual/est)` over every
//!    operator span that reports both `est_rows` and `rows_out`) for each
//!    plan, from an EXPLAIN ANALYZE-style trace.
//!
//! Writes `results/micro_planner.json` with a `derived` block. Wall-clock
//! ratios are only meaningful relative to `host_cores` (see
//! EXPERIMENTS.md): both plans here run serially, so the comparison is
//! about operator order and access paths, not parallelism.

use pqp_bench::microbench::{write_metrics_json, MicroBench};
use pqp_engine::Database;
use pqp_obs::{Field, Json, SpanNode};
use pqp_sql::parse_query;
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema, Value};
use std::path::{Path, PathBuf};

/// Skewed 4-table star: R(id, cat) with a rare category (~1%), T(id, cat)
/// with a dominant category (~90%), S(r_id, t_id) fact table, U(t_id)
/// trailing fan-out. Scaled-up version of the planner regression test.
fn skewed_db() -> Database {
    let mut c = Catalog::new();
    let two_col = |name: &str| {
        TableSchema::new(
            name,
            vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("cat", DataType::Str)],
        )
        .with_primary_key(&["id"])
    };
    c.create_table(two_col("R")).unwrap();
    c.create_table(two_col("T")).unwrap();
    c.create_table(TableSchema::new(
        "S",
        vec![ColumnDef::new("r_id", DataType::Int), ColumnDef::new("t_id", DataType::Int)],
    ))
    .unwrap();
    c.create_table(TableSchema::new("U", vec![ColumnDef::new("t_id", DataType::Int)])).unwrap();
    {
        let r = c.table("R").unwrap();
        let mut r = r.write();
        for id in 0..10_000i64 {
            let cat = if id < 100 { "rare" } else { "bulk" };
            r.insert(vec![Value::Int(id), Value::str(cat)]).unwrap();
        }
    }
    {
        let t = c.table("T").unwrap();
        let mut t = t.write();
        for id in 0..4_000i64 {
            let cat = if id < 3_600 { "common" } else { "other" };
            t.insert(vec![Value::Int(id), Value::str(cat)]).unwrap();
        }
    }
    {
        let s = c.table("S").unwrap();
        let mut s = s.write();
        for i in 0..20_000i64 {
            s.insert(vec![Value::Int(i % 10_000), Value::Int(i % 4_000)]).unwrap();
        }
        s.create_index("r_id").unwrap();
    }
    {
        let u = c.table("U").unwrap();
        let mut u = u.write();
        for i in 0..8_000i64 {
            u.insert(vec![Value::Int(i % 4_000)]).unwrap();
        }
        u.create_index("t_id").unwrap();
    }
    Database::new(c)
}

const SKEWED_JOIN: &str = "select S.r_id, U.t_id from R, S, T, U \
     where R.id = S.r_id and S.t_id = T.id and T.id = U.t_id \
     and R.cat = 'rare' and T.cat = 'common'";

fn main() {
    let db = skewed_db();
    let q = parse_query(SKEWED_JOIN).unwrap();

    // Plan once without statistics, trace it (Q-error of the fallback
    // estimates), then ANALYZE and re-plan.
    let blind_plan = db.plan(&q).unwrap();
    let qerr_blind = traced_max_qerror(&db, &blind_plan);
    db.catalog().analyze_all().unwrap();
    let informed_plan = db.plan(&q).unwrap();
    let qerr_informed = traced_max_qerror(&db, &informed_plan);

    let rows = db.run_plan(&informed_plan).unwrap().rows.len();
    let blind_rows = db.run_plan(&blind_plan).unwrap().rows.len();
    assert_eq!(rows, blind_rows, "plans disagree on the answer");
    println!("skewed 4-way join output: {rows} rows");
    println!("max Q-error: {qerr_blind:.1} without stats, {qerr_informed:.1} with stats");

    // Both plans are executed post-ANALYZE so the runtime sees the same
    // catalog; the difference under test is the plan shape alone.
    let mut group = MicroBench::new("planner").sample_size(15);
    group.bench("join4_stats_off", || db.run_plan(&blind_plan).unwrap());
    group.bench("join4_stats_on", || db.run_plan(&informed_plan).unwrap());

    let dir = workspace_results_dir();
    match group.write_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write micro_planner.json: {err}"),
    }
    annotate(&dir.join("micro_planner.json"), rows, qerr_blind, qerr_informed);
    match write_metrics_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write metrics.json: {err}"),
    }
}

/// Execute the plan under a trace and return the worst per-operator
/// Q-error (`max(est/actual, actual/est)`, both sides clamped to >= 1 row
/// so empty operators don't divide by zero).
fn traced_max_qerror(db: &Database, plan: &pqp_engine::plan::Plan) -> f64 {
    pqp_obs::trace_begin("planner_bench");
    db.run_plan(plan).unwrap();
    let trace = pqp_obs::trace_end().expect("trace was begun");
    let mut worst = 1.0f64;
    collect_qerror(&trace.root, &mut worst);
    worst
}

fn collect_qerror(node: &SpanNode, worst: &mut f64) {
    if let (Some(Field::Int(est)), Some(Field::Int(actual))) =
        (node.field("est_rows"), node.field("rows_out"))
    {
        let est = (*est as f64).max(1.0);
        let actual = (*actual as f64).max(1.0);
        *worst = worst.max(est / actual).max(actual / est);
    }
    for child in &node.children {
        collect_qerror(child, worst);
    }
}

fn workspace_results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .join("results")
}

/// Re-open the written JSON and add a `derived` block: wall-time ratio,
/// Q-errors, output size and host cores.
fn annotate(path: &Path, rows: usize, qerr_blind: f64, qerr_informed: f64) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let Ok(doc) = Json::parse(&text) else { return };
    let mean = |name: &str| -> Option<f64> {
        doc.get("benchmarks")?
            .as_array()?
            .iter()
            .find_map(|b| (b.get("name")?.as_str()? == name).then(|| b.get("mean_ms")?.as_f64())?)
    };
    let (Some(off), Some(on)) = (mean("join4_stats_off"), mean("join4_stats_on")) else {
        return;
    };
    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let derived = Json::obj()
        .set("stats_speedup", off / on)
        .set("max_qerror_stats_off", qerr_blind)
        .set("max_qerror_stats_on", qerr_informed)
        .set("join4_rows", rows as i64)
        .set("host_cores", host_cores as i64);
    println!("stats-driven plan speedup: {:.2}x [host cores: {host_cores}]", off / on);
    let doc = doc.set("derived", derived);
    let _ = std::fs::write(path, doc.pretty());
}
