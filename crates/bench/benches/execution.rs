//! Micro-benchmarks of query execution: the initial query vs the
//! personalized SQ and MQ rewrites (the operation behind Figures 8–10,
//! right panels), plus the engine's ranking aggregate.

use pqp_bench::microbench::MicroBench;
use pqp_core::prelude::*;
use pqp_datagen::{
    generate, generate_profile, generate_queries, MovieDb, MovieDbConfig, ProfileGenConfig,
    QueryGenConfig,
};
use pqp_sql::Query;

fn setup() -> (MovieDb, Query, Vec<(usize, Query, Query)>) {
    let m = generate(MovieDbConfig { movies: 1_000, theatres: 20, ..Default::default() });
    let query = generate_queries(3, &m.pools, &QueryGenConfig::default())[0].clone();
    let profile = generate_profile(
        "bench",
        &m.pools,
        &ProfileGenConfig { selections: 80, seed: 5, ..Default::default() },
    );
    let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
    let mut variants = Vec::new();
    for k in [5usize, 20] {
        let p = personalize(
            &query,
            &graph,
            m.db.catalog(),
            PersonalizeOptions::builder().k(k).l(1).build(),
        )
        .unwrap();
        variants.push((k, p.sq().unwrap(), p.mq().unwrap()));
    }
    (m, query, variants)
}

fn main() {
    let (m, initial, variants) = setup();
    let mut group = MicroBench::new("query_execution").sample_size(20);
    group.bench("initial", || m.db.run_query(&initial).unwrap());
    for (k, sq, mq) in &variants {
        group.bench(format!("sq/{k}"), || m.db.run_query(sq).unwrap());
        group.bench(format!("mq/{k}"), || m.db.run_query(mq).unwrap());
    }
    group.finish();
}
