//! Criterion micro-benchmarks of query execution: the initial query vs the
//! personalized SQ and MQ rewrites (the operation behind Figures 8–10,
//! right panels), plus the engine's ranking aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqp_core::prelude::*;
use pqp_datagen::{
    generate, generate_profile, generate_queries, MovieDb, MovieDbConfig, ProfileGenConfig,
    QueryGenConfig,
};
use pqp_sql::Query;

fn setup() -> (MovieDb, Query, Vec<(usize, Query, Query)>) {
    let m = generate(MovieDbConfig { movies: 1_000, theatres: 20, ..Default::default() });
    let query = generate_queries(3, &m.pools, &QueryGenConfig::default())[0].clone();
    let profile = generate_profile(
        "bench",
        &m.pools,
        &ProfileGenConfig { selections: 80, seed: 5, ..Default::default() },
    );
    let graph = InMemoryGraph::build(&profile, m.db.catalog()).unwrap();
    let mut variants = Vec::new();
    for k in [5usize, 20] {
        let p = personalize(&query, &graph, m.db.catalog(), PersonalizeOptions::top_k(k, 1))
            .unwrap();
        variants.push((k, p.sq().unwrap(), p.mq().unwrap()));
    }
    (m, query, variants)
}

fn bench_execution(c: &mut Criterion) {
    let (m, initial, variants) = setup();
    let mut group = c.benchmark_group("query_execution");
    group.sample_size(20);
    group.bench_function("initial", |b| {
        b.iter(|| m.db.run_query(&initial).unwrap());
    });
    for (k, sq, mq) in &variants {
        group.bench_with_input(BenchmarkId::new("sq", k), sq, |b, q| {
            b.iter(|| m.db.run_query(q).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("mq", k), mq, |b, q| {
            b.iter(|| m.db.run_query(q).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
