//! Shared experimental setup: scales, workloads and helpers.

use pqp_core::prelude::*;
use pqp_core::Personalized;
use pqp_datagen::{
    generate, generate_profile, generate_queries, movies_catalog, MovieDb, MovieDbConfig,
    ProfileGenConfig, QueryGenConfig,
};
use pqp_engine::Database;
use pqp_sql::Query;

/// Experiment scale. `smoke` keeps every figure under a second or two (used
/// by tests); `default` reproduces the curves in minutes on a laptop;
/// `paper` approaches the paper's population sizes (slow).
#[derive(Debug, Clone)]
pub struct Scale {
    pub name: &'static str,
    pub movies: usize,
    pub theatres: usize,
    /// Profile sizes swept by Figure 6.
    pub fig6_sizes: Vec<usize>,
    /// Profiles per size and queries, Figure 6.
    pub fig6_profiles: usize,
    pub fig6_queries: usize,
    /// (profiles × queries) pairs for Figures 7–10.
    pub pairs_profiles: usize,
    pub pairs_queries: usize,
    /// Size of the profiles used for the K sweeps (must exceed max K).
    pub sweep_profile_size: usize,
    pub fig7a_ks: Vec<usize>,
    pub fig7b_ls: Vec<usize>,
    pub fig7c_ls: Vec<usize>,
    pub fig7c_k: usize,
    pub fig8_ks: Vec<usize>,
    pub fig9_ls: Vec<usize>,
}

impl Scale {
    pub fn smoke() -> Scale {
        Scale {
            name: "smoke",
            movies: 300,
            theatres: 8,
            fig6_sizes: vec![10, 30, 50],
            fig6_profiles: 3,
            fig6_queries: 5,
            pairs_profiles: 2,
            pairs_queries: 3,
            sweep_profile_size: 70,
            fig7a_ks: vec![10, 30, 50],
            fig7b_ls: vec![1, 3, 5],
            fig7c_ls: vec![1, 10, 25],
            fig7c_k: 60,
            fig8_ks: vec![0, 10, 30, 60],
            fig9_ls: vec![1, 3, 5],
        }
    }

    pub fn default_scale() -> Scale {
        Scale {
            name: "default",
            movies: 2_000,
            theatres: 40,
            fig6_sizes: (1..=10).map(|i| i * 10).collect(),
            fig6_profiles: 15,
            fig6_queries: 30,
            pairs_profiles: 6,
            pairs_queries: 6,
            sweep_profile_size: 80,
            fig7a_ks: vec![10, 20, 30, 40, 50],
            fig7b_ls: (1..=10).collect(),
            fig7c_ls: vec![1, 5, 10, 15, 20, 25],
            fig7c_k: 60,
            fig8_ks: vec![0, 5, 10, 20, 30, 40, 50, 60],
            fig9_ls: (1..=10).collect(),
        }
    }

    /// Approaches the paper's populations (100 queries, 100/200 profiles,
    /// larger catalog). Expect a long run.
    pub fn paper() -> Scale {
        Scale {
            name: "paper",
            movies: 20_000,
            theatres: 80,
            fig6_sizes: (1..=10).map(|i| i * 10).collect(),
            fig6_profiles: 100,
            fig6_queries: 100,
            pairs_profiles: 14,
            pairs_queries: 14,
            sweep_profile_size: 80,
            fig7a_ks: vec![10, 20, 30, 40, 50],
            fig7b_ls: (1..=10).collect(),
            fig7c_ls: vec![1, 5, 10, 15, 20, 25],
            fig7c_k: 60,
            fig8_ks: vec![0, 5, 10, 20, 30, 40, 50, 60],
            fig9_ls: (1..=10).collect(),
        }
    }

    pub fn by_name(name: &str) -> Option<Scale> {
        match name {
            "smoke" => Some(Scale::smoke()),
            "default" => Some(Scale::default_scale()),
            "paper" => Some(Scale::paper()),
            _ => None,
        }
    }
}

/// The shared workload of Figures 7–10: one database, a query set, and a
/// set of large profiles for the K sweeps.
pub struct Workload {
    pub scale: Scale,
    pub movie_db: MovieDb,
    pub queries: Vec<Query>,
    /// Broad (selection-free) queries used by Figure 10: their execution
    /// cost is dominated by result size, the regime the paper's Figure 10
    /// measures.
    pub broad_queries: Vec<Query>,
    pub profiles: Vec<Profile>,
    pub graphs: Vec<InMemoryGraph>,
}

impl Workload {
    /// Build the workload for a scale (deterministic).
    pub fn build(scale: Scale) -> Workload {
        let movie_db = generate(MovieDbConfig {
            movies: scale.movies,
            theatres: scale.theatres,
            ..Default::default()
        });
        let queries =
            generate_queries(scale.pairs_queries, &movie_db.pools, &QueryGenConfig::default());
        let broad_queries =
            generate_queries(scale.pairs_queries, &movie_db.pools, &QueryGenConfig::broad());
        let profiles: Vec<Profile> = (0..scale.pairs_profiles)
            .map(|i| {
                generate_profile(
                    &format!("sweep{i}"),
                    &movie_db.pools,
                    &ProfileGenConfig {
                        selections: scale.sweep_profile_size,
                        seed: 0xA5A5 + i as u64 * 101,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let graphs = profiles
            .iter()
            .map(|p| InMemoryGraph::build(p, movie_db.db.catalog()).expect("valid profile"))
            .collect();
        Workload { scale, movie_db, queries, broad_queries, profiles, graphs }
    }

    /// Personalize one (query, profile) pair at the given K/L.
    pub fn personalize(
        &self,
        query_idx: usize,
        profile_idx: usize,
        k: usize,
        l: usize,
        rank: bool,
    ) -> Personalized {
        let opts = if rank {
            PersonalizeOptions::builder().k(k).l(l).build().ranked()
        } else {
            PersonalizeOptions::builder().k(k).l(l).build()
        };
        personalize(
            &self.queries[query_idx],
            &self.graphs[profile_idx],
            self.movie_db.db.catalog(),
            opts,
        )
        .expect("personalization of generated workloads cannot fail")
    }

    /// All (query, profile) index pairs.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for q in 0..self.queries.len() {
            for p in 0..self.profiles.len() {
                out.push((q, p));
            }
        }
        out
    }

    pub fn db(&self) -> &Database {
        &self.movie_db.db
    }
}

/// A schema-only database used to host stored profiles for Figure 6 (the
/// data tables stay empty; only the profile side tables are populated, so
/// per-profile isolation is cheap).
pub fn schema_only_db() -> Database {
    Database::new(movies_catalog())
}
