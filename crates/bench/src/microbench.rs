//! A tiny std-only micro-benchmark runner (the workspace's stand-in for
//! criterion, which would break the offline build).
//!
//! Each benchmark warms up, runs a fixed number of timed iterations, prints
//! a one-line summary, and feeds every sample into the process-global
//! metrics registry (`pqp_obs`), so a run can end with a per-stage metric
//! breakdown written under `results/`.

use crate::harness::Stats;
use pqp_obs::Json;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A named group of micro-benchmarks sharing a sample size.
pub struct MicroBench {
    group: String,
    sample_size: usize,
    results: Vec<(String, Stats)>,
}

impl MicroBench {
    pub fn new(group: impl Into<String>) -> MicroBench {
        let group = group.into();
        println!("## {group}");
        MicroBench { group, sample_size: 30, results: Vec::new() }
    }

    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> MicroBench {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: a short warm-up, then `sample_size` timed calls.
    pub fn bench<T>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> T) {
        let label = label.into();
        for _ in 0..3.min(self.sample_size) {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            let ms = start.elapsed().as_secs_f64() * 1e3;
            samples.push(ms);
            pqp_obs::observe(&format!("{}.{}_ms", self.group, label), ms);
        }
        let stats = Stats::of(&samples);
        println!(
            "{:<40} {:>10.4} ms/iter  (p50 {:.4}, min {:.4}, max {:.4}, n={})",
            label, stats.mean, stats.p50, stats.min, stats.max, stats.n
        );
        self.results.push((label, stats));
    }

    /// Write the per-benchmark summaries as JSON under `dir`, named after
    /// the group.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let mut benches = Vec::new();
        for (label, s) in &self.results {
            benches.push(
                Json::obj()
                    .set("name", label.as_str())
                    .set("n", s.n as i64)
                    .set("mean_ms", s.mean)
                    .set("p50_ms", s.p50)
                    .set("min_ms", s.min)
                    .set("max_ms", s.max),
            );
        }
        let doc = Json::obj()
            .set("meta", pqp_obs::run_meta(&format!("micro_{}", self.group)))
            .set("group", self.group.as_str())
            .set("benchmarks", Json::Arr(benches));
        let path = dir.join(format!("micro_{}.json", self.group));
        std::fs::write(&path, doc.pretty())?;
        Ok(path)
    }

    /// Finish the group: write the JSON summary (and the global metric
    /// snapshot alongside it) under `results/`.
    pub fn finish(self) {
        let dir = PathBuf::from("results");
        match self.write_json(&dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write micro_{}.json: {err}", self.group),
        }
        match write_metrics_json(&dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write metrics.json: {err}"),
        }
    }
}

/// Snapshot the process-global metrics registry (pipeline counters and
/// histograms accumulated by the instrumented stages) to `dir/metrics.json`.
pub fn write_metrics_json(dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("metrics.json");
    let doc = Json::obj()
        .set("meta", pqp_obs::run_meta("metrics"))
        .set("metrics", pqp_obs::metrics::global_snapshot().to_json());
    std::fs::write(&path, doc.pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples_and_writes_json() {
        let mut mb = MicroBench::new("unit_test_group").sample_size(5);
        mb.bench("sum", || (0..1000u64).sum::<u64>());
        assert_eq!(mb.results.len(), 1);
        assert_eq!(mb.results[0].1.n, 5);

        let dir = std::env::temp_dir().join("pqp_microbench_test");
        let path = mb.write_json(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("group").and_then(Json::as_str), Some("unit_test_group"));
        assert_eq!(doc.get("benchmarks").and_then(Json::as_array).map(|a| a.len()), Some(1));
        std::fs::remove_file(path).unwrap();

        // The samples also landed in the global registry.
        let snap = pqp_obs::metrics::global_snapshot();
        let h = snap.histogram("unit_test_group.sum_ms").expect("histogram recorded");
        assert!(h.count() >= 5);
    }
}
