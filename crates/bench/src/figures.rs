//! The experiment runners, one per figure of the paper's §7.
//!
//! Every runner returns [`Experiment`]s whose series mirror the figure's
//! series; the `figures` binary prints them as markdown tables and writes
//! CSVs under `results/`.

use crate::context::{schema_only_db, Scale, Workload};
use crate::harness::{time_ms, Experiment, Series, Stats};
use pqp_core::prelude::*;
use pqp_core::{select_preferences, InterestCriterion, QueryGraph};
use pqp_datagen::{generate_profile, generate_queries, ProfileGenConfig, QueryGenConfig};

/// Figure 6: Preference Selection Time with Profile Size, for K ∈ {5,10,15}.
///
/// Profiles are *stored in database tables* (as in the paper's prototype)
/// and the selection algorithm fetches adjacency lists with SQL — the
/// per-access cost is what shapes this figure. A companion experiment
/// records the number of adjacency fetches, and an in-memory-backend
/// variant isolates the pure graph-algorithm cost.
pub fn fig6(scale: &Scale) -> Vec<Experiment> {
    let ks = [5usize, 10, 15];
    // Queries are generated over a catalog-scale-independent pool: Figure 6
    // never touches the data tables, so a small pool database suffices.
    let pool_db = pqp_datagen::generate(pqp_datagen::MovieDbConfig {
        movies: 300,
        theatres: 8,
        ..Default::default()
    });
    let queries = generate_queries(scale.fig6_queries, &pool_db.pools, &QueryGenConfig::default());

    let mut stored_time = Experiment::new(
        "fig6",
        "Preference Selection Time with Profile Size (stored profiles)",
        "profile size",
        "selection time (ms, mean)",
    );
    let mut memory_time = Experiment::new(
        "fig6_inmemory",
        "Preference Selection Time with Profile Size (in-memory graph)",
        "profile size",
        "selection time (ms, mean)",
    );
    let mut accesses = Experiment::new(
        "fig6_accesses",
        "Adjacency fetches per selection with Profile Size",
        "profile size",
        "graph accesses (mean)",
    );
    let mut penalized = Experiment::new(
        "fig6_penalized",
        "Preference Selection Time with Profile Size (stored profiles, \
         simulated 100µs/access round trip — the paper's regime)",
        "profile size",
        "selection time (ms, mean)",
    );
    let penalty = std::time::Duration::from_micros(100);
    for &k in &ks {
        let mut s_stored = Series::new(format!("K={k}"));
        let mut s_mem = Series::new(format!("K={k}"));
        let mut s_acc = Series::new(format!("K={k}"));
        let mut s_pen = Series::new(format!("K={k}"));
        for &size in &scale.fig6_sizes {
            let mut t_stored = Vec::new();
            let mut t_mem = Vec::new();
            let mut n_acc = Vec::new();
            let mut t_pen = Vec::new();
            for pi in 0..scale.fig6_profiles {
                let profile = generate_profile(
                    &format!("p{size}_{pi}"),
                    &pool_db.pools,
                    &ProfileGenConfig {
                        selections: size,
                        seed: 31 + (size * 1000 + pi) as u64,
                        ..Default::default()
                    },
                );
                // Stored backend: a schema-only host database per profile.
                let mut host = schema_only_db();
                StoredProfileGraph::store(&mut host, &profile).expect("store profile");
                let stored = StoredProfileGraph::open(&host, &profile.user);
                let memory = InMemoryGraph::build(&profile, host.catalog()).expect("valid profile");
                for q in &queries {
                    let qg = QueryGraph::from_select(
                        q.as_select().expect("plain select"),
                        host.catalog(),
                    )
                    .expect("generated query maps onto the graph");
                    let ci = InterestCriterion::TopK(k);
                    let (out, ms) = time_ms(|| select_preferences(&qg, &stored, &ci));
                    t_stored.push(ms);
                    n_acc.push(out.stats.graph_accesses as f64);
                    let (_, ms) = time_ms(|| select_preferences(&qg, &memory, &ci));
                    t_mem.push(ms);
                    // Simulated per-access round trip: accesses dominate, so
                    // derive the time analytically rather than spinning
                    // (identical result, no wasted wall clock).
                    t_pen.push(ms + out.stats.graph_accesses as f64 * penalty.as_secs_f64() * 1e3);
                }
            }
            s_stored.push(size as f64, Stats::of(&t_stored).mean);
            s_mem.push(size as f64, Stats::of(&t_mem).mean);
            s_acc.push(size as f64, Stats::of(&n_acc).mean);
            s_pen.push(size as f64, Stats::of(&t_pen).mean);
        }
        stored_time.series.push(s_stored);
        memory_time.series.push(s_mem);
        accesses.series.push(s_acc);
        penalized.series.push(s_pen);
    }
    vec![stored_time, memory_time, accesses, penalized]
}

/// Shared machinery of Figure 7: % of initial-query rows returned by the
/// personalized (MQ) query.
fn result_size_percent(w: &Workload, k: usize, l: usize) -> f64 {
    let mut percents = Vec::new();
    for (qi, pi) in w.pairs() {
        let initial = w.db().run_query(&w.queries[qi]).expect("initial query runs");
        // Compare against the *distinct* projected rows: the personalized
        // query is a set, the initial one a multiset.
        let mut distinct_rows = initial.rows.clone();
        distinct_rows.sort();
        distinct_rows.dedup();
        if distinct_rows.is_empty() {
            continue;
        }
        let p = w.personalize(qi, pi, k, l, false);
        let mq = p.mq().expect("MQ integration");
        let personalized = w.db().run_query(&mq).expect("personalized query runs");
        percents.push(100.0 * personalized.len() as f64 / distinct_rows.len() as f64);
    }
    Stats::of(&percents).mean
}

/// Figure 7(a): result size with K (L = 1).
pub fn fig7a(w: &Workload) -> Vec<Experiment> {
    let mut e = Experiment::new(
        "fig7a",
        "Size of the Results of Personalized Queries with K (L=1)",
        "K",
        "% of rows of the initial query",
    );
    let mut s = Series::new("% of initial rows");
    for &k in &w.scale.fig7a_ks {
        s.push(k as f64, result_size_percent(w, k, 1));
    }
    e.series.push(s);
    vec![e]
}

/// Figure 7(b): result size with L (K = 10).
pub fn fig7b(w: &Workload) -> Vec<Experiment> {
    let mut e = Experiment::new(
        "fig7b",
        "Size of the Results of Personalized Queries with L (K=10)",
        "L",
        "% of rows of the initial query",
    );
    let mut s = Series::new("% of initial rows");
    for &l in &w.scale.fig7b_ls {
        s.push(l as f64, result_size_percent(w, 10, l));
    }
    e.series.push(s);
    vec![e]
}

/// Figure 7(c): result size with L (K = 60).
pub fn fig7c(w: &Workload) -> Vec<Experiment> {
    let mut e = Experiment::new(
        "fig7c",
        "Size of the Results of Personalized Queries with L (K=60)",
        "L",
        "% of rows of the initial query",
    );
    let mut s = Series::new("% of initial rows");
    for &l in &w.scale.fig7c_ls {
        s.push(l as f64, result_size_percent(w, w.scale.fig7c_k, l));
    }
    e.series.push(s);
    vec![e]
}

/// Figures 8 and 9 share this: integration + execution time of SQ vs MQ.
fn sq_mq_times(w: &Workload, k: usize, l: usize) -> (f64, f64, f64, f64) {
    let mut int_sq = Vec::new();
    let mut int_mq = Vec::new();
    let mut exec_sq = Vec::new();
    let mut exec_mq = Vec::new();
    // Warm-up: one untimed round absorbs lazy-allocation cold-start cost.
    if let Some(&(qi, pi)) = w.pairs().first() {
        let p = w.personalize(qi, pi, k, l, false);
        let _ = p.sq();
        let _ = p.mq();
    }
    for (qi, pi) in w.pairs() {
        let p = w.personalize(qi, pi, k, l, false);
        let (sq, ms) = time_ms(|| p.sq());
        int_sq.push(ms);
        let (mq, ms) = time_ms(|| p.mq());
        int_mq.push(ms);
        if let Ok(sq) = sq {
            let (r, ms) = time_ms(|| w.db().run_query(&sq));
            r.expect("SQ runs");
            exec_sq.push(ms);
        }
        let mq = mq.expect("MQ integration");
        let (r, ms) = time_ms(|| w.db().run_query(&mq));
        r.expect("MQ runs");
        exec_mq.push(ms);
    }
    (
        Stats::of(&int_sq).mean,
        Stats::of(&int_mq).mean,
        Stats::of(&exec_sq).mean,
        Stats::of(&exec_mq).mean,
    )
}

/// Figure 8: SQ vs MQ with K (L = 1): integration and execution times.
pub fn fig8(w: &Workload) -> Vec<Experiment> {
    let mut integration = Experiment::new(
        "fig8_integration",
        "Preference Integration Times with K (L=1)",
        "K",
        "integration time (ms, mean)",
    );
    let mut execution = Experiment::new(
        "fig8_execution",
        "Execution Times with K (L=1)",
        "K",
        "execution time (ms, mean)",
    );
    let mut i_sq = Series::new("SQ");
    let mut i_mq = Series::new("MQ");
    let mut e_sq = Series::new("SQ");
    let mut e_mq = Series::new("MQ");
    for &k in &w.scale.fig8_ks {
        let (isq, imq, esq, emq) = sq_mq_times(w, k, 1.min(k));
        i_sq.push(k as f64, isq);
        i_mq.push(k as f64, imq);
        e_sq.push(k as f64, esq);
        e_mq.push(k as f64, emq);
    }
    integration.series = vec![i_sq, i_mq];
    execution.series = vec![e_sq, e_mq];
    vec![integration, execution]
}

/// Figure 9: SQ vs MQ with L (K = 10): integration and execution times.
pub fn fig9(w: &Workload) -> Vec<Experiment> {
    let mut integration = Experiment::new(
        "fig9_integration",
        "Preference Integration Times with L (K=10)",
        "L",
        "integration time (ms, mean)",
    );
    let mut execution = Experiment::new(
        "fig9_execution",
        "Execution Times with L (K=10)",
        "L",
        "execution time (ms, mean)",
    );
    let mut i_sq = Series::new("SQ");
    let mut i_mq = Series::new("MQ");
    let mut e_sq = Series::new("SQ");
    let mut e_mq = Series::new("MQ");
    for &l in &w.scale.fig9_ls {
        let (isq, imq, esq, emq) = sq_mq_times(w, 10, l);
        i_sq.push(l as f64, isq);
        i_mq.push(l as f64, imq);
        e_sq.push(l as f64, esq);
        e_mq.push(l as f64, emq);
    }
    integration.series = vec![i_sq, i_mq];
    execution.series = vec![e_sq, e_mq];
    vec![integration, execution]
}

/// Figure 10: performance of personalization (MQ): initial-query execution
/// vs personalized-query execution vs personalization time, swept over K
/// (L=1) and over L (K=10).
pub fn fig10(w: &Workload) -> Vec<Experiment> {
    let mut with_k = Experiment::new(
        "fig10_k",
        "Performance of Personalization with K (L=1, MQ)",
        "K",
        "time (ms, mean)",
    );
    let mut with_l = Experiment::new(
        "fig10_l",
        "Performance of Personalization with L (K=10, MQ)",
        "L",
        "time (ms, mean)",
    );

    // Figure 10 measures the regime the paper describes — broad initial
    // queries whose execution cost is dominated by result size — so it uses
    // the selection-free query set.
    let measure = |k: usize, l: usize| -> (f64, f64, f64) {
        let mut t_initial = Vec::new();
        let mut t_personalized = Vec::new();
        let mut t_personalization = Vec::new();
        for (qi, pi) in w.pairs() {
            let query = &w.broad_queries[qi];
            let (r, ms) = time_ms(|| w.db().run_query(query));
            r.expect("initial runs");
            t_initial.push(ms);
            // Personalization time = preference selection + MQ integration.
            let (mq, ms) = time_ms(|| {
                let p = personalize(
                    query,
                    &w.graphs[pi],
                    w.db().catalog(),
                    PersonalizeOptions::builder().k(k).l(l).build(),
                )
                .expect("personalize");
                p.mq().expect("MQ integration")
            });
            t_personalization.push(ms);
            let (r, ms) = time_ms(|| w.db().run_query(&mq));
            r.expect("personalized runs");
            t_personalized.push(ms);
        }
        (
            Stats::of(&t_initial).mean,
            Stats::of(&t_personalized).mean,
            Stats::of(&t_personalization).mean,
        )
    };

    let mut k_init = Series::new("Initial Query Exec.Time");
    let mut k_pers = Series::new("Personal. Query Exec.Time");
    let mut k_time = Series::new("Personalization Time");
    for &k in &w.scale.fig8_ks {
        let (a, b, c) = measure(k, 1.min(k));
        k_init.push(k as f64, a);
        k_pers.push(k as f64, b);
        k_time.push(k as f64, c);
    }
    with_k.series = vec![k_init, k_pers, k_time];

    let mut l_init = Series::new("Initial Query Exec.Time");
    let mut l_pers = Series::new("Personal. Query Exec.Time");
    let mut l_time = Series::new("Personalization Time");
    for &l in &w.scale.fig9_ls {
        let (a, b, c) = measure(10, l);
        l_init.push(l as f64, a);
        l_pers.push(l as f64, b);
        l_time.push(l as f64, c);
    }
    with_l.series = vec![l_init, l_pers, l_time];

    vec![with_k, with_l]
}

/// Ablation: the combination-function choice (paper's product/`1−∏(1−d)`
/// vs the admissible-but-degenerate min/max family) — how many of the
/// top-K preferences change, and how the selected degrees differ.
pub fn ablation_combinators(w: &Workload) -> Vec<Experiment> {
    use pqp_core::{select_preferences_with, MinMaxCombinator, PaperCombinator};
    let mut e = Experiment::new(
        "ablation_combinators",
        "Top-K overlap between paper and min/max combination semantics",
        "K",
        "fraction of shared preferences (mean)",
    );
    let mut overlap = Series::new("overlap");
    let mut paper_len = Series::new("avg path length (paper)");
    let mut minmax_len = Series::new("avg path length (min/max)");
    for &k in &[5usize, 10, 15] {
        let mut shares = Vec::new();
        let mut lens_p = Vec::new();
        let mut lens_m = Vec::new();
        for (qi, pi) in w.pairs() {
            let qg = QueryGraph::from_select(w.queries[qi].as_select().unwrap(), w.db().catalog())
                .unwrap();
            let ci = InterestCriterion::TopK(k);
            let a = select_preferences_with(&qg, &w.graphs[pi], &ci, &PaperCombinator);
            let b = select_preferences_with(&qg, &w.graphs[pi], &ci, &MinMaxCombinator);
            let set_a: Vec<String> = a.selected.iter().map(|p| p.to_string()).collect();
            let set_b: Vec<String> = b.selected.iter().map(|p| p.to_string()).collect();
            let inter = set_a.iter().filter(|x| set_b.contains(x)).count();
            if !set_a.is_empty() {
                shares.push(inter as f64 / set_a.len() as f64);
            }
            lens_p.extend(a.selected.iter().map(|p| p.len() as f64));
            lens_m.extend(b.selected.iter().map(|p| p.len() as f64));
        }
        overlap.push(k as f64, Stats::of(&shares).mean);
        paper_len.push(k as f64, Stats::of(&lens_p).mean);
        minmax_len.push(k as f64, Stats::of(&lens_m).mean);
    }
    e.series = vec![overlap, paper_len, minmax_len];
    vec![e]
}

/// Ablation: the engine's OR-expansion rewrite — SQ execution time with and
/// without it. Without the rewrite, preference tables referenced only
/// inside the disjunction plan as cross products, so this runs on a
/// deliberately *micro* database (the unexpanded cost grows multiplicatively
/// with every table a preference path adds).
pub fn ablation_or_expansion() -> Vec<Experiment> {
    let micro = pqp_datagen::generate(pqp_datagen::MovieDbConfig {
        movies: 20,
        theatres: 2,
        days: 2,
        plays_per_day: 2,
        ..Default::default()
    });
    // The query/profile seeds are chosen so the selected preference paths
    // pull in tables outside the query (the regime where the unexpanded plan
    // degenerates into cross products).
    let queries =
        generate_queries(4, &micro.pools, &QueryGenConfig { seed: 1, ..Default::default() });
    let profile = generate_profile(
        "ablation",
        &micro.pools,
        &ProfileGenConfig { selections: 30, seed: 5, ..Default::default() },
    );
    let graph = InMemoryGraph::build(&profile, micro.db.catalog()).expect("valid profile");

    let mut e = Experiment::new(
        "ablation_or_expansion",
        "SQ execution time with and without OR-expansion (micro database, L=1)",
        "K",
        "execution time (ms, mean)",
    );
    let mut with = Series::new("with OR-expansion");
    let mut without = Series::new("without (cross products)");
    for &k in &[1usize, 2, 3] {
        let mut t_with = Vec::new();
        let mut t_without = Vec::new();
        for q in &queries {
            let p = personalize(
                q,
                &graph,
                micro.db.catalog(),
                PersonalizeOptions::builder().k(k).l(1).build(),
            )
            .expect("personalize");
            let Ok(sq) = p.sq() else { continue };
            let (r, ms) = time_ms(|| {
                let plan = micro.db.plan(&sq).expect("plan");
                pqp_engine::exec::execute(&plan, micro.db.catalog())
            });
            r.expect("expanded SQ runs");
            t_with.push(ms);
            let (r, ms) = time_ms(|| {
                let plan = micro.db.plan_unexpanded(&sq).expect("plan");
                pqp_engine::exec::execute(&plan, micro.db.catalog())
            });
            r.expect("unexpanded SQ runs");
            t_without.push(ms);
        }
        with.push(k as f64, Stats::of(&t_with).mean);
        without.push(k as f64, Stats::of(&t_without).mean);
    }
    e.series = vec![with, without];
    vec![e]
}
