//! Regenerate the paper's figures.
//!
//! ```text
//! figures [all|fig6|fig7a|fig7b|fig7c|fig8|fig9|fig10|ablations] ...
//!         [--scale smoke|default|paper] [--out DIR]
//! ```
//!
//! Prints every experiment as a markdown table and writes one CSV per
//! experiment under the output directory (default `results/`).

use pqp_bench::context::{Scale, Workload};
use pqp_bench::figures;
use pqp_bench::harness::Experiment;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_scale();
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let name = args.get(i + 1).cloned().unwrap_or_default();
                scale = Scale::by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown scale `{name}` (use smoke|default|paper)");
                    std::process::exit(2);
                });
                args.drain(i..=i + 1);
            }
            "--out" => {
                out_dir = PathBuf::from(args.get(i + 1).cloned().unwrap_or_default());
                args.drain(i..=i + 1);
            }
            _ => i += 1,
        }
    }
    targets.extend(args);
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    const KNOWN: &[&str] =
        &["all", "fig6", "fig7a", "fig7b", "fig7c", "fig8", "fig9", "fig10", "ablations"];
    for t in &targets {
        if !KNOWN.contains(&t.as_str()) {
            eprintln!("unknown target `{t}` (use {})", KNOWN.join("|"));
            std::process::exit(2);
        }
    }
    let all = targets.iter().any(|t| t == "all");
    let wants = |name: &str| all || targets.iter().any(|t| t == name);

    println!("# pqp experiment run (scale: {})\n", scale.name);
    let t0 = Instant::now();

    let mut experiments: Vec<Experiment> = Vec::new();

    if wants("fig6") {
        run("fig6", || figures::fig6(&scale), &mut experiments);
    }

    let needs_workload =
        ["fig7a", "fig7b", "fig7c", "fig8", "fig9", "fig10", "ablations"].iter().any(|f| wants(f));
    if needs_workload {
        eprintln!("building workload (movies={}) ...", scale.movies);
        let w = Workload::build(scale.clone());
        if wants("fig7a") {
            run("fig7a", || figures::fig7a(&w), &mut experiments);
        }
        if wants("fig7b") {
            run("fig7b", || figures::fig7b(&w), &mut experiments);
        }
        if wants("fig7c") {
            run("fig7c", || figures::fig7c(&w), &mut experiments);
        }
        if wants("fig8") {
            run("fig8", || figures::fig8(&w), &mut experiments);
        }
        if wants("fig9") {
            run("fig9", || figures::fig9(&w), &mut experiments);
        }
        if wants("fig10") {
            run("fig10", || figures::fig10(&w), &mut experiments);
        }
        if wants("ablations") {
            run("ablation_combinators", || figures::ablation_combinators(&w), &mut experiments);
            run("ablation_or_expansion", figures::ablation_or_expansion, &mut experiments);
        }
    }

    for e in &experiments {
        match e.write_csv(&out_dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(err) => eprintln!("failed to write {}: {err}", e.id),
        }
    }
    // Per-stage metric breakdown (pipeline counters + per-figure wall-time
    // histograms) accumulated by the instrumented stages during the run.
    match pqp_bench::write_metrics_json(&out_dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("failed to write metrics.json: {err}"),
    }
    eprintln!("\ntotal wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

fn run(name: &str, f: impl FnOnce() -> Vec<Experiment>, experiments: &mut Vec<Experiment>) {
    eprintln!("running {name} ...");
    let t = Instant::now();
    let out = f();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    pqp_obs::observe(&format!("figure.{name}.wall_ms"), ms);
    eprintln!("  {name} done in {:.1}s", ms / 1e3);
    for e in &out {
        println!("{}", e.to_markdown());
    }
    experiments.extend(out);
}
