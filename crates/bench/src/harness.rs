//! Experiment harness: timing, aggregation, table printing and CSV output
//! shared by every figure runner.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Time a closure, returning (result, milliseconds).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Simple summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    pub n: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
}

impl Stats {
    /// Compute stats; an empty sample yields zeros.
    pub fn of(sample: &[f64]) -> Stats {
        if sample.is_empty() {
            return Stats { n: 0, mean: 0.0, min: 0.0, max: 0.0, p50: 0.0 };
        }
        let mut sorted: Vec<f64> = sample.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Stats {
            n: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            p50: sorted[sorted.len() / 2],
        }
    }
}

/// One output series of an experiment: y values (means) over an x sweep.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    /// (x, mean y) points in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Series {
        Series { label: label.into(), points: Vec::new() }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A complete experiment result: an id (fig6, fig7a, ...), axis labels and
/// one or more series over the same x sweep.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
}

impl Experiment {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Experiment {
        Experiment {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Render as a markdown table (x column + one column per series).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let mut header = format!("| {} |", self.x_label);
        let mut rule = String::from("|---|");
        for s in &self.series {
            let _ = write!(header, " {} |", s.label);
            rule.push_str("---|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let mut row = format!("| {x} |");
            for s in &self.series {
                match s.points.get(i) {
                    Some((_, y)) => {
                        let _ = write!(row, " {y:.4} |");
                    }
                    None => row.push_str("  |"),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(out, "\n({} = series values)", self.y_label);
        out
    }

    /// Render as CSV: `x,series1,series2,...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let _ = writeln!(out, "{}", header.join(","));
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                row.push(s.points.get(i).map(|(_, y)| format!("{y}")).unwrap_or_default());
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Write the CSV under `dir/<id>.csv`, creating the directory.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_sample() {
        let s = Stats::of(&[3.0, 1.0, 2.0, 10.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(Stats::of(&[]).n, 0);
    }

    #[test]
    fn time_ms_measures_something() {
        let (v, ms) = time_ms(|| (0..100_000u64).sum::<u64>());
        assert!(v > 0);
        assert!(ms >= 0.0);
    }

    #[test]
    fn markdown_and_csv_shapes() {
        let mut e = Experiment::new("figX", "demo", "K", "time (ms)");
        let mut s1 = Series::new("SQ");
        s1.push(1.0, 0.5);
        s1.push(2.0, 0.75);
        let mut s2 = Series::new("MQ");
        s2.push(1.0, 0.1);
        s2.push(2.0, 0.2);
        e.series = vec![s1, s2];
        let md = e.to_markdown();
        assert!(md.contains("| K | SQ | MQ |"), "{md}");
        assert!(md.contains("| 1 | 0.5000 | 0.1000 |"), "{md}");
        let csv = e.to_csv();
        assert!(csv.starts_with("K,SQ,MQ\n"), "{csv}");
        assert!(csv.contains("2,0.75,0.2"), "{csv}");
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("pqp_bench_test");
        let mut e = Experiment::new("figtest", "t", "x", "y");
        let mut s = Series::new("a");
        s.push(1.0, 2.0);
        e.series.push(s);
        let path = e.write_csv(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }
}
