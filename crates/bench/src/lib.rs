//! # pqp-bench
//!
//! The experiment harness regenerating every figure of the paper's
//! evaluation (§7), plus ablation experiments for the design choices called
//! out in DESIGN.md.
//!
//! Run everything: `cargo run --release -p pqp-bench --bin figures -- all`
//! (add `--scale smoke|default|paper`). CSVs land in `results/`, and a
//! markdown report is printed.

pub mod context;
pub mod figures;
pub mod harness;
pub mod microbench;

pub use context::{Scale, Workload};
pub use harness::{time_ms, Experiment, Series, Stats};
pub use microbench::{write_metrics_json, MicroBench};
