//! Harness smoke tests: every figure runner must produce well-formed,
//! non-degenerate experiments at the smoke scale (guards the experiment
//! code against rot — the figures are deliverables, not dead code).

use pqp_bench::context::{Scale, Workload};
use pqp_bench::figures;
use pqp_bench::harness::Experiment;

fn check(experiments: &[Experiment], expect_ids: &[&str]) {
    assert_eq!(experiments.len(), expect_ids.len());
    for (e, id) in experiments.iter().zip(expect_ids) {
        assert_eq!(&e.id, id);
        assert!(!e.series.is_empty(), "{id}: no series");
        for s in &e.series {
            assert!(!s.points.is_empty(), "{id}/{}: no points", s.label);
            for (x, y) in &s.points {
                assert!(x.is_finite() && y.is_finite(), "{id}/{}: non-finite point", s.label);
                assert!(*y >= 0.0, "{id}/{}: negative measurement", s.label);
            }
        }
        // CSV and markdown render without panicking and carry the series.
        let csv = e.to_csv();
        assert!(csv.lines().count() >= 2, "{id}: empty csv");
        assert!(e.to_markdown().contains(&e.id));
    }
}

#[test]
fn fig6_smoke() {
    let exps = figures::fig6(&Scale::smoke());
    check(&exps, &["fig6", "fig6_inmemory", "fig6_accesses", "fig6_penalized"]);
    // The access-count series must decrease with profile size (the paper's
    // mechanism).
    let acc = &exps[2].series[0].points;
    assert!(
        acc.first().unwrap().1 >= acc.last().unwrap().1,
        "accesses should not grow with profile size: {acc:?}"
    );
}

#[test]
fn fig7_fig8_fig9_fig10_smoke() {
    let w = Workload::build(Scale::smoke());

    let f7a = figures::fig7a(&w);
    check(&f7a, &["fig7a"]);
    // Percentages stay in [0, 100] and grow with K.
    let pts = &f7a[0].series[0].points;
    assert!(pts.iter().all(|(_, y)| (0.0..=100.0).contains(y)), "{pts:?}");
    assert!(pts.first().unwrap().1 <= pts.last().unwrap().1 + 1e-9, "{pts:?}");

    let f7b = figures::fig7b(&w);
    check(&f7b, &["fig7b"]);
    // Result size shrinks with L.
    let pts = &f7b[0].series[0].points;
    assert!(pts.first().unwrap().1 >= pts.last().unwrap().1, "{pts:?}");

    check(&figures::fig7c(&w), &["fig7c"]);
    check(&figures::fig8(&w), &["fig8_integration", "fig8_execution"]);
    check(&figures::fig9(&w), &["fig9_integration", "fig9_execution"]);
    check(&figures::fig10(&w), &["fig10_k", "fig10_l"]);
}

#[test]
fn ablations_smoke() {
    let w = Workload::build(Scale::smoke());
    check(&figures::ablation_combinators(&w), &["ablation_combinators"]);
    let or = figures::ablation_or_expansion();
    check(&or, &["ablation_or_expansion"]);
    // The un-expanded cost must dominate at the largest K measured.
    let with = or[0].series[0].points.last().unwrap().1;
    let without = or[0].series[1].points.last().unwrap().1;
    assert!(without > with * 10.0, "OR-expansion should matter: with={with}, without={without}");
}

#[test]
fn scales_resolve_by_name() {
    for name in ["smoke", "default", "paper"] {
        let s = Scale::by_name(name).unwrap();
        assert_eq!(s.name, name);
    }
    assert!(Scale::by_name("bogus").is_none());
}
