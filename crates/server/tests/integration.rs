//! End-to-end: a real TCP server, the real blocking client, the full
//! request vocabulary — and the same `QueryApi` code running over both
//! backends.

mod common;

use common::{service_with_ana, start, Q};
use pqp_service::{Answer, CacheOutcome, DegradeLevel, QueryApi};
use pqp_wire::{Client, ClientConfig, ShowRequest};

fn connect(handle: &pqp_server::ServerHandle, user: &str) -> Client {
    Client::connect(handle.addr(), ClientConfig::new(user)).unwrap()
}

#[test]
fn queries_run_end_to_end_over_tcp() {
    let handle = start(service_with_ana());
    let mut client = connect(&handle, "ana");
    assert!(client.server().starts_with("pqp-server/"), "handshake carries the server id");

    let answer = client.query(Q).unwrap();
    assert_eq!(answer.meta.k, 1, "ana's comedy preference personalizes the query");
    assert_eq!(answer.meta.degraded, DegradeLevel::None);
    assert!(!answer.rows.rows.is_empty(), "rows cross the wire");
    assert!(!answer.rows.columns.is_empty(), "schema crosses the wire");
    assert!(!answer.meta.cache.is_hit(), "first run is not a cache hit");

    let again = client.query(Q).unwrap();
    assert_eq!(again.meta.cache, CacheOutcome::Hit, "second run hits the plan cache");
    assert_eq!(again.rows, answer.rows, "cached answer is identical");

    client.close();
    handle.shutdown();
}

#[test]
fn the_same_query_api_code_runs_over_both_backends() {
    let handle = start(service_with_ana());

    // One function, written once against the trait.
    fn workload(api: &mut impl QueryApi) -> Answer {
        assert_eq!(api.user_id(), "ana");
        api.prepare(Q).unwrap();
        api.query(Q).unwrap()
    }

    let mut session = handle.service().session("ana");
    let local = workload(&mut session);

    let mut client = connect(&handle, "ana");
    let remote = workload(&mut client);

    assert_eq!(local.rows, remote.rows, "identical rows over TCP and in-process");
    assert_eq!(local.meta.k, remote.meta.k);
    assert_eq!(local.meta.rewrite, remote.meta.rewrite);

    client.close();
    handle.shutdown();
}

#[test]
fn profiles_are_mutable_over_the_wire() {
    let handle = start(service_with_ana());
    let mut client = connect(&handle, "newbie");

    let before = client.query(Q).unwrap();
    assert_eq!(before.meta.k, 0, "no profile yet: unpersonalized");

    client.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    client.add_selection("GENRE", "genre", pqp_storage::Value::Str("drama".into()), 0.7).unwrap();
    let after = client.query(Q).unwrap();
    assert!(after.meta.k >= 1, "the profile built over the wire personalizes queries");

    assert!(client.remove_profile().unwrap(), "a profile was stored");
    assert!(!client.remove_profile().unwrap(), "second removal is a no-op");
    let gone = client.query(Q).unwrap();
    assert_eq!(gone.meta.k, 0, "back to unpersonalized");

    client.close();
    handle.shutdown();
}

#[test]
fn prepare_returns_canonical_sql() {
    let handle = start(service_with_ana());
    let mut client = connect(&handle, "ana");
    let canonical = client.prepare("select  MV.title  from MOVIE MV").unwrap();
    assert!(canonical.to_lowercase().contains("movie"), "canonical SQL: {canonical}");
    client.close();
    handle.shutdown();
}

#[test]
fn bad_sql_is_a_typed_parse_error_not_a_dead_session() {
    let handle = start(service_with_ana());
    let mut client = connect(&handle, "ana");
    let err = client.query("select from from").unwrap_err();
    assert_eq!(err.kind(), "parse", "parse errors keep their kind over the wire");
    // The session survives a failed query.
    assert!(client.query(Q).is_ok());
    client.close();
    handle.shutdown();
}

#[test]
fn show_introspection_works_over_tcp() {
    let handle = start(service_with_ana());
    let mut client = connect(&handle, "ana");
    client.query(Q).unwrap();

    let metrics = client.show(ShowRequest::Metrics).unwrap();
    assert!(!metrics.rows.columns.is_empty());
    assert_eq!(metrics.meta.cache, CacheOutcome::Bypass, "introspection bypasses caches");

    let queries = client.show(ShowRequest::Queries { limit: Some(5) }).unwrap();
    assert!(queries.rows.rows.len() <= 5);

    let caches = client.show(ShowRequest::Caches).unwrap();
    assert!(!caches.rows.columns.is_empty());

    client.close();
    handle.shutdown();
}

#[test]
fn sessions_are_concurrent() {
    let handle = start(service_with_ana());
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let user = if i % 2 == 0 { "ana" } else { "bob" };
                let mut client = Client::connect(addr, ClientConfig::new(user)).unwrap();
                for _ in 0..8 {
                    let answer = client.query(Q).unwrap();
                    if user == "ana" {
                        assert_eq!(answer.meta.k, 1);
                    } else {
                        assert_eq!(answer.meta.k, 0);
                    }
                }
                client.close();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert!(handle.connections() >= 4);
    handle.shutdown();
}
