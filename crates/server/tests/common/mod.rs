//! Shared fixture: a tiny movie database with one profiled user ("ana"),
//! served on an ephemeral port.
#![allow(dead_code)] // each test binary uses its own subset of the fixture

use std::sync::Arc;

use pqp_core::Profile;
use pqp_engine::Database;
use pqp_server::{Server, ServerConfig, ServerHandle};
use pqp_service::{Service, ServiceConfig};
use pqp_storage::{Catalog, ColumnDef, DataType, TableSchema};

pub const Q: &str = "select MV.title from MOVIE MV";

pub fn movie_db() -> Database {
    let mut c = Catalog::new();
    c.create_table(
        TableSchema::new(
            "MOVIE",
            vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("title", DataType::Str)],
        )
        .with_primary_key(&["mid"]),
    )
    .unwrap();
    c.create_table(TableSchema::new(
        "GENRE",
        vec![ColumnDef::new("mid", DataType::Int), ColumnDef::new("genre", DataType::Str)],
    ))
    .unwrap();
    for (mid, title) in [(1, "Alpha"), (2, "Beta"), (3, "Gamma")] {
        c.table("MOVIE").unwrap().write().insert(vec![mid.into(), title.into()]).unwrap();
    }
    for (mid, genre) in [(1, "comedy"), (2, "comedy"), (3, "drama")] {
        c.table("GENRE").unwrap().write().insert(vec![mid.into(), genre.into()]).unwrap();
    }
    Database::new(c)
}

pub fn service_with_ana() -> Service {
    service_with_config(ServiceConfig::default())
}

pub fn service_with_config(config: ServiceConfig) -> Service {
    let service = Service::with_config(movie_db(), config);
    let mut ana = Profile::new("ana");
    ana.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    ana.add_selection("GENRE", "genre", "comedy", 0.8).unwrap();
    service.install_profile(ana).unwrap();
    service
}

/// Serve `service` on an ephemeral localhost port.
pub fn start(service: Service) -> ServerHandle {
    let config = ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() };
    Server::bind(Arc::new(service), config).unwrap().spawn().unwrap()
}
