//! Protocol robustness at the network edge: malformed and truncated
//! frames, oversized-frame rejection, byte-at-a-time partial reads,
//! handshake version mismatches — the server answers with typed error
//! frames and never aborts.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::{service_with_ana, start, Q};
use pqp_service::{ErrorCode, QueryApi};
use pqp_wire::{
    read_frame, write_frame, Client, ClientConfig, FrameError, Request, Response, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

/// Raw socket helper: a connection that speaks frames by hand.
fn raw_connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

fn send_request(stream: &mut TcpStream, req: &Request) {
    let (tag, payload) = req.encode();
    write_frame(stream, tag, &payload).unwrap();
}

fn recv_response(stream: &mut TcpStream) -> Response {
    let (tag, payload) = read_frame(stream, MAX_FRAME_LEN).unwrap();
    Response::decode(tag, &payload).unwrap()
}

fn handshake(stream: &mut TcpStream, user: &str) {
    send_request(stream, &Request::Hello { version: PROTOCOL_VERSION, user: user.into() });
    match recv_response(stream) {
        Response::HelloOk { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("handshake failed: {other:?}"),
    }
}

fn assert_protocol_error(resp: Response) -> String {
    match resp {
        Response::Error(e) => {
            assert_eq!(e.code, ErrorCode::Protocol.as_u16(), "typed as protocol: {}", e.message);
            e.message
        }
        other => panic!("expected a protocol error frame, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_rejected_with_a_typed_error() {
    let handle = start(service_with_ana());
    let mut stream = raw_connect(handle.addr());
    send_request(&mut stream, &Request::Hello { version: 99, user: "ana".into() });
    let msg = assert_protocol_error(recv_response(&mut stream));
    assert!(msg.contains("99"), "names the offending version: {msg}");
    // The server closes after a failed handshake.
    assert!(matches!(read_frame(&mut stream, MAX_FRAME_LEN), Err(FrameError::Closed)));
    handle.shutdown();
}

#[test]
fn first_frame_must_be_hello() {
    let handle = start(service_with_ana());
    let mut stream = raw_connect(handle.addr());
    send_request(&mut stream, &Request::Prepare { sql: Q.into() });
    assert_protocol_error(recv_response(&mut stream));
    assert!(matches!(read_frame(&mut stream, MAX_FRAME_LEN), Err(FrameError::Closed)));
    handle.shutdown();
}

#[test]
fn empty_user_is_rejected() {
    let handle = start(service_with_ana());
    let mut stream = raw_connect(handle.addr());
    send_request(&mut stream, &Request::Hello { version: PROTOCOL_VERSION, user: String::new() });
    assert_protocol_error(recv_response(&mut stream));
    handle.shutdown();
}

#[test]
fn malformed_payload_gets_a_typed_error_and_the_session_survives() {
    let handle = start(service_with_ana());
    let mut stream = raw_connect(handle.addr());
    handshake(&mut stream, "ana");

    // A Query frame whose payload is garbage: sound frame, broken payload.
    write_frame(&mut stream, 0x02, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
    assert_protocol_error(recv_response(&mut stream));

    // An unassigned message tag.
    write_frame(&mut stream, 0x7F, &[]).unwrap();
    assert_protocol_error(recv_response(&mut stream));

    // A well-formed message with trailing garbage.
    let (tag, mut payload) = Request::Prepare { sql: Q.into() }.encode();
    payload.push(0x00);
    write_frame(&mut stream, tag, &payload).unwrap();
    assert_protocol_error(recv_response(&mut stream));

    // The stream stayed frame-aligned throughout: real work still runs.
    send_request(&mut stream, &Request::Query { sql: Q.into(), options: None, rewrite: None });
    match recv_response(&mut stream) {
        Response::Answer(a) => assert_eq!(a.meta.k, 1),
        other => panic!("session did not survive: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn oversized_frames_are_rejected_and_the_connection_closed() {
    let handle = start(service_with_ana());
    let mut stream = raw_connect(handle.addr());
    handshake(&mut stream, "ana");

    // Announce a frame just over the limit; send no payload.
    let announced = (MAX_FRAME_LEN as u32) + 1;
    stream.write_all(&announced.to_be_bytes()).unwrap();
    stream.flush().unwrap();

    let msg = assert_protocol_error(recv_response(&mut stream));
    assert!(msg.contains("unreadable"), "explains the close: {msg}");
    assert!(matches!(read_frame(&mut stream, MAX_FRAME_LEN), Err(FrameError::Closed)));
    handle.shutdown();
}

#[test]
fn zero_length_frames_are_rejected() {
    let handle = start(service_with_ana());
    let mut stream = raw_connect(handle.addr());
    handshake(&mut stream, "ana");
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    assert_protocol_error(recv_response(&mut stream));
    assert!(matches!(read_frame(&mut stream, MAX_FRAME_LEN), Err(FrameError::Closed)));
    handle.shutdown();
}

#[test]
fn partial_reads_reassemble_into_whole_requests() {
    let handle = start(service_with_ana());
    let mut stream = raw_connect(handle.addr());
    handshake(&mut stream, "ana");

    // Dribble a whole query frame one byte at a time.
    let (tag, payload) = Request::Query { sql: Q.into(), options: None, rewrite: None }.encode();
    let mut frame = Vec::new();
    write_frame(&mut frame, tag, &payload).unwrap();
    for byte in frame {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    match recv_response(&mut stream) {
        Response::Answer(a) => assert_eq!(a.meta.k, 1),
        other => panic!("expected an answer, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_leaves_the_server_serving() {
    let handle = start(service_with_ana());
    {
        let mut stream = raw_connect(handle.addr());
        handshake(&mut stream, "ana");
        // Announce 100 bytes, deliver 3, vanish.
        stream.write_all(&100u32.to_be_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
        stream.flush().unwrap();
    } // dropped: EOF mid-frame on the server

    // The server shrugs it off: fresh connections work, nothing leaked.
    let mut client = Client::connect(handle.addr(), ClientConfig::new("ana")).unwrap();
    let answer = client.query(Q).unwrap();
    assert_eq!(answer.meta.k, 1);
    client.close();

    wait_until("in-flight drains to zero", || handle.service().in_flight() == 0);
    handle.shutdown();
}

#[test]
fn abrupt_disconnect_before_handshake_is_harmless() {
    let handle = start(service_with_ana());
    for _ in 0..5 {
        let stream = raw_connect(handle.addr());
        drop(stream);
    }
    let mut client = Client::connect(handle.addr(), ClientConfig::new("ana")).unwrap();
    assert!(client.query(Q).is_ok());
    client.close();
    handle.shutdown();
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..200 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting until {what}");
}
