//! Crash-safety of the replicated mutation log: torn tails, corrupted
//! records, injected WAL faults, and a real `kill -9` differential. The
//! recovery contract under test: after any crash, replay reconstructs a
//! profile store byte-identical to one built by applying the surviving
//! log prefix directly — and every *acked* mutation is in that prefix.
//!
//! The failpoint registry is process-global, so the tests that use it
//! serialize on one mutex (same convention as `chaos.rs`).

mod common;

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};

use common::movie_db;
use pqp_obs::failpoint;
use pqp_server::{ReplConfig, ReplNode};
use pqp_service::{Service, UserId};
use pqp_storage::Value;
use pqp_wire::ProfileOp;

static FAILPOINT_GUARD: Mutex<()> = Mutex::new(());

fn with_failpoints(f: impl FnOnce()) {
    let _g = FAILPOINT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    f();
    failpoint::clear();
}

fn service() -> Arc<Service> {
    Arc::new(Service::new(movie_db()))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pqp_repl_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The i-th workload mutation: deterministic, so a reference store can
/// be rebuilt from a sequence number alone.
fn mutate_i(node: &ReplNode, i: u64) -> pqp_service::Result<(u64, bool)> {
    node.client_mutate(
        &UserId::from("crash"),
        ProfileOp::AddSelection {
            table: "MOVIE".into(),
            column: "mid".into(),
            value: Value::Int(1900 + i as i64),
            doi: 0.5,
        },
    )
}

/// Apply mutations `1..=n` directly (no WAL) — the reference store.
fn reference_profile(n: u64) -> Option<String> {
    let svc = service();
    for i in 1..=n {
        svc.add_selection(UserId::from("crash"), "MOVIE", "mid", Value::Int(1900 + i as i64), 0.5)
            .unwrap();
    }
    svc.profile(UserId::from("crash")).map(|p| p.to_json())
}

/// Recover `dir` into a fresh service; return (surviving seq, profile).
fn recover(dir: &PathBuf) -> (u64, Option<String>) {
    let svc = service();
    let node = ReplNode::open(Arc::clone(&svc), ReplConfig::new("reborn", dir)).unwrap();
    (node.status().last_seq, svc.profile(UserId::from("crash")).map(|p| p.to_json()))
}

#[test]
fn torn_final_record_is_truncated_and_replay_matches_the_prefix() {
    let dir = tempdir("torn");
    {
        let node = ReplNode::open(service(), ReplConfig::new("n1", &dir)).unwrap();
        for i in 1..=6 {
            mutate_i(&node, i).unwrap();
        }
    }
    // Tear the final record: chop a few bytes off the log, as a crash
    // mid-write would.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    std::fs::OpenOptions::new().write(true).open(&wal).unwrap().set_len(len - 3).unwrap();

    let (last_seq, profile) = recover(&dir);
    assert_eq!(last_seq, 5, "the torn record is truncated, the prefix survives");
    assert_eq!(profile, reference_profile(5), "replayed store == direct-apply store");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_mid_log_truncates_from_the_corruption() {
    let dir = tempdir("bitflip");
    {
        let node = ReplNode::open(service(), ReplConfig::new("n1", &dir)).unwrap();
        for i in 1..=8 {
            mutate_i(&node, i).unwrap();
        }
    }
    // Flip one bit around the middle of the log: the CRC of that record
    // fails, and everything from it on is untrustworthy.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&wal).unwrap();
    f.seek(SeekFrom::Start(len / 2)).unwrap();
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte).unwrap();
    f.seek(SeekFrom::Start(len / 2)).unwrap();
    f.write_all(&[byte[0] ^ 0x10]).unwrap();
    drop(f);

    let (last_seq, profile) = recover(&dir);
    assert!(last_seq < 8, "corruption cost at least the flipped record");
    assert_eq!(profile, reference_profile(last_seq), "the surviving prefix replays exactly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_composes_snapshot_and_log_suffix() {
    let dir = tempdir("snapshot");
    {
        let mut config = ReplConfig::new("n1", &dir);
        config.snapshot_every = 4; // force compactions mid-workload
        let node = ReplNode::open(service(), config).unwrap();
        for i in 1..=10 {
            mutate_i(&node, i).unwrap();
        }
        assert!(node.status().last_seq == 10);
    }
    assert!(dir.join("snapshot.bin").exists(), "compaction produced a snapshot");
    let (last_seq, profile) = recover(&dir);
    assert_eq!(last_seq, 10);
    assert_eq!(profile, reference_profile(10), "snapshot + suffix == full history");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_failpoints_surface_as_typed_errors_and_heal_on_retry() {
    with_failpoints(|| {
        let dir = tempdir("failpoint");
        let svc = service();
        let node = ReplNode::open(Arc::clone(&svc), ReplConfig::new("n1", &dir)).unwrap();

        failpoint::configure("wal.append", "1*error(disk full)").unwrap();
        let err = mutate_i(&node, 1).unwrap_err();
        assert_eq!(err.kind(), "storage", "append fault is a typed error: {err}");
        assert_eq!(node.status().last_seq, 0, "nothing logged");
        assert_eq!(
            svc.profile(UserId::from("crash")),
            None,
            "a mutation that failed before durability is not visible to reads"
        );

        failpoint::configure("wal.fsync", "1*error(sync lost)").unwrap();
        let err = mutate_i(&node, 1).unwrap_err();
        assert_eq!(err.kind(), "storage", "fsync fault is a typed error: {err}");
        assert_eq!(node.status().durable_seq, 0, "the unsynced record is not durable");
        assert_eq!(node.status().last_seq, 0, "the unsynced record is truncated back off");
        assert_eq!(
            svc.profile(UserId::from("crash")),
            None,
            "a mutation that failed at the fsync is not visible to reads"
        );

        // Retrying is safe (mutations are upserts): the store converges
        // and the log replays to the same bytes.
        mutate_i(&node, 1).unwrap();
        let before = svc.profile(UserId::from("crash")).map(|p| p.to_json());
        drop(node);
        let (_, after) = recover(&dir);
        assert_eq!(after, before, "replay after faults matches the live store");
        assert_eq!(after, reference_profile(1));
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// The child half of the kill -9 differential: mutate in a tight loop,
/// printing `ACK <i>` only after [`ReplNode::client_mutate`] returned —
/// i.e. after the WAL fsync. The parent kills this process with SIGKILL
/// mid-stream. Ignored so it only runs when the parent invokes it (the
/// `PQP_CRASH_DIR` guard makes a manual `--ignored` run a no-op).
#[test]
#[ignore]
fn crash_child() {
    let Ok(dir) = std::env::var("PQP_CRASH_DIR") else { return };
    failpoint::init_from_env();
    let node = ReplNode::open(service(), ReplConfig::new("child", &dir)).unwrap();
    let stdout = std::io::stdout();
    for i in 1..=50_000u64 {
        mutate_i(&node, i).unwrap();
        let mut out = stdout.lock();
        writeln!(out, "ACK {i}").unwrap();
        out.flush().unwrap();
    }
}

/// Spawn `crash_child` against `dir` with the given failpoints, SIGKILL
/// it once `min_acks` mutations were acked, and return every ack that
/// reached the pipe.
fn run_crash_child(dir: &PathBuf, failpoints: &str, min_acks: usize) -> Vec<u64> {
    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(exe)
        .args(["crash_child", "--ignored", "--exact", "--nocapture"])
        .env("PQP_CRASH_DIR", dir)
        .env("PQP_FAILPOINTS", failpoints)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut acks = Vec::new();
    let mut line = String::new();
    while acks.len() < min_acks {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            panic!("crash child exited early after {} acks", acks.len());
        }
        if let Some(i) = line.trim().strip_prefix("ACK ") {
            acks.push(i.parse::<u64>().unwrap());
        }
    }
    child.kill().unwrap(); // SIGKILL on unix: no destructors, no flush
                           // Drain acks that were already in flight in the pipe when we killed.
    line.clear();
    let mut rest = String::new();
    let _ = reader.read_to_string(&mut rest);
    for l in rest.lines() {
        if let Some(i) = l.trim().strip_prefix("ACK ") {
            acks.push(i.parse::<u64>().unwrap());
        }
    }
    let _ = child.wait();
    acks
}

#[test]
fn kill_nine_loses_no_acked_mutation_and_replays_byte_identically() {
    // Three crash sites: the bare workload, a widened window at the
    // append, and a widened window at the fsync — the delay failpoints
    // make the kill land inside the WAL write path with near-certainty.
    for (tag, failpoints) in
        [("plain", ""), ("append", "wal.append=delay(25)"), ("fsync", "wal.fsync=delay(25)")]
    {
        let dir = tempdir(&format!("kill9_{tag}"));
        let acks = run_crash_child(&dir, failpoints, 8);
        let max_acked = *acks.iter().max().unwrap();

        let (last_seq, profile) = recover(&dir);
        assert!(
            last_seq >= max_acked,
            "[{tag}] acked mutation lost: acked through {max_acked}, log ends at {last_seq}"
        );
        // The differential: replaying the surviving log must equal
        // applying the same prefix directly, byte for byte.
        assert_eq!(
            profile,
            reference_profile(last_seq),
            "[{tag}] recovered store diverges from the direct-apply reference"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
