//! Chaos at the server boundary: failpoint-injected errors, panics and
//! delays at the dispatch site, admission-control saturation surfacing as
//! typed `Overloaded` frames, and mid-query client disconnects. The
//! acceptance bar is zero process aborts — every fault costs at most one
//! request.
//!
//! The failpoint registry is process-global, so every test here serializes
//! on one mutex and clears the registry on the way in and out.

mod common;

use std::sync::Mutex;
use std::time::Duration;

use common::{service_with_ana, service_with_config, start, Q};
use pqp_obs::failpoint;
use pqp_service::{Error, QueryApi, ServiceConfig};
use pqp_wire::{
    read_frame, write_frame, Client, ClientConfig, Request, Response, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

static FAILPOINT_GUARD: Mutex<()> = Mutex::new(());

fn with_failpoints(f: impl FnOnce()) {
    let _g = FAILPOINT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    f();
    failpoint::clear();
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..300 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting until {what}");
}

#[test]
fn saturation_returns_typed_overloaded_frames() {
    with_failpoints(|| {
        let handle = start(service_with_config(ServiceConfig {
            max_in_flight: 1,
            ..ServiceConfig::default()
        }));
        // Make the in-flight query slow enough to saturate the one slot.
        failpoint::configure("service.query", "delay(400)").unwrap();

        let addr = handle.addr();
        let slow = std::thread::spawn(move || {
            let mut client = Client::connect(addr, ClientConfig::new("ana")).unwrap();
            let result = client.query(Q);
            client.close();
            result
        });
        // Let the slow query claim the slot, then knock on the door.
        wait_until("slot is claimed", || handle.service().in_flight() == 1);
        let mut client = Client::connect(addr, ClientConfig::new("bob")).unwrap();
        let err = client.query(Q).unwrap_err();
        match err {
            Error::Overloaded { in_flight, max } => {
                assert_eq!(max, 1, "the admission limit crosses the wire");
                assert!(in_flight >= 1);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(err.kind(), "overloaded");

        assert!(slow.join().unwrap().is_ok(), "the admitted query completed");
        // Capacity freed: the refused client retries successfully.
        failpoint::clear();
        assert!(client.query(Q).is_ok(), "retry succeeds once the slot frees");
        client.close();
        handle.shutdown();
    });
}

#[test]
fn injected_errors_at_the_dispatch_boundary_cost_one_request() {
    with_failpoints(|| {
        let handle = start(service_with_ana());
        let mut client = Client::connect(handle.addr(), ClientConfig::new("ana")).unwrap();
        failpoint::configure("server.frame", "1*error(injected fault)").unwrap();

        let err = client.query(Q).unwrap_err();
        assert_eq!(err.kind(), "internal");
        assert!(err.to_string().contains("injected fault"));

        // The failpoint was one-shot; the session keeps serving.
        assert!(client.query(Q).is_ok());
        client.close();
        handle.shutdown();
    });
}

#[test]
fn injected_panics_become_error_frames_not_aborts() {
    with_failpoints(|| {
        let handle = start(service_with_ana());
        let mut client = Client::connect(handle.addr(), ClientConfig::new("ana")).unwrap();
        failpoint::configure("server.frame", "1*panic(chaos at the edge)").unwrap();

        let err = client.query(Q).unwrap_err();
        assert_eq!(err.kind(), "internal", "the panic is isolated into a typed frame");

        // Same connection, same process — both survived.
        assert!(client.query(Q).is_ok());
        client.close();
        handle.shutdown();
    });
}

#[test]
fn mid_query_disconnect_frees_the_in_flight_slot() {
    with_failpoints(|| {
        let handle = start(service_with_ana());
        // Slow the query down so the disconnect happens while it runs.
        failpoint::configure("service.query", "delay(250)").unwrap();

        {
            // Speak the protocol by hand: handshake, fire a query, vanish
            // without reading the answer.
            let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let (tag, payload) =
                Request::Hello { version: PROTOCOL_VERSION, user: "ana".into() }.encode();
            write_frame(&mut stream, tag, &payload).unwrap();
            let (tag, payload) = read_frame(&mut stream, MAX_FRAME_LEN).unwrap();
            assert!(matches!(Response::decode(tag, &payload).unwrap(), Response::HelloOk { .. }));
            let (tag, payload) =
                Request::Query { sql: Q.into(), options: None, rewrite: None }.encode();
            write_frame(&mut stream, tag, &payload).unwrap();
            wait_until("the query is admitted", || handle.service().in_flight() == 1);
        } // dropped mid-query

        wait_until("the in-flight slot is released", || handle.service().in_flight() == 0);
        wait_until("the session thread exits", || handle.active_sessions() == 0);

        // No leak, no abort: the server keeps serving.
        failpoint::clear();
        let mut client = Client::connect(handle.addr(), ClientConfig::new("ana")).unwrap();
        assert_eq!(client.query(Q).unwrap().meta.k, 1);
        client.close();
        handle.shutdown();
    });
}

#[test]
fn failpoint_storm_zero_aborts() {
    with_failpoints(|| {
        let handle = start(service_with_ana());
        failpoint::configure_many(
            "server.frame=20%error(storm edge);\
             service.query=20%panic(storm front door);\
             plan.cache=30%error(storm cache)",
        )
        .unwrap();

        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr, ClientConfig::new("ana")).unwrap();
                    let mut ok = 0usize;
                    for _ in 0..25 {
                        if client.query(Q).is_ok() {
                            ok += 1;
                        }
                    }
                    client.close();
                    ok
                })
            })
            .collect();
        let succeeded: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        // The storm is probabilistic; what is certain is that the process
        // survived and the service still works with the chaos off.
        failpoint::clear();
        let mut client = Client::connect(addr, ClientConfig::new("ana")).unwrap();
        assert_eq!(client.query(Q).unwrap().meta.k, 1, "healthy after the storm ({succeeded} ok)");
        client.close();
        assert_eq!(handle.service().in_flight(), 0, "no admission slots leaked");
        handle.shutdown();
    });
}
