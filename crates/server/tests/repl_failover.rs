//! Failover chaos: kill the leader mid-workload and prove the cluster
//! loses nothing. The acceptance bar: typed errors only, zero process
//! aborts, no acked mutation lost, and byte-identical personalized
//! answers from the promoted leader.
//!
//! The failpoint registry is process-global; failpoint tests serialize
//! on one mutex (same convention as `chaos.rs`).

mod common;

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use common::{movie_db, Q};
use pqp_obs::failpoint;
use pqp_server::{
    PeerLink, ReplConfig, ReplNode, Router, RouterConfig, Server, ServerConfig, ServerHandle,
};
use pqp_service::{QueryApi, Service, UserId};
use pqp_storage::Value;
use pqp_wire::repl::{ReplRequest, ReplResponse, Role};
use pqp_wire::{Client, ClientConfig};

static FAILPOINT_GUARD: Mutex<()> = Mutex::new(());

fn with_failpoints(f: impl FnOnce()) {
    let _g = FAILPOINT_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear();
    f();
    failpoint::clear();
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..600 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting until {what}");
}

/// One in-process cluster member: its own service, WAL dir, replication
/// engine, and TCP server on an ephemeral port.
struct TestNode {
    dir: PathBuf,
    svc: Arc<Service>,
    node: Arc<ReplNode>,
    handle: Option<ServerHandle>,
    addr: String,
}

impl TestNode {
    fn start(tag: &str, role: Role, peers: Vec<String>, quorum: usize) -> TestNode {
        let dir =
            std::env::temp_dir().join(format!("pqp_repl_failover_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TestNode::start_in(dir, tag, role, peers, quorum)
    }

    /// Like [`TestNode::start`], but on an existing WAL dir — a node
    /// rebooting after a crash, recovering whatever was durable.
    fn start_in(
        dir: PathBuf,
        tag: &str,
        role: Role,
        peers: Vec<String>,
        quorum: usize,
    ) -> TestNode {
        let svc = Arc::new(Service::new(movie_db()));
        let mut config = ReplConfig::new(tag, &dir);
        config.role = role;
        config.peers = peers;
        config.quorum = quorum;
        config.ship_timeout = Duration::from_millis(500);
        let node = ReplNode::open(Arc::clone(&svc), config).unwrap();
        let server_config =
            ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() };
        let handle =
            Server::bind_replicated(Arc::clone(&svc), server_config, Some(Arc::clone(&node)))
                .unwrap()
                .spawn()
                .unwrap();
        let addr = handle.addr().to_string();
        TestNode { dir, svc, node, handle: Some(handle), addr }
    }

    /// Kill this node's server (connections refuse; the process-local
    /// state stays around, as a crashed-but-not-reaped node's would).
    fn kill(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.shutdown();
        }
    }

    /// Kill the node and hand back its WAL dir *without* deleting it,
    /// so the node can be "rebooted" with [`TestNode::start_in`].
    fn stop_keeping_dir(mut self) -> PathBuf {
        self.kill();
        std::mem::take(&mut self.dir)
    }

    fn profile_json(&self, user: &str) -> Option<String> {
        self.svc.profile(UserId::from(user)).map(|p| p.to_json())
    }
}

impl Drop for TestNode {
    fn drop(&mut self) {
        self.kill();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Install ana's personalization profile through the wire client; every
/// returned `Ok` is an acked (quorum-durable) mutation.
fn install_ana(client: &mut Client) {
    client.add_join("MOVIE", "mid", "GENRE", "mid", 0.9).unwrap();
    client.add_selection("GENRE", "genre", Value::Str("comedy".into()), 0.8).unwrap();
}

#[test]
fn leader_death_failover_keeps_every_acked_mutation_and_answer() {
    // Topology: f2 (leaf) ← f1 ← leader; f1 is wired to ship to f2 so
    // it can sustain quorum 2 after taking over.
    let f2 = TestNode::start("f2", Role::Follower, vec![], 1);
    let f1 = TestNode::start("f1", Role::Follower, vec![f2.addr.clone()], 2);
    let mut leader =
        TestNode::start("lead0", Role::Leader, vec![f1.addr.clone(), f2.addr.clone()], 2);

    let mut client = Client::connect(&*leader.addr, ClientConfig::new("ana")).unwrap();
    install_ana(&mut client);
    let baseline = client.query(Q).unwrap();
    assert_eq!(baseline.meta.k, 1, "the personalized answer found the comedy slice");
    client.close();

    // Quorum 2 means at least one follower holds both mutations; with a
    // healthy cluster both do.
    wait_until("followers caught up", || {
        f1.node.status().last_seq == 2 && f2.node.status().last_seq == 2
    });

    // Kill the leader. Promote the most-caught-up follower at a term
    // above the dead leader's — what the router does automatically.
    leader.kill();
    let (best, other) = if f1.node.status().last_seq >= f2.node.status().last_seq {
        (&f1, &f2)
    } else {
        (&f2, &f1)
    };
    assert_eq!(best.addr, f1.addr, "f1 holds the longest log and can ship to f2");
    let term = leader.node.term() + 1;
    let response = best
        .node
        .handle_peer(ReplRequest::Promote { term, token: String::new() }, &mut PeerLink::new());
    assert!(matches!(response, ReplResponse::Ok { .. }), "promotion refused: {response:?}");
    assert_eq!(best.node.role(), Role::Leader);

    // No acked mutation lost: the new leader serves byte-identical
    // personalized answers.
    let mut client = Client::connect(&*best.addr, ClientConfig::new("ana")).unwrap();
    let after = client.query(Q).unwrap();
    assert_eq!(after.rows, baseline.rows, "personalized answer changed across failover");
    assert_eq!(after.meta.k, baseline.meta.k);

    // The cluster keeps accepting writes at quorum 2 (new leader + f2).
    client.add_selection("MOVIE", "mid", Value::Int(2), 0.4).unwrap();
    client.close();
    wait_until("f2 receives the post-failover mutation", || other.node.status().last_seq == 3);
    assert_eq!(
        best.profile_json("ana"),
        other.profile_json("ana"),
        "replicas diverged after failover"
    );

    // Fencing: the deposed leader's next ship is rejected by the higher
    // term — it steps down and the mutation fails with a typed error.
    let err = leader
        .node
        .client_mutate(
            &UserId::from("ana"),
            pqp_wire::ProfileOp::AddSelection {
                table: "MOVIE".into(),
                column: "mid".into(),
                value: Value::Int(99),
                doi: 0.1,
            },
        )
        .unwrap_err();
    assert_eq!(err.kind(), "unavailable", "fenced write got {err:?}");
    assert_eq!(leader.node.role(), Role::Follower, "the old leader stepped down");
    assert!(leader.node.term() >= term, "the old leader adopted the fencing term");
}

#[test]
fn router_promotes_the_survivor_and_keeps_routing() {
    let follower = TestNode::start("rf", Role::Follower, vec![], 1);
    let mut leader = TestNode::start("rlead", Role::Leader, vec![follower.addr.clone()], 2);

    let router = Router::bind(RouterConfig::new(
        "127.0.0.1:0",
        vec![leader.addr.clone(), follower.addr.clone()],
    ))
    .unwrap()
    .spawn()
    .unwrap();
    let leader_addr = leader.addr.clone();
    wait_until("router finds the leader", || router.leader().as_deref() == Some(&*leader_addr));

    // Writes through the router land on the leader and replicate.
    let mut client = Client::connect(router.addr(), ClientConfig::new("ana")).unwrap();
    install_ana(&mut client);
    let baseline = client.query(Q).unwrap();
    client.close();
    wait_until("follower caught up", || follower.node.status().last_seq == 2);

    // Leader dies; the router notices, promotes the follower (the only
    // reachable node, with the full log), and re-routes.
    leader.kill();
    wait_until("router promotes the follower", || follower.node.role() == Role::Leader);
    let follower_addr = follower.addr.clone();
    wait_until("router routes to the new leader", || {
        router.leader().as_deref() == Some(&*follower_addr)
    });

    let mut client = Client::connect(router.addr(), ClientConfig::new("ana")).unwrap();
    let after = client.query(Q).unwrap();
    assert_eq!(after.rows, baseline.rows, "answer changed across router failover");
    // Post-failover writes work (the promoted node acks alone: its own
    // quorum config is 1).
    client.add_selection("MOVIE", "mid", Value::Int(3), 0.3).unwrap();
    client.close();
    router.shutdown();
}

#[test]
fn router_with_no_reachable_leader_refuses_with_a_typed_error() {
    // No nodes at all: the leader view stays empty and every client is
    // refused with an `unavailable` error frame, not a hang or a reset.
    let router = Router::bind(RouterConfig::new("127.0.0.1:0", vec![])).unwrap().spawn().unwrap();
    let err = Client::connect(router.addr(), ClientConfig::new("ana")).unwrap_err();
    assert_eq!(err.kind(), "unavailable", "got {err:?}");
    assert!(err.to_string().contains("no leader"), "got {err}");
    router.shutdown();
}

#[test]
fn replication_chaos_yields_typed_errors_only_and_converges() {
    with_failpoints(|| {
        let follower = TestNode::start("cf", Role::Follower, vec![], 1);
        let leader = TestNode::start("clead", Role::Leader, vec![follower.addr.clone()], 2);
        let mut client = Client::connect(&*leader.addr, ClientConfig::new("ana")).unwrap();

        // Ship failure: durable on the leader, below quorum — a typed
        // `unavailable` naming the retry contract, never an abort.
        failpoint::configure("repl.ship", "1*error(link cut)").unwrap();
        let err = client.add_selection("GENRE", "genre", Value::Str("drama".into()), 0.5);
        let err = err.unwrap_err();
        assert_eq!(err.kind(), "unavailable", "ship fault got {err:?}");
        assert!(err.to_string().contains("retry is safe"), "got {err}");

        // Ack failure: the follower may hold the record, the leader
        // cannot know — same typed contract.
        failpoint::configure("repl.ack", "1*error(ack lost)").unwrap();
        let err = client.add_selection("GENRE", "genre", Value::Str("drama".into()), 0.5);
        assert_eq!(err.unwrap_err().kind(), "unavailable");

        // Crash at mutation entry: typed internal error, process alive.
        failpoint::configure("node.crash", "1*error(struck by lightning)").unwrap();
        let err = client.add_selection("GENRE", "genre", Value::Str("drama".into()), 0.5);
        assert_eq!(err.unwrap_err().kind(), "internal");

        // Chaos off: the retry lands, the cluster converges, and the
        // replicas hold identical bytes.
        failpoint::clear();
        client.add_selection("GENRE", "genre", Value::Str("drama".into()), 0.5).unwrap();
        client.close();
        wait_until("follower catches up", || {
            follower.node.status().last_seq == leader.node.status().last_seq
        });
        assert_eq!(leader.profile_json("ana"), follower.profile_json("ana"));
        assert!(
            leader.profile_json("ana").unwrap().contains("drama"),
            "the acked mutation is in the store"
        );
    });
}

/// One framed request/response on an already-open replication link —
/// what a peer (or an attacker on the client port) would send.
fn repl_rpc(stream: &mut std::net::TcpStream, request: &ReplRequest) -> ReplResponse {
    use std::io::Write as _;
    let (tag, payload) = request.encode();
    pqp_wire::frame::write_frame(stream, tag, &payload).unwrap();
    stream.flush().unwrap();
    let (tag, payload) = pqp_wire::frame::read_frame(stream, pqp_wire::MAX_FRAME_LEN).unwrap();
    ReplResponse::decode(tag, &payload).unwrap()
}

#[test]
fn deposed_leaders_unacked_suffix_is_truncated_and_replicas_converge() {
    with_failpoints(|| {
        let f1 = TestNode::start("heal_f1", Role::Follower, vec![], 1);
        let l0 = TestNode::start("heal_l0", Role::Leader, vec![f1.addr.clone()], 2);

        let mut ana = Client::connect(&*l0.addr, ClientConfig::new("ana")).unwrap();
        ana.add_selection("MOVIE", "mid", Value::Int(1), 0.5).unwrap();
        ana.close();
        assert_eq!(f1.node.status().last_seq, 1, "seq 1 replicated before the partition");

        // The link to f1 is cut while bob's mutation lands: durable on
        // the leader, never acked — the classic deposed-leader suffix.
        failpoint::configure("repl.ship", "8*error(partition)").unwrap();
        let mut bob = Client::connect(&*l0.addr, ClientConfig::new("bob")).unwrap();
        let err = bob.add_selection("MOVIE", "mid", Value::Int(2), 0.5).unwrap_err();
        assert_eq!(err.kind(), "unavailable", "got {err:?}");
        bob.close();
        failpoint::clear();
        assert_eq!(l0.node.status().last_seq, 2, "bob's record is durable on the old leader");
        assert!(l0.profile_json("bob").is_some());

        // Both nodes go down; the cluster reboots with f1 — which never
        // saw bob's record — promoted over the reborn old leader.
        let f1_dir = f1.stop_keeping_dir();
        let l0_dir = l0.stop_keeping_dir();
        let old = TestNode::start_in(l0_dir, "heal_l0", Role::Follower, vec![], 1);
        let new_leader =
            TestNode::start_in(f1_dir, "heal_f1", Role::Follower, vec![old.addr.clone()], 2);
        let resp = new_leader.node.handle_peer(
            ReplRequest::Promote { term: old.node.term() + 1, token: String::new() },
            &mut PeerLink::new(),
        );
        assert!(matches!(resp, ReplResponse::Ok { .. }), "{resp:?}");
        assert_eq!(new_leader.node.status().last_seq, 1, "the new leader never saw seq 2");

        // cara's write (quorum 2) forces the catch-up: the old leader's
        // conflicting seq 2 must be truncated and replaced — under the
        // pre-fix protocol its self-reported ack (2 >= tip) would have
        // counted toward quorum for a record it does not hold.
        let mut cara = Client::connect(&*new_leader.addr, ClientConfig::new("cara")).unwrap();
        cara.add_selection("MOVIE", "mid", Value::Int(3), 0.5).unwrap();
        cara.close();

        assert_eq!(old.node.status().last_seq, 2);
        assert_eq!(old.profile_json("bob"), None, "the orphaned suffix was rolled back");
        assert_eq!(old.profile_json("ana"), new_leader.profile_json("ana"));
        assert_eq!(old.profile_json("cara"), new_leader.profile_json("cara"));
        assert!(old.profile_json("cara").is_some(), "the healed log carries cara's record");

        // The truncation is durable: a reboot of the old leader replays
        // the healed log, not the orphaned one.
        let old_dir = old.stop_keeping_dir();
        let reborn = TestNode::start_in(old_dir, "heal_l0", Role::Follower, vec![], 1);
        assert_eq!(reborn.profile_json("bob"), None);
        assert_eq!(reborn.profile_json("cara"), new_leader.profile_json("cara"));
    });
}

#[test]
fn status_probes_answer_while_shipping_stalls_on_a_dead_peer() {
    with_failpoints(|| {
        // A peer that accepts the TCP connect and then never answers:
        // the leader's ship path blocks inside the inner lock until the
        // 500ms read timeout — exactly when the router's probes must
        // keep answering, or a stalled-but-alive leader reads as down.
        let blackhole = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let blackhole_addr = blackhole.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((stream, _)) = blackhole.accept() {
                held.push(stream); // hold the link open, never reply
            }
        });

        let leader = TestNode::start("stall_lead", Role::Leader, vec![blackhole_addr], 1);
        let node = Arc::clone(&leader.node);
        let mutator = std::thread::spawn(move || {
            // Quorum 1: the write succeeds even though the ship stalls.
            node.client_mutate(
                &UserId::from("ana"),
                pqp_wire::ProfileOp::AddSelection {
                    table: "MOVIE".into(),
                    column: "mid".into(),
                    value: Value::Int(1),
                    doi: 0.5,
                },
            )
        });

        // While the mutation is stalled in peer I/O under the inner
        // mutex, a Status probe over the wire (what the router sends)
        // must answer from the status cell instead of waiting.
        std::thread::sleep(Duration::from_millis(100));
        let mut stream = std::net::TcpStream::connect(&*leader.addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let t = std::time::Instant::now();
        let resp = repl_rpc(&mut stream, &ReplRequest::Status);
        let elapsed = t.elapsed();
        let ReplResponse::Status(status) = resp else { panic!("expected status, got {resp:?}") };
        assert_eq!(status.role, Role::Leader);
        assert!(
            elapsed < Duration::from_millis(250),
            "status probe took {elapsed:?} while shipping stalled"
        );
        mutator.join().unwrap().unwrap();
    });
}

#[test]
fn repl_frames_on_the_client_port_require_the_cluster_token() {
    let dir = std::env::temp_dir().join(format!("pqp_repl_auth_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let svc = Arc::new(Service::new(movie_db()));
    let mut config = ReplConfig::new("authn", &dir);
    config.role = Role::Follower;
    config.token = "cluster-secret".to_string();
    let node = ReplNode::open(Arc::clone(&svc), config).unwrap();
    let server_config = ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() };
    let handle = Server::bind_replicated(Arc::clone(&svc), server_config, Some(Arc::clone(&node)))
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr().to_string();
    let mut stream = std::net::TcpStream::connect(&*addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Leadership cannot be seized with a guessed token…
    let resp =
        repl_rpc(&mut stream, &ReplRequest::Promote { term: 99, token: "guess".to_string() });
    let ReplResponse::Reject { reason, .. } = resp else { panic!("promote accepted: {resp:?}") };
    assert!(reason.contains("authentication failed"), "got {reason}");
    assert_eq!(node.role(), Role::Follower);

    // …nor the store wiped by an unauthenticated Snapshot…
    let resp = repl_rpc(
        &mut stream,
        &ReplRequest::Snapshot { term: 1, last_seq: 0, last_term: 0, data: vec![] },
    );
    let ReplResponse::Reject { reason, .. } = resp else { panic!("snapshot accepted: {resp:?}") };
    assert!(reason.contains("unauthenticated"), "got {reason}");

    // …while the read-only Status probe stays open…
    assert!(matches!(repl_rpc(&mut stream, &ReplRequest::Status), ReplResponse::Status(_)));

    // …and a link that presents the token works end to end.
    let resp = repl_rpc(
        &mut stream,
        &ReplRequest::Hello {
            version: pqp_wire::PROTOCOL_VERSION,
            node_id: "peer".to_string(),
            term: 1,
            token: "cluster-secret".to_string(),
            last_seq: 0,
            last_term: 0,
        },
    );
    assert!(matches!(resp, ReplResponse::Ok { .. }), "handshake refused: {resp:?}");
    let resp =
        repl_rpc(&mut stream, &ReplRequest::Promote { term: 7, token: "cluster-secret".into() });
    assert!(matches!(resp, ReplResponse::Ok { term: 7, .. }), "{resp:?}");
    assert_eq!(node.role(), Role::Leader);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
